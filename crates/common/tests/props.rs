//! Property-based tests of the shared primitives.

use proptest::prelude::*;

use nvr_common::rng::Zipf;
use nvr_common::{Addr, Pcg32, Region, LINE_BYTES};

proptest! {
    /// Region line iteration visits exactly the lines between the first
    /// and last byte, consecutively.
    #[test]
    fn region_lines_cover_exactly(start in 0u64..1 << 40, bytes in 0u64..100_000) {
        let r = Region::new(Addr::new(start), bytes);
        let lines: Vec<u64> = r.lines().map(|l| l.index()).collect();
        prop_assert_eq!(lines.len() as u64, r.line_count());
        if bytes == 0 {
            prop_assert!(lines.is_empty());
        } else {
            prop_assert_eq!(lines[0], start / LINE_BYTES);
            prop_assert_eq!(*lines.last().unwrap(), (start + bytes - 1) / LINE_BYTES);
            prop_assert!(lines.windows(2).all(|w| w[1] == w[0] + 1));
        }
    }

    /// Every byte of a region maps to one of its lines.
    #[test]
    fn region_contains_implies_line_member(
        start in 0u64..1 << 30,
        bytes in 1u64..10_000,
        probe in 0u64..1 << 31,
    ) {
        let r = Region::new(Addr::new(start), bytes);
        let a = Addr::new(probe);
        if r.contains(a) {
            let member = r.lines().any(|l| l == a.line());
            prop_assert!(member);
        }
    }

    /// gen_range stays in bounds for arbitrary bounds and seeds.
    #[test]
    fn gen_range_in_bounds(seed in any::<u64>(), bound in 1u64..1 << 48) {
        let mut rng = Pcg32::seed_from_u64(seed);
        for _ in 0..16 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }

    /// sample_indices returns k strictly increasing distinct values < n.
    #[test]
    fn sample_indices_invariants(seed in any::<u64>(), n in 1usize..500, frac in 0usize..100) {
        let k = (n * frac / 100).min(n);
        let mut rng = Pcg32::seed_from_u64(seed);
        let idx = rng.sample_indices(n, k);
        prop_assert_eq!(idx.len(), k);
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(idx.iter().all(|&i| i < n));
    }

    /// Zipf samples stay in support and rank-0 is at least as likely as a
    /// deep-tail rank.
    #[test]
    fn zipf_support_and_skew(seed in any::<u64>(), n in 10usize..300) {
        let zipf = Zipf::new(n, 1.2);
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut head = 0usize;
        let mut tail = 0usize;
        for _ in 0..600 {
            let s = zipf.sample(&mut rng);
            prop_assert!(s < n);
            if s == 0 { head += 1; }
            if s == n - 1 { tail += 1; }
        }
        prop_assert!(head >= tail);
    }

    /// Identical seeds give identical streams; shuffles are permutations.
    #[test]
    fn pcg_determinism_and_shuffle(seed in any::<u64>(), len in 0usize..200) {
        let mut a = Pcg32::seed_from_u64(seed);
        let mut b = Pcg32::seed_from_u64(seed);
        let mut va: Vec<u32> = (0..len as u32).collect();
        let mut vb = va.clone();
        a.shuffle(&mut va);
        b.shuffle(&mut vb);
        prop_assert_eq!(&va, &vb);
        let mut sorted = va.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len as u32).collect::<Vec<_>>());
    }
}
