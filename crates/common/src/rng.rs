//! Deterministic pseudo-random number generation.
//!
//! The workload generators must produce bit-identical traces for a given
//! seed across platforms and toolchain versions — a prerequisite for
//! comparing prefetchers on the *same* access stream. We therefore ship the
//! ~40-line PCG-XSH-RR core (O'Neill, 2014) here instead of depending on
//! the `rand` crate, whose generator selection and API have shifted across
//! major versions.

/// A PCG-XSH-RR 64/32 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use nvr_common::Pcg32;
///
/// let mut a = Pcg32::seed_from_u64(7);
/// let mut b = Pcg32::seed_from_u64(7);
/// assert_eq!(a.next_u32(), b.next_u32()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;
const PCG_DEFAULT_INC: u64 = 1_442_695_040_888_963_407;

impl Pcg32 {
    /// Creates a generator from a 64-bit seed with the default stream.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: PCG_DEFAULT_INC | 1,
        };
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Creates a generator on an independent stream, so that two generators
    /// seeded identically but with different `stream` values are decorrelated.
    #[must_use]
    pub fn seed_with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound != 0, "gen_range bound must be non-zero");
        if bound == 1 {
            return 0;
        }
        // Rejection sampling on the top bits avoids modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = widening_mul(r, bound);
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Chooses `k` distinct indices from `[0, n)` in ascending order.
    ///
    /// Uses Floyd's algorithm; O(k) expected work, independent of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from population {n}");
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.gen_index(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

#[inline]
fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

/// A Zipf-distributed sampler over `[0, n)` with exponent `s`.
///
/// Heavy-hitter access patterns (the paper's H2O workload, §V-A) follow a
/// Zipfian popularity law: a small hot set absorbs most accesses. The sampler
/// precomputes the CDF once, then draws in `O(log n)`.
///
/// # Examples
///
/// ```
/// use nvr_common::rng::{Pcg32, Zipf};
///
/// let mut rng = Pcg32::seed_from_u64(1);
/// let zipf = Zipf::new(1000, 1.1);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over ranks `0..n` with exponent `s > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and positive.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks in the support.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        let u = rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "streams should be decorrelated, {same} collisions"
        );
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = Pcg32::seed_with_stream(9, 1);
        let mut b = Pcg32::seed_with_stream(9, 2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = Pcg32::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn gen_range_one_is_zero() {
        let mut rng = Pcg32::seed_from_u64(3);
        assert_eq!(rng.gen_range(1), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn gen_range_zero_panics() {
        Pcg32::seed_from_u64(0).gen_range(0);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Pcg32::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seed_from_u64(5);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 64-element shuffle virtually never fixes all");
    }

    #[test]
    fn sample_indices_distinct_sorted() {
        let mut rng = Pcg32::seed_from_u64(8);
        let idx = rng.sample_indices(100, 20);
        assert_eq!(idx.len(), 20);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_full_population() {
        let mut rng = Pcg32::seed_from_u64(8);
        let idx = rng.sample_indices(10, 10);
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = Pcg32::seed_from_u64(13);
        let zipf = Zipf::new(1000, 1.2);
        let mut low = 0usize;
        let draws = 10_000;
        for _ in 0..draws {
            if zipf.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // With s=1.2 the top-10 ranks hold a large share of the mass.
        assert!(
            low > draws / 4,
            "top-10 ranks got {low}/{draws}, expected heavy skew"
        );
    }

    #[test]
    fn zipf_sample_in_bounds() {
        let mut rng = Pcg32::seed_from_u64(17);
        let zipf = Zipf::new(5, 0.9);
        for _ in 0..500 {
            assert!(zipf.sample(&mut rng) < 5);
        }
    }
}
