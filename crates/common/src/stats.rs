//! Lightweight statistics primitives shared by the timing models.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use nvr_common::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter(u64);

impl Counter {
    /// A counter starting at zero.
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// A numerator/denominator pair reported as a rate.
///
/// Used for hit rates, prefetch accuracy, and coverage, where both parts are
/// interesting on their own ([C-INTERMEDIATE]).
///
/// # Examples
///
/// ```
/// use nvr_common::Ratio;
///
/// let mut hit_rate = Ratio::new();
/// hit_rate.record(true);
/// hit_rate.record(false);
/// assert_eq!(hit_rate.rate(), 0.5);
/// ```
///
/// [C-INTERMEDIATE]: https://rust-lang.github.io/api-guidelines/flexibility.html
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// An empty ratio (rate reported as 0).
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        Ratio { hits: 0, total: 0 }
    }

    /// Creates a ratio from raw parts.
    #[inline]
    #[must_use]
    pub const fn from_parts(hits: u64, total: u64) -> Self {
        Ratio { hits, total }
    }

    /// Records one observation; `hit` contributes to the numerator.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator.
    #[inline]
    #[must_use]
    pub const fn hits(self) -> u64 {
        self.hits
    }

    /// Denominator.
    #[inline]
    #[must_use]
    pub const fn total(self) -> u64 {
        self.total
    }

    /// Misses (denominator minus numerator).
    #[inline]
    #[must_use]
    pub const fn misses(self) -> u64 {
        self.total - self.hits
    }

    /// The rate in `[0, 1]`; `0` when empty.
    #[inline]
    #[must_use]
    pub fn rate(self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Merges another ratio into this one.
    pub fn merge(&mut self, other: Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.1}%)",
            self.hits,
            self.total,
            self.rate() * 100.0
        )
    }
}

/// A fixed-bucket latency histogram with power-of-two bucket edges.
///
/// Records per-access latencies so stall distributions can be inspected
/// without storing every sample.
///
/// # Examples
///
/// ```
/// use nvr_common::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record(300);
/// assert_eq!(h.count(), 2);
/// assert!(h.mean() > 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts samples with `value < 2^i` (and ≥ the previous edge).
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 32],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()).min(31) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[inline]
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    #[must_use]
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    #[inline]
    #[must_use]
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts; `buckets()[i]` counts samples in
    /// `[2^(i-1), 2^i)` for `i` in `1..31` (bucket 0 holds exact zeros;
    /// bucket 31 is open-ended — it clamps every sample `>= 2^30`).
    #[inline]
    #[must_use]
    pub const fn buckets(&self) -> &[u64; 32] {
        &self.buckets
    }

    /// The non-empty buckets as `(low, high, count)` ranges, low edge
    /// inclusive and high edge exclusive — the compact form reports
    /// render. The final clamp bucket is open-ended, reported with
    /// `high == u64::MAX`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| match i {
                0 => (0, 1, c),
                31 => (1u64 << 30, u64::MAX, c),
                _ => (1u64 << (i - 1), 1u64 << i, c),
            })
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`): the exclusive upper
    /// edge of the first bucket at which the cumulative count reaches
    /// `q * count`, clamped to the observed maximum. Resolution is the
    /// power-of-two bucket grid; 0 when the histogram is empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (_, hi, n) in self.nonzero_buckets() {
            seen += n;
            if seen >= target {
                return hi.saturating_sub(1).min(self.max);
            }
        }
        self.max
    }
}

/// Arithmetic mean of a slice (0 when empty).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample mean and the half-width of a 95% confidence interval under the
/// normal approximation (`1.96 * s / sqrt(n)`, with the `n - 1` sample
/// standard deviation). The half-width is 0 for fewer than two samples —
/// a single seed carries no spread information.
#[must_use]
pub fn mean_ci95(values: &[f64]) -> (f64, f64) {
    let m = mean(values);
    if values.len() < 2 {
        return (m, 0.0);
    }
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    (m, 1.96 * var.sqrt() / (values.len() as f64).sqrt())
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} max={}",
            self.count,
            self.mean(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn ratio_rate_and_merge() {
        let mut r = Ratio::new();
        assert_eq!(r.rate(), 0.0);
        for i in 0..10 {
            r.record(i % 2 == 0);
        }
        assert_eq!(r.hits(), 5);
        assert_eq!(r.misses(), 5);
        assert!((r.rate() - 0.5).abs() < 1e-12);

        let mut other = Ratio::from_parts(10, 10);
        other.merge(r);
        assert_eq!(other.total(), 20);
        assert_eq!(other.hits(), 15);
    }

    #[test]
    fn histogram_mean_and_max() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        h.record(0);
        h.record(10);
        h.record(20);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 20);
        assert!((h.mean() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_is_additive() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(100);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.sum(), 1_000_105);
    }

    #[test]
    fn histogram_bucket_ranges() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(3);
        let b: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(b, vec![(0, 1, 1), (1, 2, 1), (2, 4, 1)]);
        assert_eq!(h.buckets().iter().sum::<u64>(), 3);
    }

    #[test]
    fn histogram_huge_values_clamp_to_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_percentiles_follow_bucket_edges() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        for _ in 0..9 {
            h.record(3); // bucket [2, 4)
        }
        h.record(1000); // bucket [512, 1024)
        assert_eq!(h.percentile(0.5), 3);
        assert_eq!(h.percentile(0.9), 3);
        assert_eq!(h.percentile(1.0), 1000); // clamped to the observed max
        let mut zeros = Histogram::new();
        zeros.record(0);
        assert_eq!(zeros.percentile(0.99), 0);
    }

    #[test]
    fn mean_and_ci95() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean_ci95(&[2.0]), (2.0, 0.0));
        let (m, ci) = mean_ci95(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        // s = 1, n = 3 → 1.96 / sqrt(3)
        assert!((ci - 1.96 / 3f64.sqrt()).abs() < 1e-12);
    }
}
