//! The workspace-wide error type.

use std::error::Error;
use std::fmt;

/// Errors produced by the NVR simulator crates.
///
/// # Examples
///
/// ```
/// use nvr_common::NvrError;
///
/// let err = NvrError::Config("L2 size must be a power of two".into());
/// assert!(err.to_string().contains("power of two"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NvrError {
    /// A configuration value was invalid or inconsistent.
    Config(String),
    /// A string failed to parse into a simulator type.
    Parse(String),
    /// A workload specification could not be realised.
    Workload(String),
}

impl fmt::Display for NvrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvrError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            NvrError::Parse(msg) => write!(f, "parse error: {msg}"),
            NvrError::Workload(msg) => write!(f, "workload error: {msg}"),
        }
    }
}

impl Error for NvrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_prefixed() {
        assert_eq!(
            NvrError::Parse("bad".into()).to_string(),
            "parse error: bad"
        );
    }

    #[test]
    fn is_send_sync() {
        fn assert_traits<T: Send + Sync + Error>() {}
        assert_traits::<NvrError>();
    }
}
