//! Operand data widths evaluated in the paper (Fig. 5).

use std::fmt;
use std::str::FromStr;

use crate::error::NvrError;

/// Element width of NPU operands.
///
/// The paper evaluates INT8, FP16 and INT32 configurations; wider elements
/// occupy more cache-line capacity per value, raising the miss probability
/// of gathers (§V-B).
///
/// # Examples
///
/// ```
/// use nvr_common::DataWidth;
///
/// assert_eq!(DataWidth::Fp16.bytes(), 2);
/// assert_eq!("int8".parse::<DataWidth>()?, DataWidth::Int8);
/// # Ok::<(), nvr_common::NvrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum DataWidth {
    /// 8-bit integer operands.
    #[default]
    Int8,
    /// 16-bit floating-point operands.
    Fp16,
    /// 32-bit integer operands.
    Int32,
}

impl DataWidth {
    /// All widths in the order the paper reports them.
    pub const ALL: [DataWidth; 3] = [DataWidth::Int8, DataWidth::Fp16, DataWidth::Int32];

    /// Bytes per element.
    #[inline]
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            DataWidth::Int8 => 1,
            DataWidth::Fp16 => 2,
            DataWidth::Int32 => 4,
        }
    }

    /// Elements that fit in one cache line.
    #[inline]
    #[must_use]
    pub const fn elems_per_line(self) -> u64 {
        crate::LINE_BYTES / self.bytes()
    }
}

impl fmt::Display for DataWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataWidth::Int8 => "INT8",
            DataWidth::Fp16 => "FP16",
            DataWidth::Int32 => "INT32",
        };
        f.write_str(s)
    }
}

impl FromStr for DataWidth {
    type Err = NvrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "int8" | "i8" => Ok(DataWidth::Int8),
            "fp16" | "f16" => Ok(DataWidth::Fp16),
            "int32" | "i32" => Ok(DataWidth::Int32),
            other => Err(NvrError::Parse(format!("unknown data width `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_and_lane_counts() {
        assert_eq!(DataWidth::Int8.bytes(), 1);
        assert_eq!(DataWidth::Fp16.bytes(), 2);
        assert_eq!(DataWidth::Int32.bytes(), 4);
        assert_eq!(DataWidth::Int8.elems_per_line(), 64);
        assert_eq!(DataWidth::Fp16.elems_per_line(), 32);
        assert_eq!(DataWidth::Int32.elems_per_line(), 16);
    }

    #[test]
    fn parse_roundtrip() {
        for w in DataWidth::ALL {
            let parsed: DataWidth = w.to_string().parse().expect("roundtrip");
            assert_eq!(parsed, w);
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!("int64".parse::<DataWidth>().is_err());
    }
}
