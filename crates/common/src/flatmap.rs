//! A deterministic open-addressing map for `u64` keys on simulator hot
//! paths.
//!
//! The workspace bans [`std::collections::HashMap`] in simulation crates
//! (randomised iteration order is a determinism hazard), and `BTreeMap`'s
//! pointer chasing is too slow for bookkeeping that runs once per
//! simulated prefetch or resolved target line. [`FlatMap`] fills the gap:
//! linear probing over two flat vectors under a fixed hash (the
//! splitmix64 finaliser), with backward-shift deletion — no tombstones,
//! no allocator traffic after warm-up, and identical behaviour on every
//! run and host.
//!
//! Keys are restricted to values below [`FlatMap::EMPTY`] (`u64::MAX`),
//! which simulator identifiers — line indices, addresses, PCs — always
//! satisfy.

/// A `u64 -> u64` map over flat parallel vectors (see module docs).
///
/// # Examples
///
/// ```
/// use nvr_common::FlatMap;
///
/// let mut m = FlatMap::new();
/// m.insert(7, 100);
/// assert_eq!(m.get(7), Some(100));
/// assert_eq!(m.remove(7), Some(100));
/// assert_eq!(m.get(7), None);
/// assert_eq!(m.len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct FlatMap {
    /// Keys ([`FlatMap::EMPTY`] marks a free slot).
    keys: Vec<u64>,
    /// Values parallel to `keys`.
    vals: Vec<u64>,
    /// Occupied slots.
    len: usize,
}

/// Initial slot count; must be a power of two.
const INITIAL_SLOTS: usize = 64;

/// The splitmix64 finaliser: a fixed, statistically strong mix from key
/// to probe start.
fn hash(key: u64) -> u64 {
    let mut h = key;
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl Default for FlatMap {
    fn default() -> Self {
        FlatMap {
            keys: vec![Self::EMPTY; INITIAL_SLOTS],
            vals: vec![0; INITIAL_SLOTS],
            len: 0,
        }
    }
}

impl FlatMap {
    /// The reserved free-slot marker; not a valid key.
    pub const EMPTY: u64 = u64::MAX;

    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        FlatMap::default()
    }

    /// Occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or overwrites `key`'s value; returns the previous value if
    /// the key was present.
    ///
    /// # Panics
    ///
    /// Panics if `key` is [`FlatMap::EMPTY`].
    pub fn insert(&mut self, key: u64, val: u64) -> Option<u64> {
        assert!(key != Self::EMPTY, "key {key:#x} is the free-slot marker");
        // Keep the load factor under 1/2 so probe chains stay short.
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = (hash(key) as usize) & mask;
        loop {
            if self.keys[slot] == key {
                return Some(std::mem::replace(&mut self.vals[slot], val));
            }
            if self.keys[slot] == Self::EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = val;
                self.len += 1;
                return None;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The value stored for `key`, if present.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<u64> {
        let mask = self.keys.len() - 1;
        let mut slot = (hash(key) as usize) & mask;
        loop {
            if self.keys[slot] == key {
                return Some(self.vals[slot]);
            }
            if self.keys[slot] == Self::EMPTY {
                return None;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Removes `key`, returning its value if it was present. Uses
    /// backward-shift deletion, so probe chains stay dense and lookups
    /// never cross tombstones.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let mask = self.keys.len() - 1;
        let mut hole = (hash(key) as usize) & mask;
        loop {
            if self.keys[hole] == key {
                break;
            }
            if self.keys[hole] == Self::EMPTY {
                return None;
            }
            hole = (hole + 1) & mask;
        }
        let val = self.vals[hole];
        self.len -= 1;
        // Backward shift: walk the cluster after the hole; any entry whose
        // home slot does not lie cyclically inside `(hole, j]` belongs at
        // or before the hole, so it moves into it and leaves a new hole.
        let mut j = hole;
        loop {
            j = (j + 1) & mask;
            if self.keys[j] == Self::EMPTY {
                break;
            }
            let home = (hash(self.keys[j]) as usize) & mask;
            let in_interval = if hole <= j {
                home > hole && home <= j
            } else {
                home > hole || home <= j
            };
            if !in_interval {
                self.keys[hole] = self.keys[j];
                self.vals[hole] = self.vals[j];
                hole = j;
            }
        }
        self.keys[hole] = Self::EMPTY;
        Some(val)
    }

    /// Doubles the slot count, rehashing every occupied entry.
    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![Self::EMPTY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        let mask = new_cap - 1;
        for (key, val) in old_keys.into_iter().zip(old_vals) {
            if key == Self::EMPTY {
                continue;
            }
            let mut slot = (hash(key) as usize) & mask;
            while self.keys[slot] != Self::EMPTY {
                slot = (slot + 1) & mask;
            }
            self.keys[slot] = key;
            self.vals[slot] = val;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = FlatMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.insert(1, 11), Some(10), "overwrite returns old value");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1), Some(11));
        assert_eq!(m.get(3), None);
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.get(2), Some(20));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn survives_growth_and_heavy_churn() {
        let mut m = FlatMap::new();
        for i in 0..10_000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(i), Some(i * 3), "key {i}");
        }
        // Remove evens, keep odds — exercises backward shift across
        // clusters of every shape the hash produces.
        for i in (0..10_000u64).step_by(2) {
            assert_eq!(m.remove(i), Some(i * 3), "key {i}");
        }
        assert_eq!(m.len(), 5_000);
        for i in 0..10_000u64 {
            let expect = if i % 2 == 1 { Some(i * 3) } else { None };
            assert_eq!(m.get(i), expect, "key {i}");
        }
    }

    #[test]
    fn deletion_preserves_colliding_probe_chains() {
        // Dense sequential keys guarantee occupied neighbouring slots, so
        // removals exercise the shift-vs-stay decision both ways.
        let mut m = FlatMap::new();
        for i in 0..48u64 {
            m.insert(i, i);
        }
        for i in 0..48u64 {
            assert_eq!(m.remove(i), Some(i));
            for j in (i + 1)..48u64 {
                assert_eq!(m.get(j), Some(j), "after removing {i}, key {j}");
            }
        }
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "free-slot marker")]
    fn empty_marker_key_rejected() {
        let mut m = FlatMap::new();
        m.insert(FlatMap::EMPTY, 1);
    }
}
