//! Shared primitives for the NVR simulator stack.
//!
//! This crate hosts the small, dependency-free vocabulary used by every
//! other crate in the workspace:
//!
//! * [`Addr`] / [`LineAddr`] — byte and cache-line address newtypes.
//! * [`Cycle`] — simulation time (a plain `u64`; all timing maths stays
//!   frequency-agnostic, matching the paper's normalised-latency reporting).
//! * [`rng::Pcg32`] — a deterministic, seedable PCG-XSH-RR generator.
//!   Simulation reproducibility requires bit-stable random streams across
//!   toolchain updates, so we implement the ~40-line PCG core here instead
//!   of depending on the `rand` crate.
//! * [`width::DataWidth`] — the INT8 / FP16 / INT32 operand widths evaluated
//!   in the paper's Fig. 5.
//! * [`stats`] — counters, ratios and latency histograms shared by the
//!   cache, NPU and prefetcher models.
//!
//! # Examples
//!
//! ```
//! use nvr_common::{Addr, LINE_BYTES};
//!
//! let a = Addr::new(0x8000_1040);
//! assert_eq!(a.line().base().raw(), 0x8000_1040 & !(LINE_BYTES - 1));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod addr;
pub mod error;
pub mod flatmap;
pub mod rng;
pub mod stats;
pub mod width;

pub use addr::{Addr, LineAddr, Region, LINE_BYTES, LINE_SHIFT};
pub use error::NvrError;
pub use flatmap::FlatMap;
pub use rng::Pcg32;
pub use stats::{mean, mean_ci95, Counter, Histogram, Ratio};
pub use width::DataWidth;

/// Simulation time in clock cycles.
///
/// Kept as a plain `u64` alias: timing code performs pervasive arithmetic on
/// cycles and the paper reports only normalised (frequency-independent)
/// latencies, so a newtype would add friction without preventing any real
/// bug class here.
pub type Cycle = u64;

/// Integer ceiling division used throughout the timing models.
///
/// # Examples
///
/// ```
/// assert_eq!(nvr_common::div_ceil(10, 4), 3);
/// assert_eq!(nvr_common::div_ceil(8, 4), 2);
/// assert_eq!(nvr_common::div_ceil(0, 4), 0);
/// ```
///
/// # Panics
///
/// Panics if `d == 0`.
#[inline]
#[must_use]
pub fn div_ceil(n: u64, d: u64) -> u64 {
    assert!(d != 0, "div_ceil divisor must be non-zero");
    n.div_ceil(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_ceil_basics() {
        assert_eq!(div_ceil(0, 1), 0);
        assert_eq!(div_ceil(1, 1), 1);
        assert_eq!(div_ceil(7, 8), 1);
        assert_eq!(div_ceil(9, 8), 2);
        assert_eq!(div_ceil(64, 64), 1);
        assert_eq!(div_ceil(65, 64), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn div_ceil_zero_divisor_panics() {
        let _ = div_ceil(1, 0);
    }
}
