//! Byte addresses, cache-line addresses and contiguous regions.
//!
//! The whole simulator speaks 64-byte cache lines (the Gemmini/L2 line size
//! used in the paper's configuration), so the line geometry is fixed here as
//! the [`LINE_BYTES`] constant rather than threaded through every API.

use std::fmt;

/// Cache line size in bytes used throughout the simulator.
pub const LINE_BYTES: u64 = 64;

/// `log2(LINE_BYTES)`.
pub const LINE_SHIFT: u32 = 6;

/// A byte address in the simulated physical address space.
///
/// # Examples
///
/// ```
/// use nvr_common::Addr;
///
/// let a = Addr::new(0x1000).offset(65);
/// assert_eq!(a.raw(), 0x1041);
/// assert_eq!(a.line().index(), 0x1041 >> 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    #[inline]
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte value.
    #[inline]
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    #[inline]
    #[must_use]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Byte offset of this address within its cache line.
    #[inline]
    #[must_use]
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }

    /// This address advanced by `bytes`.
    #[inline]
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line index (byte address divided by [`LINE_BYTES`]).
///
/// Distinct from [`Addr`] so that cache bookkeeping code cannot accidentally
/// mix byte and line arithmetic.
///
/// # Examples
///
/// ```
/// use nvr_common::{Addr, LineAddr};
///
/// let line = Addr::new(0x1040).line();
/// assert_eq!(line, LineAddr::new(0x41));
/// assert_eq!(line.base(), Addr::new(0x1040));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line index.
    #[inline]
    #[must_use]
    pub const fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// The raw line index.
    #[inline]
    #[must_use]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of this line.
    #[inline]
    #[must_use]
    pub const fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// The line `n` lines after this one.
    #[inline]
    #[must_use]
    pub const fn step(self, n: u64) -> Self {
        LineAddr(self.0 + n)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A contiguous byte region `[start, start + bytes)`.
///
/// Regions describe index-array slices, gathered rows and DMA transfers.
///
/// # Examples
///
/// ```
/// use nvr_common::{Addr, Region};
///
/// let r = Region::new(Addr::new(0x1000), 130);
/// assert_eq!(r.lines().count(), 3); // 0x1000..0x1082 spans 3 lines
/// assert!(r.contains(Addr::new(0x1081)));
/// assert!(!r.contains(Addr::new(0x1082)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Region {
    start: Addr,
    bytes: u64,
}

impl Region {
    /// Creates a region starting at `start` spanning `bytes` bytes.
    #[inline]
    #[must_use]
    pub const fn new(start: Addr, bytes: u64) -> Self {
        Region { start, bytes }
    }

    /// An empty region at address zero.
    #[inline]
    #[must_use]
    pub const fn empty() -> Self {
        Region {
            start: Addr::new(0),
            bytes: 0,
        }
    }

    /// First byte address of the region.
    #[inline]
    #[must_use]
    pub const fn start(self) -> Addr {
        self.start
    }

    /// One-past-the-end byte address.
    #[inline]
    #[must_use]
    pub const fn end(self) -> Addr {
        Addr(self.start.0 + self.bytes)
    }

    /// Length in bytes.
    #[inline]
    #[must_use]
    pub const fn bytes(self) -> u64 {
        self.bytes
    }

    /// Whether the region has zero length.
    #[inline]
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.bytes == 0
    }

    /// Whether `addr` falls within the region.
    #[inline]
    #[must_use]
    pub const fn contains(self, addr: Addr) -> bool {
        addr.0 >= self.start.0 && addr.0 < self.start.0 + self.bytes
    }

    /// Iterator over every cache line the region touches.
    ///
    /// An empty region yields no lines.
    #[must_use]
    pub fn lines(self) -> Lines {
        if self.bytes == 0 {
            // `next > last` encodes the exhausted iterator.
            Lines { next: 1, last: 0 }
        } else {
            Lines {
                next: self.start.line().index(),
                last: Addr(self.start.0 + self.bytes - 1).line().index(),
            }
        }
    }

    /// Number of cache lines the region touches.
    #[inline]
    #[must_use]
    pub fn line_count(self) -> u64 {
        if self.bytes == 0 {
            0
        } else {
            let first = self.start.line().index();
            let last = Addr(self.start.0 + self.bytes - 1).line().index();
            last - first + 1
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.start, self.end())
    }
}

/// Iterator over the cache lines of a [`Region`], created by [`Region::lines`].
#[derive(Debug, Clone)]
pub struct Lines {
    next: u64,
    last: u64,
}

impl Iterator for Lines {
    type Item = LineAddr;

    fn next(&mut self) -> Option<LineAddr> {
        if self.next > self.last {
            None
        } else {
            let line = LineAddr(self.next);
            self.next += 1;
            Some(line)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.last + 1).saturating_sub(self.next) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Lines {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_roundtrip() {
        let a = Addr::new(0x1040);
        assert_eq!(a.line().base(), Addr::new(0x1040));
        let b = Addr::new(0x107f);
        assert_eq!(b.line(), a.line());
        assert_eq!(b.line_offset(), 0x3f);
        assert_eq!(Addr::new(0x1080).line(), a.line().step(1));
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr::new(0x1234).to_string(), "0x00001234");
        assert_eq!(format!("{:x}", Addr::new(0xAB)), "ab");
    }

    #[test]
    fn region_line_iteration_exact() {
        let r = Region::new(Addr::new(0x1000), 64);
        let lines: Vec<_> = r.lines().collect();
        assert_eq!(lines, vec![LineAddr::new(0x40)]);

        let r = Region::new(Addr::new(0x103f), 2); // straddles a boundary
        assert_eq!(r.line_count(), 2);
        assert_eq!(r.lines().count(), 2);
    }

    #[test]
    fn region_empty_yields_nothing() {
        let r = Region::new(Addr::new(0x1000), 0);
        assert!(r.is_empty());
        assert_eq!(r.line_count(), 0);
        assert_eq!(r.lines().count(), 0);
        assert!(!r.contains(Addr::new(0x1000)));
    }

    #[test]
    fn region_contains_boundaries() {
        let r = Region::new(Addr::new(100), 10);
        assert!(r.contains(Addr::new(100)));
        assert!(r.contains(Addr::new(109)));
        assert!(!r.contains(Addr::new(110)));
        assert!(!r.contains(Addr::new(99)));
    }

    #[test]
    fn lines_size_hint_matches_count() {
        let r = Region::new(Addr::new(0x0), 1000);
        let it = r.lines();
        assert_eq!(it.len(), r.line_count() as usize);
    }
}
