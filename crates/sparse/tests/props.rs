//! Property-based tests of the sparse-format substrate.

use proptest::prelude::*;

use nvr_common::Pcg32;
use nvr_sparse::gen::{random_csr, SparsityPattern};
use nvr_sparse::{top_k_indices, BitmapMatrix, DenseMatrix, VoxelHashTable, VoxelKey};

proptest! {
    /// CSR -> CSC -> CSR is identity on the dense rendering.
    #[test]
    fn csr_csc_roundtrip(seed in any::<u64>(), rows in 1usize..40, cols in 1usize..40) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let m = random_csr(rows, cols, 0.2, SparsityPattern::Uniform, &mut rng);
        let back = m.to_csc().to_csr();
        prop_assert_eq!(m.to_dense(), back.to_dense());
    }

    /// Bitmap encoding is lossless.
    #[test]
    fn bitmap_roundtrip(seed in any::<u64>(), rows in 1usize..20, cols in 1usize..130) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let m = random_csr(rows, cols, 0.15, SparsityPattern::Uniform, &mut rng);
        let bm = BitmapMatrix::from_csr(&m);
        prop_assert_eq!(bm.nnz(), m.nnz());
        prop_assert_eq!(bm.to_csr().to_dense(), m.to_dense());
    }

    /// SpMM distributes over identity: W * I == dense(W).
    #[test]
    fn spmm_identity(seed in any::<u64>(), n in 1usize..24) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let w = random_csr(n, n, 0.3, SparsityPattern::Uniform, &mut rng);
        let mut eye = DenseMatrix::zeros(n, n);
        for i in 0..n {
            *eye.get_mut(i, i) = 1.0;
        }
        let out = w.spmm(&eye);
        prop_assert!(out.max_abs_diff(&w.to_dense()) < 1e-5);
    }

    /// top_k agrees with a full sort for arbitrary inputs.
    #[test]
    fn topk_matches_sort(scores in prop::collection::vec(0.0f32..1.0, 1..200), frac in 0usize..=100) {
        let k = scores.len() * frac / 100;
        let got = top_k_indices(&scores, k);
        let mut want: Vec<u32> = (0..scores.len() as u32).collect();
        want.sort_by(|&a, &b| {
            scores[b as usize].partial_cmp(&scores[a as usize]).unwrap().then(a.cmp(&b))
        });
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    /// Voxel tables resolve every inserted key to its slot, and miss keys
    /// that were never inserted.
    #[test]
    fn voxel_table_resolves(seed in any::<u64>(), n in 1usize..150) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let (table, keys) = VoxelHashTable::random(n, 64, n * 4, &mut rng);
        for (i, &k) in keys.iter().enumerate() {
            prop_assert_eq!(table.lookup(k), Some(i as u32));
            let path = table.probe_path(k);
            prop_assert!(!path.is_empty());
            prop_assert!(path.iter().all(|&b| b < table.bucket_count()));
        }
        // A key far outside the extent was never inserted.
        prop_assert_eq!(table.lookup(VoxelKey::new(1 << 20, 0, 0)), None);
    }

    /// Generated CSR matrices always have sorted, in-range, deduplicated rows.
    #[test]
    fn generator_invariants(
        seed in any::<u64>(),
        rows in 1usize..30,
        cols in 8usize..200,
        pat in 0usize..4,
    ) {
        let pattern = match pat {
            0 => SparsityPattern::Uniform,
            1 => SparsityPattern::Block { block: 4 },
            2 => SparsityPattern::Banded { half_width: 8 },
            _ => SparsityPattern::PowerLaw { exponent: 1.1 },
        };
        let mut rng = Pcg32::seed_from_u64(seed);
        let m = random_csr(rows, cols, 0.1, pattern, &mut rng);
        for r in 0..m.rows() {
            let row = m.row(r);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(row.iter().all(|&c| (c as usize) < cols));
        }
        prop_assert!(m.values().iter().all(|&v| v != 0.0));
    }
}
