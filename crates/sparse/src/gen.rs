//! Deterministic random sparse-matrix generators.
//!
//! Workload realism hinges on the *structure* of sparsity, not just its
//! level: uniform pruning, block pruning (structured), banded locality and
//! power-law (graph-like) column popularity all stress a prefetcher very
//! differently. The paper's Fig. 5 workloads draw on all four.

use nvr_common::Pcg32;

use crate::csr::CsrMatrix;

/// Structural family of generated sparsity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparsityPattern {
    /// Independently uniform non-zero placement (fine-grained pruning).
    Uniform,
    /// Non-zeros clustered into `block`-wide column runs (structured
    /// pruning / Switch-Transformer-style block routing).
    Block {
        /// Width of each non-zero run, in columns.
        block: usize,
    },
    /// Non-zeros confined to a diagonal band (locally connected layers).
    Banded {
        /// Half-width of the band around the diagonal.
        half_width: usize,
    },
    /// Column popularity follows a Zipf law with the given exponent
    /// (graph adjacency with hub nodes).
    PowerLaw {
        /// Zipf exponent; larger means more skew.
        exponent: f64,
    },
}

/// Generates a random CSR matrix of the requested shape and density.
///
/// The result is deterministic in `rng`. Duplicate placements collapse, so
/// the realised density can fall slightly below the request at high
/// densities; each row receives `round(density * cols)` distinct non-zeros
/// where the pattern allows.
///
/// # Examples
///
/// ```
/// use nvr_sparse::gen::{random_csr, SparsityPattern};
/// use nvr_common::Pcg32;
///
/// let mut rng = Pcg32::seed_from_u64(7);
/// let m = random_csr(32, 128, 0.05, SparsityPattern::Uniform, &mut rng);
/// assert_eq!(m.rows(), 32);
/// assert!(m.nnz() > 0);
/// ```
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]` or the shape is empty.
#[must_use]
pub fn random_csr(
    rows: usize,
    cols: usize,
    density: f64,
    pattern: SparsityPattern,
    rng: &mut Pcg32,
) -> CsrMatrix {
    assert!(rows > 0 && cols > 0, "matrix shape must be non-empty");
    assert!(
        (0.0..=1.0).contains(&density),
        "density {density} must be in [0, 1]"
    );
    let per_row = ((density * cols as f64).round() as usize).min(cols);

    let mut rowptr = vec![0u32; rows + 1];
    let mut col_indices: Vec<u32> = Vec::with_capacity(rows * per_row);
    let mut values: Vec<f32> = Vec::with_capacity(rows * per_row);

    for r in 0..rows {
        let mut row_cols = place_row(r, rows, cols, per_row, pattern, rng);
        row_cols.sort_unstable();
        row_cols.dedup();
        rowptr[r + 1] = rowptr[r] + row_cols.len() as u32;
        for c in row_cols {
            col_indices.push(c);
            // Values in (0, 1]: non-zero by construction.
            values.push(rng.gen_f64() as f32 * 0.999 + 0.001);
        }
    }
    CsrMatrix::from_parts(rows, cols, rowptr, col_indices, values)
}

fn place_row(
    r: usize,
    rows: usize,
    cols: usize,
    per_row: usize,
    pattern: SparsityPattern,
    rng: &mut Pcg32,
) -> Vec<u32> {
    match pattern {
        SparsityPattern::Uniform => rng
            .sample_indices(cols, per_row)
            .into_iter()
            .map(|c| c as u32)
            .collect(),
        SparsityPattern::Block { block } => {
            let block = block.max(1).min(cols);
            let n_blocks = per_row.div_ceil(block);
            let starts_avail = cols.div_ceil(block);
            let chosen = rng.sample_indices(starts_avail, n_blocks.min(starts_avail));
            let mut out = Vec::with_capacity(per_row);
            'fill: for s in chosen {
                for c in (s * block)..((s + 1) * block).min(cols) {
                    out.push(c as u32);
                    if out.len() == per_row {
                        break 'fill;
                    }
                }
            }
            out
        }
        SparsityPattern::Banded { half_width } => {
            // Centre the band on the row's diagonal position.
            let centre = if rows <= 1 {
                0
            } else {
                r * (cols - 1) / (rows - 1)
            };
            let lo = centre.saturating_sub(half_width);
            let hi = (centre + half_width + 1).min(cols);
            let span = hi - lo;
            rng.sample_indices(span, per_row.min(span))
                .into_iter()
                .map(|c| (lo + c) as u32)
                .collect()
        }
        SparsityPattern::PowerLaw { exponent } => {
            let zipf = nvr_common::rng::Zipf::new(cols, exponent);
            let mut out = Vec::with_capacity(per_row);
            // Rejection keeps columns distinct while preserving skew.
            let mut guard = 0;
            while out.len() < per_row && guard < per_row * 64 {
                let c = zipf.sample(rng) as u32;
                if !out.contains(&c) {
                    out.push(c);
                }
                guard += 1;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_density_close_to_request() {
        let mut rng = Pcg32::seed_from_u64(1);
        let m = random_csr(100, 1000, 0.1, SparsityPattern::Uniform, &mut rng);
        assert!((m.density() - 0.1).abs() < 0.01, "density {}", m.density());
        // Every row exactly per_row distinct columns.
        for r in 0..m.rows() {
            assert_eq!(m.row_nnz(r), 100);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Pcg32::seed_from_u64(9);
        let mut b = Pcg32::seed_from_u64(9);
        let ma = random_csr(20, 50, 0.2, SparsityPattern::Uniform, &mut a);
        let mb = random_csr(20, 50, 0.2, SparsityPattern::Uniform, &mut b);
        assert_eq!(ma, mb);
    }

    #[test]
    fn rows_are_sorted_unique() {
        let mut rng = Pcg32::seed_from_u64(3);
        for pattern in [
            SparsityPattern::Uniform,
            SparsityPattern::Block { block: 8 },
            SparsityPattern::Banded { half_width: 30 },
            SparsityPattern::PowerLaw { exponent: 1.1 },
        ] {
            let m = random_csr(16, 256, 0.1, pattern, &mut rng);
            for r in 0..m.rows() {
                let row = m.row(r);
                assert!(row.windows(2).all(|w| w[0] < w[1]), "{pattern:?} row {r}");
            }
        }
    }

    #[test]
    fn block_pattern_is_clustered() {
        let mut rng = Pcg32::seed_from_u64(4);
        let m = random_csr(
            8,
            512,
            0.125,
            SparsityPattern::Block { block: 16 },
            &mut rng,
        );
        // Adjacency: most consecutive non-zero pairs within a row differ by 1.
        let mut adjacent = 0usize;
        let mut total = 0usize;
        for r in 0..m.rows() {
            for w in m.row(r).windows(2) {
                total += 1;
                if w[1] - w[0] == 1 {
                    adjacent += 1;
                }
            }
        }
        assert!(
            adjacent * 10 >= total * 8,
            "block rows should be ≥80% adjacent pairs ({adjacent}/{total})"
        );
    }

    #[test]
    fn banded_pattern_stays_in_band() {
        let mut rng = Pcg32::seed_from_u64(5);
        let hw = 20;
        let m = random_csr(
            64,
            64,
            0.1,
            SparsityPattern::Banded { half_width: hw },
            &mut rng,
        );
        for r in 0..m.rows() {
            for &c in m.row(r) {
                let dist = (c as i64 - r as i64).unsigned_abs() as usize;
                assert!(dist <= hw + 1, "row {r} col {c} outside band");
            }
        }
    }

    #[test]
    fn power_law_has_hub_columns() {
        let mut rng = Pcg32::seed_from_u64(6);
        let m = random_csr(
            256,
            1024,
            0.02,
            SparsityPattern::PowerLaw { exponent: 1.2 },
            &mut rng,
        );
        let mut counts = vec![0usize; m.cols()];
        for r in 0..m.rows() {
            for &c in m.row(r) {
                counts[c as usize] += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = counts[..10].iter().sum::<usize>();
        let total: usize = counts.iter().sum();
        assert!(
            top * 4 > total,
            "top-10 columns should draw >25% of nnz ({top}/{total})"
        );
    }

    #[test]
    #[should_panic(expected = "density")]
    fn bad_density_rejected() {
        let mut rng = Pcg32::seed_from_u64(0);
        let _ = random_csr(2, 2, 1.5, SparsityPattern::Uniform, &mut rng);
    }
}
