//! Voxel hash tables for point-cloud networks.
//!
//! MinkowskiNet / SparseConvNet kernels locate a voxel's neighbours by
//! probing a hash table keyed on quantised 3-D coordinates (§II-A calls out
//! "hash-table indexing ... in point cloud networks"). The table probe is a
//! *non-affine* `sparse_func`: the final gather address depends on a memory
//! lookup, which defeats affine-pattern prefetchers (IMP) but not runahead,
//! which simply executes the probe speculatively.

use nvr_common::Pcg32;

/// A quantised voxel coordinate.
///
/// # Examples
///
/// ```
/// use nvr_sparse::VoxelKey;
///
/// let k = VoxelKey::new(1, -2, 3);
/// assert_eq!(k.offset(0, 1, 0), VoxelKey::new(1, -1, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VoxelKey {
    /// Quantised x coordinate.
    pub x: i32,
    /// Quantised y coordinate.
    pub y: i32,
    /// Quantised z coordinate.
    pub z: i32,
}

impl VoxelKey {
    /// Creates a key from quantised coordinates.
    #[must_use]
    pub const fn new(x: i32, y: i32, z: i32) -> Self {
        VoxelKey { x, y, z }
    }

    /// The key offset by `(dx, dy, dz)` — a convolution kernel neighbour.
    #[must_use]
    pub const fn offset(self, dx: i32, dy: i32, dz: i32) -> Self {
        VoxelKey {
            x: self.x + dx,
            y: self.y + dy,
            z: self.z + dz,
        }
    }

    /// The 64-bit mixing hash used for bucket selection.
    ///
    /// FNV-1a over the three coordinates, finalised with a 64-bit avalanche
    /// step; deterministic across platforms.
    #[must_use]
    pub fn hash(self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for v in [self.x, self.y, self.z] {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        // splitmix64 finaliser for avalanche.
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
}

/// An open-addressing (linear probing) voxel hash table.
///
/// Maps voxel keys to dense feature-row slots — the indirection point-cloud
/// workloads traverse. [`VoxelHashTable::probe_path`] exposes the bucket
/// sequence a lookup touches, which the trace generator turns into memory
/// accesses.
///
/// # Examples
///
/// ```
/// use nvr_sparse::{VoxelHashTable, VoxelKey};
///
/// let mut t = VoxelHashTable::with_capacity(64);
/// t.insert(VoxelKey::new(0, 0, 0), 7);
/// assert_eq!(t.lookup(VoxelKey::new(0, 0, 0)), Some(7));
/// assert_eq!(t.lookup(VoxelKey::new(1, 0, 0)), None);
/// ```
#[derive(Debug, Clone)]
pub struct VoxelHashTable {
    /// `None` = empty bucket; `Some((key, slot))` = occupied.
    buckets: Vec<Option<(VoxelKey, u32)>>,
    mask: u64,
    len: usize,
}

impl VoxelHashTable {
    /// Creates a table with at least `capacity` buckets (rounded up to a
    /// power of two, minimum 8).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let n = capacity.next_power_of_two().max(8);
        VoxelHashTable {
            buckets: vec![None; n],
            mask: (n - 1) as u64,
            len: 0,
        }
    }

    /// Number of buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Load factor `len / buckets`.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.buckets.len() as f64
    }

    /// Inserts `key -> slot`; returns the previous slot if the key existed.
    ///
    /// # Panics
    ///
    /// Panics if the table would exceed a 0.9 load factor — the generators
    /// size tables up front, so growth is deliberately unimplemented.
    pub fn insert(&mut self, key: VoxelKey, slot: u32) -> Option<u32> {
        assert!(
            (self.len + 1) as f64 <= self.buckets.len() as f64 * 0.9,
            "voxel table over 90% load; size it larger up front"
        );
        let mut i = key.hash() & self.mask;
        loop {
            match &mut self.buckets[i as usize] {
                Some((k, s)) if *k == key => {
                    let prev = *s;
                    *s = slot;
                    return Some(prev);
                }
                Some(_) => i = (i + 1) & self.mask,
                empty @ None => {
                    *empty = Some((key, slot));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// Looks up the slot stored for `key`.
    #[must_use]
    pub fn lookup(&self, key: VoxelKey) -> Option<u32> {
        let mut i = key.hash() & self.mask;
        loop {
            match &self.buckets[i as usize] {
                Some((k, s)) if *k == key => return Some(*s),
                Some(_) => i = (i + 1) & self.mask,
                None => return None,
            }
        }
    }

    /// The sequence of bucket indices a lookup for `key` probes, including
    /// the terminating bucket (match or empty).
    ///
    /// This is the memory touch sequence of the hardware hash unit: each
    /// probe reads one bucket entry.
    #[must_use]
    pub fn probe_path(&self, key: VoxelKey) -> Vec<usize> {
        let mut path = Vec::new();
        let mut i = key.hash() & self.mask;
        loop {
            path.push(i as usize);
            match &self.buckets[i as usize] {
                Some((k, _)) if *k == key => return path,
                Some(_) => i = (i + 1) & self.mask,
                None => return path,
            }
        }
    }

    /// Builds a table from `n_points` random occupied voxels in a cube of
    /// side `extent`, assigning slots `0..n_points` in insertion order.
    /// Returns the table and the inserted keys.
    ///
    /// # Panics
    ///
    /// Panics if `extent == 0`.
    #[must_use]
    pub fn random(
        n_points: usize,
        extent: u32,
        capacity: usize,
        rng: &mut Pcg32,
    ) -> (Self, Vec<VoxelKey>) {
        assert!(extent > 0, "extent must be non-zero");
        let mut table = VoxelHashTable::with_capacity(capacity.max(n_points * 2));
        let mut keys = Vec::with_capacity(n_points);
        while keys.len() < n_points {
            let key = VoxelKey::new(
                rng.gen_range(u64::from(extent)) as i32,
                rng.gen_range(u64::from(extent)) as i32,
                rng.gen_range(u64::from(extent)) as i32,
            );
            if table.lookup(key).is_none() {
                table.insert(key, keys.len() as u32);
                keys.push(key);
            }
        }
        (table, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = VoxelHashTable::with_capacity(32);
        for i in 0..10 {
            t.insert(VoxelKey::new(i, i * 2, -i), i as u32);
        }
        for i in 0..10 {
            assert_eq!(t.lookup(VoxelKey::new(i, i * 2, -i)), Some(i as u32));
        }
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let mut t = VoxelHashTable::with_capacity(8);
        let k = VoxelKey::new(1, 2, 3);
        assert_eq!(t.insert(k, 5), None);
        assert_eq!(t.insert(k, 9), Some(5));
        assert_eq!(t.lookup(k), Some(9));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn missing_key_returns_none() {
        let t = VoxelHashTable::with_capacity(8);
        assert_eq!(t.lookup(VoxelKey::new(9, 9, 9)), None);
    }

    #[test]
    fn probe_path_ends_at_match() {
        let mut t = VoxelHashTable::with_capacity(16);
        let k = VoxelKey::new(4, 5, 6);
        t.insert(k, 1);
        let path = t.probe_path(k);
        assert_eq!(
            *path.last().expect("non-empty"),
            (k.hash() & t.mask) as usize
        );
        assert_eq!(path.len(), 1, "direct hit probes one bucket");
    }

    #[test]
    fn collisions_extend_probe_path() {
        let mut t = VoxelHashTable::with_capacity(8);
        // Force collisions by filling half the (tiny) table.
        let mut rng = Pcg32::seed_from_u64(10);
        let (_table, _) = VoxelHashTable::random(3, 100, 8, &mut rng);
        // Collision behaviour: total probes across many lookups in a fuller
        // table exceed one per lookup.
        let mut rng = Pcg32::seed_from_u64(11);
        let (table, keys) = VoxelHashTable::random(200, 64, 512, &mut rng);
        let probes: usize = keys.iter().map(|&k| table.probe_path(k).len()).sum();
        assert!(probes >= keys.len());
        assert!(keys.iter().all(|&k| table.lookup(k).is_some()));
        let _ = t.insert(VoxelKey::new(0, 0, 0), 0);
    }

    #[test]
    fn hash_is_deterministic_and_spread() {
        let a = VoxelKey::new(1, 2, 3).hash();
        let b = VoxelKey::new(1, 2, 3).hash();
        assert_eq!(a, b);
        let c = VoxelKey::new(1, 2, 4).hash();
        assert_ne!(a, c);
        assert!((a ^ c).count_ones() > 8, "near keys should differ widely");
    }

    #[test]
    #[should_panic(expected = "90% load")]
    fn over_load_panics() {
        let mut t = VoxelHashTable::with_capacity(8);
        for i in 0..8 {
            t.insert(VoxelKey::new(i, 0, 0), i as u32);
        }
    }

    #[test]
    fn random_table_unique_keys_sequential_slots() {
        let mut rng = Pcg32::seed_from_u64(12);
        let (table, keys) = VoxelHashTable::random(50, 32, 128, &mut rng);
        assert_eq!(keys.len(), 50);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(table.lookup(k), Some(i as u32));
        }
    }
}
