//! Coordinate-format sparse matrices (construction intermediate).

use crate::csr::CsrMatrix;

/// A matrix stored as `(row, col, value)` triplets.
///
/// COO is the natural construction format: generators append triplets in
/// any order, then convert once to CSR for traversal. Duplicates are summed
/// during conversion.
///
/// # Examples
///
/// ```
/// use nvr_sparse::CooMatrix;
///
/// let mut m = CooMatrix::new(2, 2);
/// m.push(0, 1, 2.0);
/// m.push(0, 1, 3.0);
/// let csr = m.to_csr();
/// assert_eq!(csr.nnz(), 1);
/// assert_eq!(csr.row_values(0), &[5.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    triplets: Vec<(u32, u32, f32)>,
}

impl CooMatrix {
    /// An empty COO matrix of the given shape.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            triplets: Vec::new(),
        }
    }

    /// Builds from a slice of `(row, col, value)` triplets.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    #[must_use]
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut m = CooMatrix::new(rows, cols);
        for &(r, c, v) in triplets {
            m.push(r, c, v);
        }
        m
    }

    /// Appends one entry.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows` or `col >= cols`.
    pub fn push(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows, "row {row} out of range ({})", self.rows);
        assert!(col < self.cols, "col {col} out of range ({})", self.cols);
        self.triplets.push((row as u32, col as u32, value));
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (before duplicate merging).
    #[must_use]
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// Whether no triplets are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Converts to CSR, sorting row-major and summing duplicates.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.triplets.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut rowptr = vec![0u32; self.rows + 1];
        let mut col_indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<f32> = Vec::with_capacity(sorted.len());
        let mut prev: Option<(u32, u32)> = None;
        for (r, c, v) in sorted {
            if prev == Some((r, c)) {
                *values.last_mut().expect("merge follows a push") += v;
            } else {
                col_indices.push(c);
                values.push(v);
                rowptr[r as usize + 1] += 1;
                prev = Some((r, c));
            }
        }
        for i in 0..self.rows {
            rowptr[i + 1] += rowptr[i];
        }
        CsrMatrix::from_parts(self.rows, self.cols, rowptr, col_indices, values)
    }
}

impl FromIterator<(usize, usize, f32)> for CooMatrix {
    /// Collects triplets, inferring the shape as the maximum coordinates
    /// plus one.
    fn from_iter<I: IntoIterator<Item = (usize, usize, f32)>>(iter: I) -> Self {
        let triplets: Vec<_> = iter.into_iter().collect();
        let rows = triplets.iter().map(|t| t.0 + 1).max().unwrap_or(0);
        let cols = triplets.iter().map(|t| t.1 + 1).max().unwrap_or(0);
        CooMatrix::from_triplets(rows, cols, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unordered_triplets_sort_into_csr() {
        let m =
            CooMatrix::from_triplets(3, 3, &[(2, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (0, 0, 4.0)]);
        let csr = m.to_csr();
        assert_eq!(csr.row(0), &[0, 2]);
        assert_eq!(csr.row(1), &[1]);
        assert_eq!(csr.row(2), &[0]);
    }

    #[test]
    fn duplicates_summed() {
        let m = CooMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 0, 2.5), (0, 1, 1.0)]);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.row_values(0), &[3.5, 1.0]);
    }

    #[test]
    fn duplicate_in_same_col_different_rows_not_merged() {
        let m = CooMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 2.0)]);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.row_values(0), &[1.0]);
        assert_eq!(csr.row_values(1), &[2.0]);
    }

    #[test]
    fn from_iterator_infers_shape() {
        let m: CooMatrix = vec![(0usize, 5usize, 1.0f32), (3, 1, 2.0)]
            .into_iter()
            .collect();
        assert_eq!((m.rows(), m.cols()), (4, 6));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn empty_matrix() {
        let m = CooMatrix::new(2, 2);
        assert!(m.is_empty());
        assert_eq!(m.to_csr().nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        CooMatrix::new(1, 1).push(1, 0, 1.0);
    }
}
