//! Compressed sparse row matrices.
//!
//! The canonical format of the paper's SpMM kernels (Fig. 2): `rowptr`
//! delimits each row's slice of `col_indices`/`values`, so the NPU's sparse
//! unit walks `rowptr[i]..rowptr[i+1]` and gathers `IA[col_indices[j]]` —
//! precisely the indirect chain NVR prefetches.

use crate::csc::CscMatrix;
use crate::dense::DenseMatrix;

/// A CSR matrix with `f32` values.
///
/// # Examples
///
/// ```
/// use nvr_sparse::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (1, 0, 3.0)]);
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.row(0), &[1]);
/// assert_eq!(m.row_values(1), &[3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    rowptr: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the parts are inconsistent: `rowptr` must have `rows + 1`
    /// monotonically non-decreasing entries ending at `col_indices.len()`,
    /// `col_indices` and `values` must have equal length, and every column
    /// index must be `< cols`.
    #[must_use]
    pub fn from_parts(
        rows: usize,
        cols: usize,
        rowptr: Vec<u32>,
        col_indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(rowptr.len(), rows + 1, "rowptr length mismatch");
        assert_eq!(
            col_indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert_eq!(
            *rowptr.last().expect("rowptr non-empty") as usize,
            col_indices.len(),
            "rowptr must end at nnz"
        );
        assert!(
            rowptr.windows(2).all(|w| w[0] <= w[1]),
            "rowptr must be non-decreasing"
        );
        assert!(
            col_indices.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        CsrMatrix {
            rows,
            cols,
            rowptr,
            col_indices,
            values,
        }
    }

    /// Builds from `(row, col, value)` triplets; duplicate positions are
    /// summed. Triplets may be in any order.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of range.
    #[must_use]
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        crate::coo::CooMatrix::from_triplets(rows, cols, triplets).to_csr()
    }

    /// An all-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            rowptr: vec![0; rows + 1],
            col_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_indices.len()
    }

    /// Fraction of cells stored: `nnz / (rows * cols)`; 0 for empty shapes.
    #[must_use]
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// The row-pointer array (`rows + 1` entries).
    #[must_use]
    pub fn rowptr(&self) -> &[u32] {
        &self.rowptr
    }

    /// All column indices, row-major.
    #[must_use]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// All values, row-major.
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Column indices of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[u32] {
        let (a, b) = self.row_range(i);
        &self.col_indices[a..b]
    }

    /// Values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row_values(&self, i: usize) -> &[f32] {
        let (a, b) = self.row_range(i);
        &self.values[a..b]
    }

    /// Start/end offsets of row `i` in the index/value arrays.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row_range(&self, i: usize) -> (usize, usize) {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        (self.rowptr[i] as usize, self.rowptr[i + 1] as usize)
    }

    /// Number of non-zeros in row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row_nnz(&self, i: usize) -> usize {
        let (a, b) = self.row_range(i);
        b - a
    }

    /// Sparse × dense multiply: `self (r×c) * rhs (c×k) -> dense (r×k)`.
    ///
    /// This is the one-side-sparsity kernel of Fig. 2; used in tests to
    /// validate trace generators against ground-truth numerics.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn spmm(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.rows(), "spmm dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols());
        for i in 0..self.rows {
            let (a, b) = self.row_range(i);
            for j in a..b {
                let col = self.col_indices[j] as usize;
                let w = self.values[j];
                for k in 0..rhs.cols() {
                    *out.get_mut(i, k) += w * rhs.get(col, k);
                }
            }
        }
        out
    }

    /// Converts to CSC (column-major compressed) form.
    #[must_use]
    pub fn to_csc(&self) -> CscMatrix {
        let mut colptr = vec![0u32; self.cols + 1];
        for &c in &self.col_indices {
            colptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            colptr[i + 1] += colptr[i];
        }
        let mut row_indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut next = colptr.clone();
        for r in 0..self.rows {
            let (a, b) = self.row_range(r);
            for j in a..b {
                let c = self.col_indices[j] as usize;
                let dst = next[c] as usize;
                row_indices[dst] = r as u32;
                values[dst] = self.values[j];
                next[c] += 1;
            }
        }
        CscMatrix::from_parts(self.rows, self.cols, colptr, row_indices, values)
    }

    /// Converts to a dense matrix (for tests and small examples).
    #[must_use]
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (a, b) = self.row_range(i);
            for j in a..b {
                *out.get_mut(i, self.col_indices[j] as usize) += self.values[j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[0 1 0]
        //  [2 0 3]]
        CsrMatrix::from_parts(2, 3, vec![0, 1, 3], vec![1, 0, 2], vec![1.0, 2.0, 3.0])
    }

    #[test]
    fn geometry_and_rows() {
        let m = sample();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (2, 3, 3));
        assert_eq!(m.row(0), &[1]);
        assert_eq!(m.row(1), &[0, 2]);
        assert_eq!(m.row_values(1), &[2.0, 3.0]);
        assert_eq!(m.row_nnz(0), 1);
        assert!((m.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::zeros(4, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.rowptr(), &[0, 0, 0, 0, 0]);
        assert_eq!(z.density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "rowptr length")]
    fn bad_rowptr_len_rejected() {
        let _ = CsrMatrix::from_parts(2, 2, vec![0, 0], vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_rowptr_rejected() {
        let _ = CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "column index")]
    fn out_of_range_col_rejected() {
        let _ = CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let rhs = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let out = m.spmm(&rhs);
        // Row 0: 1*[0,1] = [0,1]; Row 1: 2*[1,0] + 3*[1,1] = [5,3]
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(0, 1), 1.0);
        assert_eq!(out.get(1, 0), 5.0);
        assert_eq!(out.get(1, 1), 3.0);
    }

    #[test]
    fn csc_roundtrip_preserves_dense() {
        let m = sample();
        let via_csc = m.to_csc().to_csr();
        assert_eq!(m.to_dense(), via_csc.to_dense());
    }

    #[test]
    fn triplets_sum_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 4.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense().get(0, 0), 3.0);
    }
}
