//! Compressed sparse column matrices.
//!
//! Used for the two-sides-sparsity kernel of Fig. 2, where both the weight
//! matrix (CSR) and the input activation (CSC) are compressed and the
//! intersection of their index lists drives the computation.

use crate::csr::CsrMatrix;

/// A CSC matrix with `f32` values.
///
/// # Examples
///
/// ```
/// use nvr_sparse::{CscMatrix, CsrMatrix};
///
/// let csr = CsrMatrix::from_triplets(2, 2, &[(0, 1, 5.0)]);
/// let csc = csr.to_csc();
/// assert_eq!(csc.col(1), &[0]);
/// assert_eq!(csc.nnz(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    colptr: Vec<u32>,
    row_indices: Vec<u32>,
    values: Vec<f32>,
}

impl CscMatrix {
    /// Builds a CSC matrix from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the parts are inconsistent (mirror of
    /// [`CsrMatrix::from_parts`]).
    #[must_use]
    pub fn from_parts(
        rows: usize,
        cols: usize,
        colptr: Vec<u32>,
        row_indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(colptr.len(), cols + 1, "colptr length mismatch");
        assert_eq!(
            row_indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert_eq!(
            *colptr.last().expect("colptr non-empty") as usize,
            row_indices.len(),
            "colptr must end at nnz"
        );
        assert!(
            colptr.windows(2).all(|w| w[0] <= w[1]),
            "colptr must be non-decreasing"
        );
        assert!(
            row_indices.iter().all(|&r| (r as usize) < rows),
            "row index out of range"
        );
        CscMatrix {
            rows,
            cols,
            colptr,
            row_indices,
            values,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.row_indices.len()
    }

    /// The column-pointer array (`cols + 1` entries).
    #[must_use]
    pub fn colptr(&self) -> &[u32] {
        &self.colptr
    }

    /// All row indices, column-major.
    #[must_use]
    pub fn row_indices(&self) -> &[u32] {
        &self.row_indices
    }

    /// All values, column-major.
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Row indices of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[must_use]
    pub fn col(&self, j: usize) -> &[u32] {
        let (a, b) = self.col_range(j);
        &self.row_indices[a..b]
    }

    /// Values of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[must_use]
    pub fn col_values(&self, j: usize) -> &[f32] {
        let (a, b) = self.col_range(j);
        &self.values[a..b]
    }

    /// Start/end offsets of column `j` in the index/value arrays.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[must_use]
    pub fn col_range(&self, j: usize) -> (usize, usize) {
        assert!(j < self.cols, "col {j} out of range ({} cols)", self.cols);
        (self.colptr[j] as usize, self.colptr[j + 1] as usize)
    }

    /// Converts back to CSR form.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        let mut rowptr = vec![0u32; self.rows + 1];
        for &r in &self.row_indices {
            rowptr[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut col_indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut next = rowptr.clone();
        for c in 0..self.cols {
            let (a, b) = self.col_range(c);
            for j in a..b {
                let r = self.row_indices[j] as usize;
                let dst = next[r] as usize;
                col_indices[dst] = c as u32;
                values[dst] = self.values[j];
                next[r] += 1;
            }
        }
        CsrMatrix::from_parts(self.rows, self.cols, rowptr, col_indices, values)
    }

    /// Sparse–sparse row/column intersection size between a CSR row and a
    /// CSC column: the number of index matches (`j == k` in Fig. 2's
    /// two-sides listing). Both inputs must be sorted ascending, which CSR
    /// and CSC construction guarantees.
    #[must_use]
    pub fn intersect_count(row_cols: &[u32], col_rows: &[u32]) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < row_cols.len() && j < col_rows.len() {
            match row_cols[i].cmp(&col_rows[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_csr_csc_csr() {
        let csr =
            CsrMatrix::from_triplets(3, 4, &[(0, 3, 1.0), (1, 0, 2.0), (1, 2, 3.0), (2, 2, 4.0)]);
        let back = csr.to_csc().to_csr();
        assert_eq!(csr.to_dense(), back.to_dense());
    }

    #[test]
    fn col_access() {
        let csr = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (2, 1, 5.0)]);
        let csc = csr.to_csc();
        assert_eq!(csc.col(1), &[0, 2]);
        assert_eq!(csc.col_values(1), &[1.0, 5.0]);
        assert_eq!(csc.col(0), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "colptr length")]
    fn bad_colptr_rejected() {
        let _ = CscMatrix::from_parts(2, 2, vec![0, 0], vec![], vec![]);
    }

    #[test]
    fn intersect_counts_matches() {
        assert_eq!(CscMatrix::intersect_count(&[1, 3, 5], &[2, 3, 5, 9]), 2);
        assert_eq!(CscMatrix::intersect_count(&[], &[1]), 0);
        assert_eq!(CscMatrix::intersect_count(&[7], &[7]), 1);
    }
}
