//! Sparse tensor formats and generators for the NVR workloads.
//!
//! The paper's workloads (Table II) are driven by compressed sparse
//! structures: CSR weight matrices for SpMM (§II-A, Fig. 2), bitmap masks
//! (NVDLA-style), top-k index lists (sparse attention / heavy hitters) and
//! voxel hash tables (point-cloud networks). This crate implements those
//! formats from scratch, together with deterministic random generators used
//! to synthesise workloads with controlled sparsity and structure.
//!
//! # Examples
//!
//! ```
//! use nvr_sparse::gen::{random_csr, SparsityPattern};
//! use nvr_common::Pcg32;
//!
//! let mut rng = Pcg32::seed_from_u64(1);
//! let m = random_csr(64, 64, 0.1, SparsityPattern::Uniform, &mut rng);
//! assert!((m.density() - 0.1).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bitmap;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod gen;
pub mod topk;
pub mod voxel_hash;

pub use bitmap::BitmapMatrix;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use topk::top_k_indices;
pub use voxel_hash::{VoxelHashTable, VoxelKey};
