//! Dense row-major matrices (reference numerics for tests and examples).

/// A dense row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use nvr_sparse::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 2);
/// *m.get_mut(0, 1) = 3.0;
/// assert_eq!(m.get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// An all-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    #[must_use]
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let n_cols = rows.first().map_or(0, |r| r.len());
        assert!(
            rows.iter().all(|r| r.len() == n_cols),
            "all rows must have equal length"
        );
        DenseMatrix {
            rows: rows.len(),
            cols: n_cols,
            data: rows.concat(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Mutable value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_layout() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_rejected() {
        let _ = DenseMatrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0]]);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        *b.get_mut(0, 1) = 2.5;
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = DenseMatrix::zeros(1, 1).get(0, 1);
    }
}
