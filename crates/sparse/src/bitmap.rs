//! Bitmap (bitmask) sparse format.
//!
//! The NVDLA-style format cited in the paper's related work ([Farshchi et
//! al.]): a dense bitmask marks non-zero positions and a packed value array
//! stores only the non-zeros. Decoding is a popcount-driven scan — cheap in
//! hardware, and the access pattern the paper's skip strategies (Fig. 2,
//! left) operate on.
//!
//! [Farshchi et al.]: https://arxiv.org/abs/1903.06495

use crate::csr::CsrMatrix;

/// A sparse matrix as a row-major bitmask plus packed non-zero values.
///
/// # Examples
///
/// ```
/// use nvr_sparse::{BitmapMatrix, CsrMatrix};
///
/// let csr = CsrMatrix::from_triplets(2, 8, &[(0, 3, 1.5), (1, 7, 2.5)]);
/// let bm = BitmapMatrix::from_csr(&csr);
/// assert!(bm.is_set(0, 3));
/// assert!(!bm.is_set(0, 4));
/// assert_eq!(bm.to_csr().to_dense(), csr.to_dense());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BitmapMatrix {
    rows: usize,
    cols: usize,
    /// Row-major bitmask, one `u64` word per 64 columns per row.
    words: Vec<u64>,
    words_per_row: usize,
    /// Non-zero values in row-major scan order.
    values: Vec<f32>,
}

impl BitmapMatrix {
    /// Converts a CSR matrix to bitmap form.
    #[must_use]
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let rows = csr.rows();
        let cols = csr.cols();
        let words_per_row = cols.div_ceil(64);
        let mut words = vec![0u64; rows * words_per_row];
        let mut values = Vec::with_capacity(csr.nnz());
        for r in 0..rows {
            // CSR rows are sorted, so the packed value order matches the
            // bit-scan order.
            for (&c, &v) in csr.row(r).iter().zip(csr.row_values(r)) {
                let c = c as usize;
                words[r * words_per_row + c / 64] |= 1u64 << (c % 64);
                values.push(v);
            }
        }
        BitmapMatrix {
            rows,
            cols,
            words,
            words_per_row,
            values,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Whether position `(r, c)` holds a non-zero.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn is_set(&self, r: usize, c: usize) -> bool {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.words[r * self.words_per_row + c / 64] & (1u64 << (c % 64)) != 0
    }

    /// Size of the bitmask in bytes (the format's metadata overhead).
    #[must_use]
    pub fn mask_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Iterates `(row, col, value)` in row-major scan order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        let mut vi = 0;
        (0..self.rows).flat_map(move |r| {
            let mut out = Vec::new();
            for w in 0..self.words_per_row {
                let mut word = self.words[r * self.words_per_row + w];
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    out.push((r, w * 64 + bit, self.values[vi]));
                    vi += 1;
                    word &= word - 1;
                }
            }
            out
        })
    }

    /// Converts back to CSR form.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f32)> = self.iter().collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_csr, SparsityPattern};
    use nvr_common::Pcg32;

    #[test]
    fn roundtrip_random_matrix() {
        let mut rng = Pcg32::seed_from_u64(2);
        let csr = random_csr(16, 100, 0.15, SparsityPattern::Uniform, &mut rng);
        let bm = BitmapMatrix::from_csr(&csr);
        assert_eq!(bm.nnz(), csr.nnz());
        assert_eq!(bm.to_csr().to_dense(), csr.to_dense());
    }

    #[test]
    fn mask_size_is_dense_bits() {
        let csr = CsrMatrix::zeros(4, 130);
        let bm = BitmapMatrix::from_csr(&csr);
        // 130 columns -> 3 words per row.
        assert_eq!(bm.mask_bytes(), 4 * 3 * 8);
    }

    #[test]
    fn is_set_matches_structure() {
        let csr = CsrMatrix::from_triplets(1, 70, &[(0, 0, 1.0), (0, 69, 2.0)]);
        let bm = BitmapMatrix::from_csr(&csr);
        assert!(bm.is_set(0, 0));
        assert!(bm.is_set(0, 69));
        assert!(!bm.is_set(0, 1));
    }

    #[test]
    fn iter_row_major_order() {
        let csr = CsrMatrix::from_triplets(2, 4, &[(1, 0, 3.0), (0, 2, 1.0)]);
        let bm = BitmapMatrix::from_csr(&csr);
        let items: Vec<_> = bm.iter().collect();
        assert_eq!(items, vec![(0, 2, 1.0), (1, 0, 3.0)]);
    }
}
