//! Top-k selection for sparse attention.
//!
//! Sparse attention (Double Sparsity, H2O) keeps only the k highest-scoring
//! key vectors per query (§II-A "Data Shuffle"); the resulting index list is
//! exactly the irregular gather stream NVR prefetches.

/// Returns the indices of the `k` largest values, in **descending value
/// order** (the order an attention kernel consumes them).
///
/// Ties break toward the lower index so the result is deterministic.
///
/// # Examples
///
/// ```
/// use nvr_sparse::top_k_indices;
///
/// let scores = [0.1_f32, 0.9, 0.4, 0.9, 0.2];
/// assert_eq!(top_k_indices(&scores, 3), vec![1, 3, 2]);
/// ```
///
/// # Panics
///
/// Panics if `k > scores.len()`.
#[must_use]
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<u32> {
    assert!(
        k <= scores.len(),
        "k={k} exceeds population {}",
        scores.len()
    );
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    // Partial selection: O(n + k log k) instead of a full sort.
    if k < scores.len() {
        idx.select_nth_unstable_by(k, |&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("scores must not be NaN")
                .then(a.cmp(&b))
        });
        idx.truncate(k);
    }
    idx.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .expect("scores must not be NaN")
            .then(a.cmp(&b))
    });
    idx
}

/// Returns the indices of the `k` largest values, **sorted ascending** —
/// the layout used when the selected set is stored as a CSR-like index list.
///
/// # Examples
///
/// ```
/// use nvr_sparse::topk::top_k_indices_sorted;
///
/// let scores = [0.1_f32, 0.9, 0.4, 0.9, 0.2];
/// assert_eq!(top_k_indices_sorted(&scores, 3), vec![1, 2, 3]);
/// ```
///
/// # Panics
///
/// Panics if `k > scores.len()`.
#[must_use]
pub fn top_k_indices_sorted(scores: &[f32], k: usize) -> Vec<u32> {
    let mut idx = top_k_indices(scores, k);
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::Pcg32;

    #[test]
    fn selects_largest() {
        let scores = [3.0_f32, 1.0, 4.0, 1.5, 9.0, 2.6];
        assert_eq!(top_k_indices(&scores, 2), vec![4, 2]);
        assert_eq!(top_k_indices_sorted(&scores, 2), vec![2, 4]);
    }

    #[test]
    fn k_equals_len_is_full_argsort() {
        let scores = [1.0_f32, 3.0, 2.0];
        assert_eq!(top_k_indices(&scores, 3), vec![1, 2, 0]);
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k_indices(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn ties_break_low_index_first() {
        let scores = [5.0_f32, 5.0, 5.0, 1.0];
        assert_eq!(top_k_indices(&scores, 2), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "exceeds population")]
    fn oversized_k_panics() {
        let _ = top_k_indices(&[1.0], 2);
    }

    #[test]
    fn agrees_with_full_sort_on_random_input() {
        let mut rng = Pcg32::seed_from_u64(21);
        for _ in 0..20 {
            let n = 50 + rng.gen_index(200);
            let k = rng.gen_index(n + 1);
            let scores: Vec<f32> = (0..n).map(|_| rng.gen_f64() as f32).collect();
            let got = top_k_indices(&scores, k);
            let mut want: Vec<u32> = (0..n as u32).collect();
            want.sort_by(|&a, &b| {
                scores[b as usize]
                    .partial_cmp(&scores[a as usize])
                    .expect("no NaN")
                    .then(a.cmp(&b))
            });
            want.truncate(k);
            assert_eq!(got, want);
        }
    }
}
