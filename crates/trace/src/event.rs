//! Demand-access events observed by prefetchers.
//!
//! Conventional prefetchers see only the demand stream (addresses, plus the
//! loaded values for index loads — the signal IMP correlates on). Synthetic
//! PCs distinguish the instruction slots so table-based prefetchers can key
//! their pattern tables the way hardware keys on the program counter.

use nvr_common::{Addr, Cycle};

/// Synthetic PC of index-array loads.
pub const PC_INDEX_LOAD: u64 = 0x8000_1000;
/// Synthetic PC of gather (indirect) loads.
pub const PC_GATHER: u64 = 0x8000_2000;
/// Synthetic PC of table-probe loads (two-level sparse functions).
pub const PC_TABLE_PROBE: u64 = 0x8000_3000;
/// Synthetic PC of output stores.
pub const PC_STORE: u64 = 0x8000_4000;

/// What kind of access an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A sequential index-array load; carries the loaded value, which the
    /// hardware necessarily has on the response bus (IMP snoops it there).
    IndexLoad {
        /// The loaded index value.
        value: u32,
    },
    /// A table-probe read of a two-level sparse function.
    TableProbe {
        /// The loaded slot value.
        value: u32,
    },
    /// An indirect gather of one element row.
    GatherLoad,
    /// An output store.
    Store,
}

/// One demand access, as visible on the memory request bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Issue cycle.
    pub cycle: Cycle,
    /// Tile that issued the access.
    pub tile: usize,
    /// Synthetic program counter of the issuing instruction slot.
    pub pc: u64,
    /// Element byte address.
    pub addr: Addr,
    /// Access classification.
    pub kind: EventKind,
    /// Whether the access missed the (NPU-visible) cache.
    pub missed: bool,
}

impl AccessEvent {
    /// Convenience constructor for an index-load event.
    #[must_use]
    pub fn index_load(cycle: Cycle, tile: usize, addr: Addr, value: u32, missed: bool) -> Self {
        AccessEvent {
            cycle,
            tile,
            pc: PC_INDEX_LOAD,
            addr,
            kind: EventKind::IndexLoad { value },
            missed,
        }
    }

    /// Convenience constructor for a gather event.
    #[must_use]
    pub fn gather(cycle: Cycle, tile: usize, addr: Addr, missed: bool) -> Self {
        AccessEvent {
            cycle,
            tile,
            pc: PC_GATHER,
            addr,
            kind: EventKind::GatherLoad,
            missed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_pcs() {
        let e = AccessEvent::index_load(1, 2, Addr::new(0x10), 42, false);
        assert_eq!(e.pc, PC_INDEX_LOAD);
        assert_eq!(e.kind, EventKind::IndexLoad { value: 42 });
        let g = AccessEvent::gather(3, 4, Addr::new(0x20), true);
        assert_eq!(g.pc, PC_GATHER);
        assert!(g.missed);
    }
}
