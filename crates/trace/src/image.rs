//! The simulated memory image: real index data at real addresses.

use nvr_common::{Addr, Region};

/// A sparse map of 32-bit words over the simulated address space.
///
/// Workload generators lay out their index structures (row pointers, column
/// indices, top-k lists, hash buckets) as `u32` segments. Reads outside any
/// segment return a deterministic pseudo-random "garbage" word derived from
/// the address — which is exactly what a runahead prefetcher that overruns a
/// loop boundary would consume, and what makes overrun prefetches
/// mechanically inaccurate rather than inaccurate-by-fiat.
///
/// # Examples
///
/// ```
/// use nvr_trace::MemoryImage;
/// use nvr_common::Addr;
///
/// let mut img = MemoryImage::new();
/// img.add_u32_segment(Addr::new(0x100), vec![7, 8, 9]);
/// assert_eq!(img.read_u32(Addr::new(0x104)), 8);
/// assert!(img.in_segment(Addr::new(0x108)));
/// assert!(!img.in_segment(Addr::new(0x10c)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryImage {
    /// `(base address, contents)`, sorted by base, non-overlapping.
    /// Installation is rare (workload build time) while `read_u32` sits on
    /// every simulated index access, so the store is a flat sorted vector
    /// a lookup can binary-search without pointer chasing.
    segments: Vec<(u64, Vec<u32>)>,
}

impl MemoryImage {
    /// An empty image.
    #[must_use]
    pub fn new() -> Self {
        MemoryImage::default()
    }

    /// Installs a `u32` array at `base`. Addresses are byte addresses; the
    /// segment occupies `4 * data.len()` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned or the segment would overlap
    /// an existing one.
    pub fn add_u32_segment(&mut self, base: Addr, data: Vec<u32>) {
        assert!(
            base.raw().is_multiple_of(4),
            "segment base must be 4-byte aligned"
        );
        let bytes = data.len() as u64 * 4;
        assert!(
            !self.overlaps(Region::new(base, bytes)),
            "segment at {base} overlaps an existing segment"
        );
        let pos = self.segments.partition_point(|&(b, _)| b < base.raw());
        self.segments.insert(pos, (base.raw(), data));
    }

    /// Whether `region` intersects any existing segment.
    #[must_use]
    pub fn overlaps(&self, region: Region) -> bool {
        if region.is_empty() {
            return false;
        }
        // Candidate: the last segment starting before region end, plus
        // any segment starting inside the region.
        let end = region.end().raw();
        let idx = self.segments.partition_point(|&(b, _)| b < end);
        idx > 0 && {
            let (base, data) = &self.segments[idx - 1];
            base + data.len() as u64 * 4 > region.start().raw()
        }
    }

    /// Reads the `u32` at `addr`.
    ///
    /// In-segment reads return the stored word (unaligned reads snap down to
    /// the containing word, as a hardware load of the enclosing word would).
    /// Out-of-segment reads return a deterministic address-hash word.
    #[must_use]
    pub fn read_u32(&self, addr: Addr) -> u32 {
        match self.lookup(addr) {
            Some(word) => word,
            None => Self::background(addr),
        }
    }

    /// Reads the `u32` at `addr`, or `None` if no segment covers it.
    #[must_use]
    pub fn try_read_u32(&self, addr: Addr) -> Option<u32> {
        self.lookup(addr)
    }

    /// Whether `addr` falls inside an installed segment.
    #[must_use]
    pub fn in_segment(&self, addr: Addr) -> bool {
        self.lookup(addr).is_some()
    }

    /// Reads `n` consecutive `u32` values starting at `addr`.
    #[must_use]
    pub fn read_u32_slice(&self, addr: Addr, n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| self.read_u32(addr.offset(i as u64 * 4)))
            .collect()
    }

    /// Total bytes covered by installed segments.
    #[must_use]
    pub fn segment_bytes(&self) -> u64 {
        self.segments.iter().map(|(_, d)| d.len() as u64 * 4).sum()
    }

    fn lookup(&self, addr: Addr) -> Option<u32> {
        let idx = self.segments.partition_point(|&(b, _)| b <= addr.raw());
        let (base, data) = self.segments.get(idx.wrapping_sub(1))?;
        let off = addr.raw() - base;
        data.get((off / 4) as usize).copied()
    }

    /// Deterministic pseudo-random word for out-of-segment reads
    /// (splitmix64 finaliser over the word-aligned address).
    #[must_use]
    pub fn background(addr: Addr) -> u32 {
        let mut h = addr.raw() >> 2;
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        (h ^ (h >> 31)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_read_exact() {
        let mut img = MemoryImage::new();
        img.add_u32_segment(Addr::new(0x1000), vec![10, 20, 30]);
        assert_eq!(img.read_u32(Addr::new(0x1000)), 10);
        assert_eq!(img.read_u32(Addr::new(0x1008)), 30);
        assert_eq!(img.try_read_u32(Addr::new(0x100c)), None);
    }

    #[test]
    fn unaligned_read_snaps_to_word() {
        let mut img = MemoryImage::new();
        img.add_u32_segment(Addr::new(0x1000), vec![10, 20]);
        assert_eq!(img.read_u32(Addr::new(0x1001)), 10);
        assert_eq!(img.read_u32(Addr::new(0x1007)), 20);
    }

    #[test]
    fn background_is_deterministic() {
        let a = MemoryImage::background(Addr::new(0x5000));
        let b = MemoryImage::background(Addr::new(0x5000));
        assert_eq!(a, b);
        assert_ne!(a, MemoryImage::background(Addr::new(0x5004)));
    }

    #[test]
    fn out_of_segment_reads_background() {
        let img = MemoryImage::new();
        assert_eq!(
            img.read_u32(Addr::new(0x42)),
            MemoryImage::background(Addr::new(0x42))
        );
    }

    #[test]
    fn multiple_segments_route_correctly() {
        let mut img = MemoryImage::new();
        img.add_u32_segment(Addr::new(0x1000), vec![1, 2]);
        img.add_u32_segment(Addr::new(0x2000), vec![3]);
        assert_eq!(img.read_u32(Addr::new(0x1004)), 2);
        assert_eq!(img.read_u32(Addr::new(0x2000)), 3);
        assert!(!img.in_segment(Addr::new(0x1800)));
        assert_eq!(img.segment_bytes(), 12);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_segments_rejected() {
        let mut img = MemoryImage::new();
        img.add_u32_segment(Addr::new(0x1000), vec![1, 2, 3]);
        img.add_u32_segment(Addr::new(0x1008), vec![9]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_base_rejected() {
        let mut img = MemoryImage::new();
        img.add_u32_segment(Addr::new(0x1002), vec![1]);
    }

    #[test]
    fn read_slice_spans_boundary() {
        let mut img = MemoryImage::new();
        img.add_u32_segment(Addr::new(0x1000), vec![1, 2]);
        let v = img.read_u32_slice(Addr::new(0x1000), 3);
        assert_eq!(v[0], 1);
        assert_eq!(v[1], 2);
        assert_eq!(v[2], MemoryImage::background(Addr::new(0x1008)));
    }

    #[test]
    fn adjacent_segments_do_not_overlap() {
        let mut img = MemoryImage::new();
        img.add_u32_segment(Addr::new(0x1000), vec![1, 2]);
        img.add_u32_segment(Addr::new(0x1008), vec![3]); // exactly adjacent
        assert_eq!(img.read_u32(Addr::new(0x1008)), 3);
    }
}
