//! Trace and instruction substrate for the NVR simulator.
//!
//! A workload is compiled into an [`NpuProgram`]: a sequence of tile-level
//! coarse instructions ([`TileOp`]) over a [`MemoryImage`] holding the real
//! index data (row pointers, column indices, hash buckets). The NPU engine
//! *executes* the program — computing gather addresses from actual index
//! values — while prefetchers *predict* it, observing only [`AccessEvent`]s
//! and the snoopable architectural state ([`SnoopState`]). Runahead
//! prefetchers may additionally read index values back out of the image,
//! but only for lines whose (speculative) fill has completed — the honest
//! runahead semantics of §III.
//!
//! # Examples
//!
//! ```
//! use nvr_trace::{MemoryImage, SparseFunc};
//! use nvr_common::Addr;
//!
//! let mut image = MemoryImage::new();
//! image.add_u32_segment(Addr::new(0x1000), vec![3, 1, 4]);
//! let func = SparseFunc::Affine { ia_base: Addr::new(0x10_0000), row_bytes: 64 };
//! let resolved = func.element_region(4, &image);
//! assert_eq!(resolved.target.start().raw(), 0x10_0000 + 4 * 64);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod event;
pub mod image;
pub mod program;
pub mod snoop;

pub use event::{AccessEvent, EventKind};
pub use image::MemoryImage;
pub use program::{GatherDesc, NpuProgram, ProgramStats, ResolvedGather, SparseFunc, TileOp};
pub use snoop::SnoopState;
