//! Tile-level NPU programs: the coarse instructions the engine executes.

use nvr_common::{Addr, DataWidth, Region};

use crate::image::MemoryImage;

/// How a gather target address derives from an index value — the
/// `sparse_func` of the paper's SpMM listing (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseFunc {
    /// One-level indirection: `target = ia_base + idx * row_bytes`.
    ///
    /// This is the CSR gather `IA[col_indices[j]]`; affine in the index
    /// value, so affine-pattern prefetchers (IMP) can learn it.
    Affine {
        /// Base address of the gathered table (IA / KV cache / features).
        ia_base: Addr,
        /// Bytes per gathered row.
        row_bytes: u64,
    },
    /// Two-level indirection through a lookup table:
    /// `slot = mem[table_base + idx * 4]; target = ia_base + slot * row_bytes`.
    ///
    /// Models the voxel-hash kernel maps of point-cloud networks (§II-A,
    /// §II-C): the final address depends on a memory read, so it is *not*
    /// affine in the observed index value — only runahead-style execution
    /// can predict it.
    TableLookup {
        /// Base address of the bucket/slot table.
        table_base: Addr,
        /// Base address of the gathered feature table.
        ia_base: Addr,
        /// Bytes per gathered row.
        row_bytes: u64,
    },
}

/// A gather target resolved from one index value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedGather {
    /// The gathered row's byte region.
    pub target: Region,
    /// For two-level functions, the intermediate table word that had to be
    /// read to resolve the target.
    pub probe: Option<Addr>,
}

impl SparseFunc {
    /// Resolves the gather region for index value `idx`, reading the image
    /// for table-lookup functions.
    #[must_use]
    pub fn element_region(&self, idx: u32, image: &MemoryImage) -> ResolvedGather {
        match *self {
            SparseFunc::Affine { ia_base, row_bytes } => ResolvedGather {
                target: Region::new(ia_base.offset(u64::from(idx) * row_bytes), row_bytes),
                probe: None,
            },
            SparseFunc::TableLookup {
                table_base,
                ia_base,
                row_bytes,
            } => {
                let probe = table_base.offset(u64::from(idx) * 4);
                let slot = image.read_u32(probe);
                ResolvedGather {
                    target: Region::new(ia_base.offset(u64::from(slot) * row_bytes), row_bytes),
                    probe: Some(probe),
                }
            }
        }
    }

    /// Bytes per gathered row.
    #[must_use]
    pub fn row_bytes(&self) -> u64 {
        match *self {
            SparseFunc::Affine { row_bytes, .. } | SparseFunc::TableLookup { row_bytes, .. } => {
                row_bytes
            }
        }
    }

    /// Whether resolving a target requires an extra memory read.
    #[must_use]
    pub fn is_two_level(&self) -> bool {
        matches!(self, SparseFunc::TableLookup { .. })
    }
}

/// The gather phase of a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherDesc {
    /// Address computation from index values.
    pub func: SparseFunc,
    /// Vector width: elements gathered per vector load batch. A batch
    /// completes only when all its elements arrive (§II-B).
    pub batch: usize,
}

/// One tile-level coarse instruction: load indices, gather rows, compute,
/// store.
///
/// # Examples
///
/// ```
/// use nvr_trace::{MemoryImage, TileOp};
/// use nvr_common::{Addr, Region};
///
/// let mut image = MemoryImage::new();
/// image.add_u32_segment(Addr::new(0x1000), vec![5, 2, 8, 1]);
/// let tile = TileOp {
///     id: 0,
///     index_region: Region::new(Addr::new(0x1004), 8), // elements [2, 8]
///     gather: None,
///     dma_bytes: 0,
///     compute_cycles: 10,
///     store_bytes: 0,
/// };
/// assert_eq!(tile.index_values(&image), vec![2, 8]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileOp {
    /// Position in the program.
    pub id: usize,
    /// Slice of the index array (u32 entries) consumed by this tile; loaded
    /// through the cache hierarchy before gathering.
    pub index_region: Region,
    /// Gather specification; `None` for dense tiles.
    pub gather: Option<GatherDesc>,
    /// Dense operand bytes DMA'd into the scratchpad (W values etc.).
    pub dma_bytes: u64,
    /// Systolic-array busy cycles once operands are ready.
    pub compute_cycles: u64,
    /// Output bytes streamed off-chip.
    pub store_bytes: u64,
}

impl TileOp {
    /// Number of index elements this tile consumes.
    #[must_use]
    pub fn index_count(&self) -> usize {
        (self.index_region.bytes() / 4) as usize
    }

    /// The actual index values, read from the image.
    #[must_use]
    pub fn index_values(&self, image: &MemoryImage) -> Vec<u32> {
        image.read_u32_slice(self.index_region.start(), self.index_count())
    }

    /// Resolves every gather target of this tile, in order.
    /// Empty if the tile has no gather phase.
    #[must_use]
    pub fn resolved_gathers(&self, image: &MemoryImage) -> Vec<ResolvedGather> {
        match &self.gather {
            None => Vec::new(),
            Some(g) => self
                .index_values(image)
                .into_iter()
                .map(|idx| g.func.element_region(idx, image))
                .collect(),
        }
    }
}

/// Aggregate size statistics of a program, used for reporting and for
/// calibrating compute-to-memory ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Total tiles.
    pub tiles: usize,
    /// Total index elements.
    pub index_elems: u64,
    /// Total gather elements.
    pub gather_elems: u64,
    /// Total compute cycles (data-ready lower bound).
    pub compute_cycles: u64,
    /// Total DMA bytes.
    pub dma_bytes: u64,
    /// Total store bytes.
    pub store_bytes: u64,
}

/// A complete NPU program: tiles plus the memory image they index.
#[derive(Debug, Clone)]
pub struct NpuProgram {
    /// Workload name (for reports).
    pub name: String,
    /// Operand width.
    pub width: DataWidth,
    /// The tile sequence.
    pub tiles: Vec<TileOp>,
    /// Real index data.
    pub image: MemoryImage,
}

impl NpuProgram {
    /// Computes aggregate statistics over all tiles.
    #[must_use]
    pub fn stats(&self) -> ProgramStats {
        let mut s = ProgramStats {
            tiles: self.tiles.len(),
            ..ProgramStats::default()
        };
        for t in &self.tiles {
            s.index_elems += t.index_count() as u64;
            if t.gather.is_some() {
                s.gather_elems += t.index_count() as u64;
            }
            s.compute_cycles += t.compute_cycles;
            s.dma_bytes += t.dma_bytes;
            s.store_bytes += t.store_bytes;
        }
        s
    }

    /// Checks structural invariants: tile ids are sequential and index
    /// regions are 4-byte aligned.
    ///
    /// # Panics
    ///
    /// Panics (with a descriptive message) on violation; generators call
    /// this in debug builds and tests.
    pub fn assert_valid(&self) {
        for (i, t) in self.tiles.iter().enumerate() {
            assert_eq!(t.id, i, "tile ids must be sequential");
            assert!(
                t.index_region.start().raw() % 4 == 0 && t.index_region.bytes() % 4 == 0,
                "tile {i} index region must be u32-aligned"
            );
            if let Some(g) = &t.gather {
                assert!(g.batch > 0, "tile {i} gather batch must be non-zero");
                assert!(
                    g.func.row_bytes() > 0,
                    "tile {i} row_bytes must be non-zero"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_with_indices() -> MemoryImage {
        let mut img = MemoryImage::new();
        img.add_u32_segment(Addr::new(0x1000), vec![5, 2, 8, 1, 9, 0]);
        img
    }

    #[test]
    fn affine_resolution() {
        let img = image_with_indices();
        let f = SparseFunc::Affine {
            ia_base: Addr::new(0x10_0000),
            row_bytes: 128,
        };
        let r = f.element_region(3, &img);
        assert_eq!(r.target, Region::new(Addr::new(0x10_0000 + 384), 128));
        assert_eq!(r.probe, None);
        assert!(!f.is_two_level());
    }

    #[test]
    fn table_lookup_resolution_reads_table() {
        let mut img = MemoryImage::new();
        // table[4] = 7
        img.add_u32_segment(Addr::new(0x2000), vec![0, 0, 0, 0, 7]);
        let f = SparseFunc::TableLookup {
            table_base: Addr::new(0x2000),
            ia_base: Addr::new(0x30_0000),
            row_bytes: 64,
        };
        let r = f.element_region(4, &img);
        assert_eq!(r.probe, Some(Addr::new(0x2010)));
        assert_eq!(r.target.start(), Addr::new(0x30_0000 + 7 * 64));
        assert!(f.is_two_level());
    }

    #[test]
    fn tile_index_values_window() {
        let img = image_with_indices();
        let tile = TileOp {
            id: 0,
            index_region: Region::new(Addr::new(0x1008), 12),
            gather: None,
            dma_bytes: 0,
            compute_cycles: 0,
            store_bytes: 0,
        };
        assert_eq!(tile.index_values(&img), vec![8, 1, 9]);
        assert_eq!(tile.index_count(), 3);
    }

    #[test]
    fn resolved_gathers_map_indices() {
        let img = image_with_indices();
        let tile = TileOp {
            id: 0,
            index_region: Region::new(Addr::new(0x1000), 8),
            gather: Some(GatherDesc {
                func: SparseFunc::Affine {
                    ia_base: Addr::new(0x10_0000),
                    row_bytes: 64,
                },
                batch: 16,
            }),
            dma_bytes: 0,
            compute_cycles: 0,
            store_bytes: 0,
        };
        let g = tile.resolved_gathers(&img);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].target.start(), Addr::new(0x10_0000 + 5 * 64));
        assert_eq!(g[1].target.start(), Addr::new(0x10_0000 + 2 * 64));
    }

    #[test]
    fn program_stats_aggregate() {
        let img = image_with_indices();
        let mk_tile = |id: usize| TileOp {
            id,
            index_region: Region::new(Addr::new(0x1000), 8),
            gather: Some(GatherDesc {
                func: SparseFunc::Affine {
                    ia_base: Addr::new(0x10_0000),
                    row_bytes: 64,
                },
                batch: 16,
            }),
            dma_bytes: 100,
            compute_cycles: 50,
            store_bytes: 30,
        };
        let prog = NpuProgram {
            name: "t".into(),
            width: DataWidth::Int8,
            tiles: vec![mk_tile(0), mk_tile(1)],
            image: img,
        };
        prog.assert_valid();
        let s = prog.stats();
        assert_eq!(s.tiles, 2);
        assert_eq!(s.index_elems, 4);
        assert_eq!(s.gather_elems, 4);
        assert_eq!(s.compute_cycles, 100);
        assert_eq!(s.dma_bytes, 200);
        assert_eq!(s.store_bytes, 60);
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn non_sequential_ids_rejected() {
        let prog = NpuProgram {
            name: "t".into(),
            width: DataWidth::Int8,
            tiles: vec![TileOp {
                id: 5,
                index_region: Region::empty(),
                gather: None,
                dma_bytes: 0,
                compute_cycles: 0,
                store_bytes: 0,
            }],
            image: MemoryImage::new(),
        };
        prog.assert_valid();
    }
}
