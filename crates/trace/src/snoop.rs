//! The architectural state visible to NVR's snoopers (§IV-C).
//!
//! The snoopers are read-only probes over three signal groups: CPU branch
//! instructions (loop context), NPU load-instruction occupancy (runahead
//! trigger timing), and the NPU sparse-unit registers (index window bounds,
//! base addresses, the active `sparse_func`). This struct is the honest
//! boundary between the NVR prefetcher and the machine: NVR sees exactly
//! these fields — never the program's future tiles.

use nvr_common::Addr;

use crate::program::GatherDesc;

/// Snapshot of snoopable CPU/NPU state while a tile executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnoopState {
    /// Currently executing tile index (ROB head).
    pub tile: usize,
    /// Total tiles in the kernel's outer loop — snooped from the CPU's
    /// loop-bound branch registers (a B-type compare against the trip
    /// count; Fig. 3c). Available to LBD-equipped prefetchers only.
    pub total_tiles: usize,
    /// Base address of the index array being walked.
    pub index_base: Addr,
    /// Current tile's index window start, in elements
    /// (the sparse unit's `IdxPtr Start` register).
    pub elem_start: u64,
    /// Current tile's index window end, in elements
    /// (the sparse unit's `IdxPtr End` register).
    pub elem_end: u64,
    /// Elements the NPU has already issued demand loads for (the sparse
    /// unit's progress pointer): `elem_start <= elem_consumed <= elem_end`.
    /// Runahead covers everything past this point — including the current
    /// tile's not-yet-issued batches (§III Q&A1: prefetch for the *next*
    /// load instruction in the reservation station).
    pub elem_consumed: u64,
    /// The active gather descriptor registers, if the tile gathers.
    pub gather: Option<GatherDesc>,
    /// Whether an NPU load instruction is currently in execution in the ROB
    /// (the runahead entry condition of §III Q&A1).
    pub npu_load_in_flight: bool,
    /// Whether the sparse-operators unit is idle (speculative work may
    /// borrow it; §III Q&A3).
    pub sparse_unit_idle: bool,
}

impl SnoopState {
    /// Number of index elements in the current window.
    #[must_use]
    pub fn window_len(&self) -> u64 {
        self.elem_end.saturating_sub(self.elem_start)
    }

    /// Byte address of index element `elem` in the snooped index array.
    #[must_use]
    pub fn index_elem_addr(&self, elem: u64) -> Addr {
        self.index_base.offset(elem * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> SnoopState {
        SnoopState {
            tile: 3,
            total_tiles: 10,
            index_base: Addr::new(0x1000),
            elem_start: 100,
            elem_end: 130,
            elem_consumed: 100,
            gather: None,
            npu_load_in_flight: true,
            sparse_unit_idle: true,
        }
    }

    #[test]
    fn window_len_and_addressing() {
        let s = state();
        assert_eq!(s.window_len(), 30);
        assert_eq!(s.index_elem_addr(100), Addr::new(0x1000 + 400));
    }

    #[test]
    fn inverted_window_is_empty() {
        let mut s = state();
        s.elem_end = 50;
        assert_eq!(s.window_len(), 0);
    }
}
