//! End-to-end tests of the workspace semantic pass: the `nvr-lint`
//! binary is pointed at the multi-file fixture trees under
//! `tests/fixtures/semantic/` and must report each cross-file rule at
//! the exact file:line, with exit code 1 — and stay silent (exit 0) on
//! the clean tree and the suppressed one.

use std::path::{Path, PathBuf};
use std::process::Command;

use nvr_lint::{lint_workspace_with, LintOptions};

fn fixture(tree: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/semantic")
        .join(tree)
}

/// Runs the binary on a fixture tree with the cache disabled (fixture
/// trees are checked in; nothing may be written into them).
fn run(tree: &str, extra: &[&str]) -> (i32, String) {
    let root = fixture(tree);
    let out = Command::new(env!("CARGO_BIN_EXE_nvr-lint"))
        .arg("--root")
        .arg(&root)
        .arg("--no-cache")
        .args(extra)
        .output()
        .expect("nvr-lint runs");
    let code = out.status.code().expect("exit code");
    (code, String::from_utf8(out.stdout).expect("utf-8 stdout"))
}

#[test]
fn variant_drift_fires_at_the_variant_line() {
    let (code, stdout) = run("variant_drift_bad", &[]);
    assert_eq!(code, 1, "{stdout}");
    // `Ghost` (line 4) is both missing from ALL and never referenced
    // outside runner.rs; the in-table, externally-referenced variants
    // are not flagged.
    assert!(
        stdout.contains("crates/sim/src/runner.rs:4: [registry/variant-drift]"),
        "{stdout}"
    );
    assert!(stdout.contains("missing from the `ALL` table"), "{stdout}");
    assert!(stdout.contains("never referenced outside"), "{stdout}");
    assert_eq!(
        stdout.matches("[registry/variant-drift]").count(),
        2,
        "{stdout}"
    );
    assert!(!stdout.contains("InOrder"), "{stdout}");
}

#[test]
fn wildcard_arm_fires_at_the_underscore_line() {
    let (code, stdout) = run("wildcard_arm_bad", &[]);
    assert_eq!(code, 1, "{stdout}");
    assert!(
        stdout.contains("crates/sim/src/dispatch.rs:4: [registry/wildcard-arm]"),
        "{stdout}"
    );
    assert!(stdout.contains("match on line 2"), "{stdout}");
}

#[test]
fn wildcard_arm_allow_comment_suppresses_the_finding() {
    let (code, stdout) = run("wildcard_arm_allowed", &[]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn dead_knob_fires_at_the_field_line() {
    let (code, stdout) = run("dead_knob_bad", &[]);
    assert_eq!(code, 1, "{stdout}");
    assert!(
        stdout.contains("crates/npu/src/config.rs:3: [config/dead-knob]"),
        "{stdout}"
    );
    assert!(stdout.contains("NpuConfig::phantom_knob"), "{stdout}");
    // `vector_width` is read by engine.rs and stays clean.
    assert_eq!(stdout.matches("[config/dead-knob]").count(), 1, "{stdout}");
}

#[test]
fn csv_doc_drift_fires_at_the_readme_line() {
    let (code, stdout) = run("csv_doc_bad", &[]);
    assert_eq!(code, 1, "{stdout}");
    assert!(
        stdout.contains("README.md:4: [csv/cross-file-schema]"),
        "{stdout}"
    );
    assert!(stdout.contains("ghost_column"), "{stdout}");
    // The documented real columns on line 3 match the writer header.
    assert!(!stdout.contains("README.md:3"), "{stdout}");
}

#[test]
fn suffix_mix_fires_at_the_operator_line() {
    let (code, stdout) = run("suffix_mix_bad", &[]);
    assert_eq!(code, 1, "{stdout}");
    assert!(
        stdout.contains("crates/core/src/timing.rs:2: [units/suffix-mix]"),
        "{stdout}"
    );
    assert!(stdout.contains("total_cycles"), "{stdout}");
    assert!(stdout.contains("row_bytes"), "{stdout}");
}

#[test]
fn clean_tree_lints_clean() {
    let (code, stdout) = run("clean", &[]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn rule_filter_restricts_the_report() {
    // variant_drift_bad has only drift findings; filtering on another
    // rule must produce a clean (exit 0) report.
    let (code, stdout) = run("variant_drift_bad", &["--rule", "registry/wildcard-arm"]);
    assert_eq!(code, 0, "{stdout}");
    let (code, stdout) = run("variant_drift_bad", &["--rule", "registry/variant-drift"]);
    assert_eq!(code, 1, "{stdout}");
    assert_eq!(
        stdout.matches("[registry/variant-drift]").count(),
        2,
        "{stdout}"
    );
}

#[test]
fn warm_cache_reproduces_the_cold_report() {
    // Library-level: same tree, cold run vs fully-cached run, with the
    // cache in the test's scratch dir (never inside the fixture tree).
    let cache = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("nvr-lint-semantic-cache.json");
    let _ = std::fs::remove_file(&cache);
    let opts = LintOptions {
        cache_path: Some(cache.clone()),
        rule: None,
    };
    let root = fixture("variant_drift_bad");
    let cold = lint_workspace_with(&root, &opts).expect("cold run");
    assert_eq!(cold.files_cached, 0);
    let warm = lint_workspace_with(&root, &opts).expect("warm run");
    assert_eq!(warm.files_cached, warm.files_checked, "all files cached");
    let render = |r: &nvr_lint::Report| {
        r.diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(
        render(&cold),
        render(&warm),
        "cached pass 1 must not change findings"
    );
    assert!(!cold.diagnostics.is_empty(), "fixture tree has findings");
    let _ = std::fs::remove_file(&cache);
}
