//! The self-test: the real workspace must lint clean, with every
//! suppression used and justified. This is the same invariant the CI
//! `nvr-lint` job gates on — failing here means a determinism or
//! invariant hazard landed in the tree.

use std::path::Path;

use nvr_lint::{find_workspace_root, lint_workspace};

#[test]
fn real_workspace_lints_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");
    let report = lint_workspace(&root).expect("workspace readable");
    assert!(
        report.is_clean(),
        "workspace has unsuppressed lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk actually visited the tree (12 crates + root tests
    // and examples), not an empty directory.
    assert!(
        report.files_checked > 100,
        "only {} files checked — walker lost the tree?",
        report.files_checked
    );
    // The semantic pass ran over a populated model: the real tree defines
    // the three registry enums (SystemKind, WorkloadId, FigureId), the
    // config structs, dispatch matches and the sweep CSV writers. All
    // zeros would mean pass 2 silently saw an empty workspace.
    let s = report.model_stats;
    assert_eq!(s.files, report.files_checked, "every file is modelled");
    assert!(s.enums >= 3, "registry enums missing from the model: {s:?}");
    assert!(
        s.variants >= 15,
        "enum variants missing from the model: {s:?}"
    );
    assert!(
        s.structs >= 5,
        "config structs missing from the model: {s:?}"
    );
    assert!(s.fields >= 10, "pub fields missing from the model: {s:?}");
    assert!(
        s.matches >= 10,
        "match expressions missing from the model: {s:?}"
    );
    assert!(
        s.csv_headers >= 1,
        "sweep CSV writers missing from the model: {s:?}"
    );
}
