pub struct NpuConfig {
    pub vector_width: u32,
}
