pub enum SystemKind {
    InOrder,
    Nvr,
}

impl SystemKind {
    pub const ALL: [SystemKind; 2] = [SystemKind::InOrder, SystemKind::Nvr];

    pub fn label(self) -> u32 {
        match self {
            SystemKind::InOrder => 0,
            SystemKind::Nvr => 1,
        }
    }
}
