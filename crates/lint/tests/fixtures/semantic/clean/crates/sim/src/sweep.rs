pub fn header() -> &'static str {
    "system_id,total_cycles\n"
}

pub fn smoke() {
    let _ = (SystemKind::InOrder, SystemKind::Nvr);
}

pub fn total(run_cycles: u64, stall_cycles: u64) -> u64 {
    run_cycles + stall_cycles
}
