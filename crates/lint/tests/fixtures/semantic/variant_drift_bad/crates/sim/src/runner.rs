pub enum SystemKind {
    InOrder,
    Nvr,
    Ghost,
}

impl SystemKind {
    pub const ALL: [SystemKind; 2] = [SystemKind::InOrder, SystemKind::Nvr];
}
