pub fn smoke() {
    let _ = (SystemKind::InOrder, SystemKind::Nvr);
}
