pub struct NpuConfig {
    pub vector_width: u32,
    pub phantom_knob: u32,
}
