pub fn lanes(c: &NpuConfig) -> u32 {
    c.vector_width
}
