pub fn header() -> &'static str {
    "tile_id,total_cycles\n"
}
