pub fn weight(k: SystemKind) -> u32 {
    match k {
        SystemKind::InOrder => 1,
        // nvr-lint: allow(registry/wildcard-arm) reason="fixture: deliberate catch-all"
        _ => 0,
    }
}
