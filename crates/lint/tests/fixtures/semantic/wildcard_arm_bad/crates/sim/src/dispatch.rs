pub fn weight(k: SystemKind) -> u32 {
    match k {
        SystemKind::InOrder => 1,
        _ => 0,
    }
}
