pub fn stall(total_cycles: u64, row_bytes: u64) -> u64 {
    let mixed = total_cycles + row_bytes;
    mixed
}
