//! Bad: a crate root with neither required attribute.

pub fn noop() {}
