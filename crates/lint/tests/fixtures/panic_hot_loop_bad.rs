//! Bad: unjustified panics in tick code.
pub fn tick(slot: Option<u64>) -> u64 {
    slot.unwrap() + slot.expect("slot")
}
