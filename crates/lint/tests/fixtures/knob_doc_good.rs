//! Good: every knob documents its unit.

/// Tuning knobs.
pub struct NvrConfig {
    /// Window depth, in tiles.
    pub depth: usize,
    /// Budget, in cache lines.
    #[allow(dead_code)]
    pub budget: usize,
}
