//! Good: header and row agree, format specs don't confuse the count.
pub fn csv() -> String {
    let mut out = String::from("workload,system,cycles,speedup\n");
    out.push_str(&format!("{},{},{},{:.3}\n", "DS", "NVR", 123, 2.41));
    out
}
