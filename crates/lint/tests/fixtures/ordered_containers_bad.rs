//! Bad: unordered containers in a result-producing crate.
use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u64]) -> usize {
    let set: HashSet<u64> = xs.iter().copied().collect();
    let map: HashMap<u64, u64> = HashMap::new();
    set.len() + map.len()
}
