//! Good: the timing site carries an audited allow.
use std::time::Instant;

pub fn timed<T>(f: impl FnOnce() -> T) -> T {
    // nvr-lint: allow(determinism/wall-clock) reason="timing CSV only, never a result"
    let _t0 = Instant::now();
    f()
}
