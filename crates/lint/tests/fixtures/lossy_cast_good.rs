//! Good: widening casts and checked conversions only.
pub fn widen(cycle: u32, count: usize) -> u64 {
    u64::from(cycle) + count as u64
}
