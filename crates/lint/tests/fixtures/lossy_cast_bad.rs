//! Bad: narrowing casts on cycle-typed u64 values.
pub fn compress(cycle: u64, addr: u64) -> (u32, u16) {
    (cycle as u32, addr as u16)
}
