//! Good: unwraps confined to the test module are exempt.
pub fn tick(slot: Option<u64>) -> u64 {
    slot.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_freely() {
        assert_eq!(Some(1u64).unwrap(), 1);
        assert_eq!(Some(2u64).expect("set"), 2);
    }
}
