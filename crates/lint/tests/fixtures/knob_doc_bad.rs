//! Bad: config knobs without doc comments.

/// Tuning knobs.
pub struct NvrConfig {
    /// Documented knob (cycles).
    pub documented: u64,
    pub undocumented: u64,
}
