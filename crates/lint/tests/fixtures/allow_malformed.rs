//! Bad: allows without reasons or with unknown rules.
pub fn f() -> u64 {
    // nvr-lint: allow(determinism/wall-clock)
    // nvr-lint: allow(no/such-rule) reason="nope"
    // nvr-lint: allow(panic/hot-loop) reason=""
    0
}
