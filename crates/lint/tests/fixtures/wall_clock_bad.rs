//! Bad: wall-clock reads feeding simulation state.
use std::time::{Instant, SystemTime};

pub fn seed_from_clock() -> u64 {
    let _t = Instant::now();
    let _s = SystemTime::now();
    0
}
