//! Good: both crate-root attributes present.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Documented.
pub fn noop() {}
