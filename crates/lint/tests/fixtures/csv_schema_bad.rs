//! Bad: header declares 4 columns, the row emits 3.
pub fn csv() -> String {
    let mut out = String::from("workload,system,cycles,speedup\n");
    out.push_str(&format!("{},{},{}\n", "DS", "NVR", 123));
    out
}
