// Fixture: per-iteration allocation inside the named hot loops of
// core/mem — every site below must fire `perf/hot-loop-alloc`.

pub fn advance(&mut self, now: u64) {
    for lane in 0..self.lanes {
        let scratch: Vec<u64> = Vec::new(); // fires: constructor per iteration
        let label = format!("lane-{lane}"); // fires: format! per iteration
        self.observe(scratch, label);
    }
    let mut i = 0;
    while i < now {
        let copy = self.pending.to_vec(); // fires: .to_vec() per iteration
        self.consume(copy);
        i += 1;
    }
}

pub fn issue_window(&mut self) {
    loop {
        let boxed = Box::new(self.head); // fires: Box::new per iteration
        if self.push(boxed) {
            break;
        }
    }
}
