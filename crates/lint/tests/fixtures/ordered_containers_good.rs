//! Good: ordered containers keep --jobs bit-equality.
use std::collections::{BTreeMap, BTreeSet};

pub fn tally(xs: &[u64]) -> usize {
    let set: BTreeSet<u64> = xs.iter().copied().collect();
    let map: BTreeMap<u64, u64> = BTreeMap::new();
    set.len() + map.len()
}
