// Fixture: the allocation patterns the hot-loop rule must NOT flag —
// hoisted buffers, allocation outside loops, loops outside hot
// functions, audited allows, and test code.

pub fn advance(&mut self, now: u64) {
    // Hoisted before the loop: allocate once, reuse per iteration.
    let mut scratch: Vec<u64> = Vec::with_capacity(self.lanes);
    for lane in 0..self.lanes {
        scratch.clear();
        scratch.push(lane);
        self.observe(&scratch);
    }
    while self.clock < now {
        // nvr-lint: allow(perf/hot-loop-alloc) reason="cold error path, never taken in steady state"
        let report = format!("stall at {}", self.clock);
        self.maybe_log(report);
        self.clock += 1;
    }
}

pub fn summarise(&self) -> Vec<String> {
    // Not a hot function: allocation in this loop is fine.
    let mut rows = Vec::new();
    for lane in 0..self.lanes {
        rows.push(format!("lane {lane}"));
    }
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn probe_helper_may_allocate() {
        for i in 0..4 {
            let v = vec![i];
            assert_eq!(v.len(), 1);
        }
    }
}
