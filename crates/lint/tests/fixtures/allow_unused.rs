//! Bad: a well-formed allow that suppresses nothing.
pub fn f() -> u64 {
    // nvr-lint: allow(determinism/ordered-containers) reason="left over after a refactor"
    0
}
