//! End-to-end tests of the `nvr-lint` binary: exit codes, JSON output,
//! and the CI failure mode (a `HashMap` deliberately seeded into a fake
//! `crates/core` must fail the run) — the contract the CI job relies on.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nvr-lint"))
}

/// Builds a throwaway fake workspace under the target tmpdir and returns
/// its root. `core_lib` becomes `crates/core/src/lib.rs`.
fn fake_workspace(tag: &str, core_lib: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("nvr-lint-{tag}"));
    let src = root.join("crates/core/src");
    fs::create_dir_all(&src).expect("mkdir");
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    fs::write(src.join("lib.rs"), core_lib).expect("lib.rs");
    root
}

fn run(root: &PathBuf, extra: &[&str]) -> Output {
    bin()
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn nvr-lint")
}

const CLEAN_LIB: &str = "//! A clean crate root.\n\n\
    #![forbid(unsafe_code)]\n#![deny(missing_docs)]\n\n\
    /// Documented.\npub fn ok() {}\n";

const SEEDED_LIB: &str = "//! A crate root seeded with a determinism hazard.\n\n\
    #![forbid(unsafe_code)]\n#![deny(missing_docs)]\n\n\
    use std::collections::HashMap;\n\n\
    /// Documented, but unordered.\npub fn bad() -> HashMap<u64, u64> {\n    \
    HashMap::new()\n}\n";

#[test]
fn clean_workspace_exits_zero() {
    let root = fake_workspace("clean", CLEAN_LIB);
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn seeded_hashmap_in_core_fails_with_exit_one() {
    let root = fake_workspace("seeded", SEEDED_LIB);
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("determinism/ordered-containers"),
        "{stdout}"
    );
    assert!(stdout.contains("crates/core/src/lib.rs"), "{stdout}");
}

#[test]
fn json_format_reports_machine_readable_violations() {
    let root = fake_workspace("json", SEEDED_LIB);
    let out = run(&root, &["--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"tool\": \"nvr-lint\""), "{stdout}");
    assert!(
        stdout.contains("\"rule\": \"determinism/ordered-containers\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"line\": "), "{stdout}");
}

#[test]
fn out_flag_writes_json_report_alongside_text() {
    let root = fake_workspace("outfile", SEEDED_LIB);
    let report_path = root.join("lint.json");
    let out = run(&root, &["--out", report_path.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let json = fs::read_to_string(&report_path).expect("report written");
    assert!(json.contains("determinism/ordered-containers"), "{json}");
}

#[test]
fn missing_root_exits_two() {
    let out = bin()
        .arg("--root")
        .arg("/nonexistent-nvr-lint-root")
        .output()
        .expect("spawn nvr-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_flag_exits_two() {
    let out = bin().arg("--bogus").output().expect("spawn nvr-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn list_rules_prints_catalogue_and_exits_zero() {
    let out = bin().arg("--list-rules").output().expect("spawn nvr-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "determinism/ordered-containers",
        "determinism/wall-clock",
        "csv/schema-sync",
        "registry/variant-drift",
        "registry/wildcard-arm",
        "config/dead-knob",
        "csv/cross-file-schema",
        "units/suffix-mix",
        "lint/unused-allow",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn explain_prints_rationale_and_exits_zero() {
    let out = bin()
        .args(["--explain", "config/dead-knob"])
        .output()
        .expect("spawn nvr-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("config/dead-knob"), "{stdout}");
    assert!(stdout.contains("knob wired to nothing"), "{stdout}");
}

#[test]
fn explain_unknown_rule_exits_two() {
    let out = bin()
        .args(["--explain", "nonsense/rule"])
        .output()
        .expect("spawn nvr-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule"), "{stderr}");
}

#[test]
fn rule_filter_gates_the_exit_code() {
    let root = fake_workspace("rule-filter", SEEDED_LIB);
    // The seeded violation is ordered-containers; filtering on an
    // unrelated rule leaves a clean report.
    let out = run(&root, &["--rule", "determinism/wall-clock"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = run(&root, &["--rule", "determinism/ordered-containers"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("determinism/ordered-containers"),
        "{stdout}"
    );
    // Unknown rule names are a usage error.
    let out = run(&root, &["--rule", "nonsense/rule"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn cache_warms_hits_and_invalidates_on_edit() {
    let root = fake_workspace("cache", CLEAN_LIB);
    let cache = root.join("lint-cache.json");
    let cache_args = [
        "--cache",
        cache.to_str().expect("utf8 path"),
        "--format",
        "json",
    ];
    // The fake-workspace dir persists across test-suite invocations.
    let _ = fs::remove_file(&cache);

    let out = run(&root, &cache_args);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"files_cached\": 0"), "cold: {stdout}");
    assert!(cache.is_file(), "cache written on the cold run");

    let out = run(&root, &cache_args);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"files_cached\": 1"), "warm: {stdout}");

    // Any content change flips the fingerprint and forces re-analysis.
    let lib = root.join("crates/core/src/lib.rs");
    let edited = format!("{CLEAN_LIB}\n/// Another.\npub fn more() {{}}\n");
    fs::write(&lib, edited).expect("edit lib.rs");
    let out = run(&root, &cache_args);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"files_cached\": 0"), "edited: {stdout}");
}

#[test]
fn no_cache_flag_writes_nothing() {
    let root = fake_workspace("no-cache", CLEAN_LIB);
    let out = run(&root, &["--no-cache"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        !root.join("target/nvr-lint-cache.json").exists(),
        "--no-cache must not create the default cache file"
    );
}
