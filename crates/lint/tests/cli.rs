//! End-to-end tests of the `nvr-lint` binary: exit codes, JSON output,
//! and the CI failure mode (a `HashMap` deliberately seeded into a fake
//! `crates/core` must fail the run) — the contract the CI job relies on.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nvr-lint"))
}

/// Builds a throwaway fake workspace under the target tmpdir and returns
/// its root. `core_lib` becomes `crates/core/src/lib.rs`.
fn fake_workspace(tag: &str, core_lib: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("nvr-lint-{tag}"));
    let src = root.join("crates/core/src");
    fs::create_dir_all(&src).expect("mkdir");
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    fs::write(src.join("lib.rs"), core_lib).expect("lib.rs");
    root
}

fn run(root: &PathBuf, extra: &[&str]) -> Output {
    bin()
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn nvr-lint")
}

const CLEAN_LIB: &str = "//! A clean crate root.\n\n\
    #![forbid(unsafe_code)]\n#![deny(missing_docs)]\n\n\
    /// Documented.\npub fn ok() {}\n";

const SEEDED_LIB: &str = "//! A crate root seeded with a determinism hazard.\n\n\
    #![forbid(unsafe_code)]\n#![deny(missing_docs)]\n\n\
    use std::collections::HashMap;\n\n\
    /// Documented, but unordered.\npub fn bad() -> HashMap<u64, u64> {\n    \
    HashMap::new()\n}\n";

#[test]
fn clean_workspace_exits_zero() {
    let root = fake_workspace("clean", CLEAN_LIB);
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn seeded_hashmap_in_core_fails_with_exit_one() {
    let root = fake_workspace("seeded", SEEDED_LIB);
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("determinism/ordered-containers"),
        "{stdout}"
    );
    assert!(stdout.contains("crates/core/src/lib.rs"), "{stdout}");
}

#[test]
fn json_format_reports_machine_readable_violations() {
    let root = fake_workspace("json", SEEDED_LIB);
    let out = run(&root, &["--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"tool\": \"nvr-lint\""), "{stdout}");
    assert!(
        stdout.contains("\"rule\": \"determinism/ordered-containers\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"line\": "), "{stdout}");
}

#[test]
fn out_flag_writes_json_report_alongside_text() {
    let root = fake_workspace("outfile", SEEDED_LIB);
    let report_path = root.join("lint.json");
    let out = run(&root, &["--out", report_path.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let json = fs::read_to_string(&report_path).expect("report written");
    assert!(json.contains("determinism/ordered-containers"), "{json}");
}

#[test]
fn missing_root_exits_two() {
    let out = bin()
        .arg("--root")
        .arg("/nonexistent-nvr-lint-root")
        .output()
        .expect("spawn nvr-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_flag_exits_two() {
    let out = bin().arg("--bogus").output().expect("spawn nvr-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn list_rules_prints_catalogue_and_exits_zero() {
    let out = bin().arg("--list-rules").output().expect("spawn nvr-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "determinism/ordered-containers",
        "determinism/wall-clock",
        "csv/schema-sync",
        "lint/unused-allow",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}
