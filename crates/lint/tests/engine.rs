//! Fixture-driven tests of the rule engine: every rule has a known-bad
//! snippet that must fire and a known-good (or audited) snippet that must
//! stay clean. Fixtures live under `tests/fixtures/` — a directory name
//! the workspace walker deliberately skips, so the deliberately-bad code
//! never pollutes the real lint pass.

use nvr_lint::{lint_source, Rule};

/// Runs the engine over a fixture under the given pseudo-path (rule
/// scoping keys off the path) and returns the rules that fired.
fn fired(rel: &str, src: &str) -> Vec<Rule> {
    lint_source(rel, src).into_iter().map(|d| d.rule).collect()
}

const CORE_PATH: &str = "crates/core/src/some_module.rs";

#[test]
fn ordered_containers_bad_fires_per_occurrence() {
    let src = include_str!("fixtures/ordered_containers_bad.rs");
    let diags = lint_source(CORE_PATH, src);
    assert!(diags.len() >= 4, "one finding per occurrence: {diags:?}");
    assert!(diags.iter().all(|d| d.rule == Rule::OrderedContainers));
    // Diagnostics carry real positions.
    assert!(diags.iter().all(|d| d.file == CORE_PATH && d.line > 1));
}

#[test]
fn ordered_containers_good_is_clean() {
    let src = include_str!("fixtures/ordered_containers_good.rs");
    assert_eq!(fired(CORE_PATH, src), []);
}

#[test]
fn ordered_containers_ignored_outside_result_crates() {
    let src = include_str!("fixtures/ordered_containers_bad.rs");
    assert_eq!(fired("crates/llm/src/model.rs", src), []);
    assert_eq!(fired("crates/lint/src/rules.rs", src), []);
}

#[test]
fn wall_clock_bad_fires_everywhere() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    let rules = fired("crates/llm/src/model.rs", src);
    assert_eq!(rules, [Rule::WallClock, Rule::WallClock]);
}

#[test]
fn wall_clock_allow_is_honoured_and_consumed() {
    let src = include_str!("fixtures/wall_clock_allowed.rs");
    assert_eq!(fired("crates/sim/src/util.rs", src), []);
}

#[test]
fn thread_state_bad_fires() {
    let src = include_str!("fixtures/thread_state_bad.rs");
    assert_eq!(
        fired("crates/workloads/src/gen.rs", src),
        [Rule::ThreadState]
    );
}

#[test]
fn lossy_cast_bad_fires_only_in_tick_crates() {
    let src = include_str!("fixtures/lossy_cast_bad.rs");
    assert_eq!(fired(CORE_PATH, src), [Rule::LossyCast, Rule::LossyCast]);
    // The same code outside core/mem is not in scope.
    assert_eq!(fired("crates/sim/src/x.rs", src), []);
}

#[test]
fn lossy_cast_good_is_clean() {
    let src = include_str!("fixtures/lossy_cast_good.rs");
    assert_eq!(fired(CORE_PATH, src), []);
}

#[test]
fn panic_hot_loop_bad_fires_in_tick_files() {
    let src = include_str!("fixtures/panic_hot_loop_bad.rs");
    let rules = fired("crates/mem/src/dram.rs", src);
    assert_eq!(rules, [Rule::PanicHotLoop, Rule::PanicHotLoop]);
    // The same code outside the hot-loop file set is fine.
    assert_eq!(fired("crates/mem/src/stats.rs", src), []);
}

#[test]
fn panic_in_test_module_is_exempt() {
    let src = include_str!("fixtures/panic_hot_loop_test_only.rs");
    assert_eq!(fired("crates/mem/src/cache.rs", src), []);
}

#[test]
fn hot_loop_alloc_bad_fires_per_site() {
    let src = include_str!("fixtures/hot_loop_alloc_bad.rs");
    let diags = lint_source("crates/mem/src/cache.rs", src);
    assert_eq!(diags.len(), 4, "one finding per allocation site: {diags:?}");
    assert!(diags.iter().all(|d| d.rule == Rule::HotLoopAlloc));
    // The message names the allocating expression.
    assert!(diags.iter().any(|d| d.message.contains("`Vec::new`")));
    assert!(diags.iter().any(|d| d.message.contains("`format!`")));
    assert!(diags.iter().any(|d| d.message.contains("`.to_vec()`")));
    assert!(diags.iter().any(|d| d.message.contains("`Box::new`")));
}

#[test]
fn hot_loop_alloc_good_is_clean() {
    let src = include_str!("fixtures/hot_loop_alloc_good.rs");
    assert_eq!(fired("crates/core/src/controller.rs", src), []);
}

#[test]
fn hot_loop_alloc_ignored_outside_core_and_mem() {
    let src = include_str!("fixtures/hot_loop_alloc_bad.rs");
    assert_eq!(fired("crates/sim/src/sweep.rs", src), []);
    assert_eq!(fired("crates/bench/src/bin/perf.rs", src), []);
}

#[test]
fn crate_root_missing_attrs_fires() {
    let src = include_str!("fixtures/crate_root_bad.rs");
    let rules = fired("crates/core/src/lib.rs", src);
    assert!(rules.contains(&Rule::UnsafeForbid));
    assert!(rules.contains(&Rule::DocsDenyMissing));
    // Non-root files are not in scope.
    assert_eq!(fired(CORE_PATH, src), []);
}

#[test]
fn crate_root_with_attrs_is_clean() {
    let src = include_str!("fixtures/crate_root_good.rs");
    assert_eq!(fired("crates/core/src/lib.rs", src), []);
}

#[test]
fn knob_doc_bad_fires_with_field_name() {
    let src = include_str!("fixtures/knob_doc_bad.rs");
    let diags = lint_source("crates/core/src/config.rs", src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, Rule::KnobDoc);
    assert!(diags[0].message.contains("NvrConfig::undocumented"));
}

#[test]
fn knob_doc_good_is_clean_with_attributes() {
    let src = include_str!("fixtures/knob_doc_good.rs");
    assert_eq!(fired("crates/core/src/config.rs", src), []);
}

#[test]
fn csv_schema_mismatch_fires() {
    let src = include_str!("fixtures/csv_schema_bad.rs");
    let diags = lint_source("crates/sim/src/report.rs", src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, Rule::CsvSchemaSync);
    assert!(diags[0].message.contains('4') && diags[0].message.contains('3'));
}

#[test]
fn csv_schema_good_is_clean() {
    let src = include_str!("fixtures/csv_schema_good.rs");
    assert_eq!(fired("crates/sim/src/report.rs", src), []);
}

#[test]
fn malformed_allows_fire_one_each() {
    let src = include_str!("fixtures/allow_malformed.rs");
    let rules = fired("crates/llm/src/x.rs", src);
    assert_eq!(
        rules,
        [
            Rule::MalformedAllow,
            Rule::MalformedAllow,
            Rule::MalformedAllow
        ]
    );
}

#[test]
fn unused_allow_fires() {
    let src = include_str!("fixtures/allow_unused.rs");
    let diags = lint_source("crates/core/src/x.rs", src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, Rule::UnusedAllow);
    assert!(diags[0].message.contains("suppresses nothing"));
}

#[test]
fn doc_comments_never_carry_suppressions() {
    // Documentation *describing* the syntax must neither suppress nor be
    // reported as malformed.
    let src = "//! Use `// nvr-lint: allow(rule) reason=\"...\"` to suppress.\n\
               /// See `nvr-lint: allow(determinism/wall-clock)` for details.\n\
               pub fn f() {}\n";
    assert_eq!(fired("crates/llm/src/x.rs", src), []);
}
