//! `nvr-lint` — workspace-wide determinism and simulator-invariant
//! static analysis.
//!
//! The repo's load-bearing correctness property is *bit-exact determinism*
//! of simulation results across `--jobs`, seeds and channel counts: every
//! headline number rests on it, and runtime bit-equality tests can only
//! sample a handful of grid cells. This crate checks the invariants
//! statically, on every line of the workspace, on every PR:
//!
//! * a hand-rolled, comment/string/attribute-aware lexer ([`lexer`]) —
//!   std-only, no `syn`, consistent with the offline `vendor/` policy;
//! * ~10 repo-specific rules ([`diag::Rule`]) with `file:line`
//!   diagnostics: ordered-container and wall-clock/ambient-RNG
//!   determinism hazards, narrowing casts and unjustified panics in tick
//!   paths, crate-root `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]`
//!   attributes, config-knob doc coverage, and CSV header/row schema sync;
//! * audited inline suppression: `// nvr-lint: allow(rule) reason="..."`
//!   with a mandatory reason, malformed-allow diagnostics, and
//!   unused-allow detection so suppressions cannot rot.
//!
//! Run it with `cargo run -p nvr_lint` (exit 0 = clean, 1 = violations),
//! or `--format json` for the machine-readable report CI archives.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use diag::{Diagnostic, Report, Rule};
pub use engine::{find_workspace_root, lint_workspace};
pub use rules::lint_source;
