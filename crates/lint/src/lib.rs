//! `nvr-lint` — workspace-wide determinism and simulator-invariant
//! static analysis.
//!
//! The repo's load-bearing correctness property is *bit-exact determinism*
//! of simulation results across `--jobs`, seeds and channel counts — and,
//! one level up, *registry coherence*: every `SystemKind`/`WorkloadId`/
//! `FigureId` variant must flow through every dispatch surface, and every
//! config knob must actually steer the model. Runtime tests can only
//! sample a handful of grid cells; this crate checks the invariants
//! statically, on every line of the workspace, on every PR, in two
//! passes:
//!
//! * **Pass 1 (per file, cached):** a hand-rolled, comment/string/
//!   attribute-aware lexer ([`lexer`]) feeds the token rules
//!   (ordered-container and wall-clock/ambient-RNG determinism hazards,
//!   narrowing casts and unjustified panics in tick paths, crate-root
//!   attributes, knob docs, same-file CSV schema sync) and an item-level
//!   parser ([`parser`]) that distils each file into a
//!   [`model::FileModel`]. Results are fingerprint-cached in
//!   `target/nvr-lint-cache.json` ([`cache`]).
//! * **Pass 2 (workspace):** the per-file models stitch into a
//!   [`model::WorkspaceModel`] and the cross-file semantic rules
//!   ([`semantic`]) run over it: registry variant drift, wildcard arms
//!   over registry enums, dead config knobs, documented-CSV-column
//!   drift, and unit-suffix mixing.
//!
//! Suppressions are audited inline — `// nvr-lint: allow(rule)
//! reason="..."` with a mandatory reason, malformed-allow diagnostics,
//! and unused-allow detection — and cover semantic findings the same as
//! token findings.
//!
//! Run it with `cargo run -p nvr_lint` (exit 0 = clean, 1 = violations),
//! `--format json` for the machine-readable report CI archives, or
//! `--rule <name>` / `--explain <name>` to work on one rule at a time.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod rules;
pub mod semantic;

pub use diag::{Diagnostic, Report, Rule};
pub use engine::{find_workspace_root, lint_workspace, lint_workspace_with, LintOptions};
pub use rules::{analyze_source, lint_source};
