//! Diagnostics: the rule catalogue, violation records, and the text/JSON
//! renderings the CLI emits.

use std::fmt;

/// Every rule `nvr-lint` enforces.
///
/// The first nine are code rules; the last two audit the suppression
/// mechanism itself so `// nvr-lint: allow(...)` comments cannot rot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// No `HashMap`/`HashSet`/`RandomState`/`DefaultHasher` in the
    /// result-producing crates — unordered iteration breaks `--jobs`
    /// bit-equality.
    OrderedContainers,
    /// No `Instant::now`/`SystemTime` reads: wall-clock must never feed a
    /// simulation result. The sweep timing CSVs carry audited allows.
    WallClock,
    /// No ambient randomness (`thread_rng`, `OsRng`, `from_entropy`,
    /// `getrandom`): RNG state must flow from seeded `SweepJob` state.
    ThreadState,
    /// No narrowing `as` casts in the cycle/address-typed tick paths of
    /// `nvr_core`/`nvr_mem` — silent truncation corrupts speedups.
    LossyCast,
    /// `unwrap()`/`expect()` in controller/cache/DRAM tick code must carry
    /// a justification (an audited allow).
    PanicHotLoop,
    /// Every crate root must carry `#![forbid(unsafe_code)]`.
    UnsafeForbid,
    /// Every crate root must carry `#![deny(missing_docs)]`.
    DocsDenyMissing,
    /// Every config-struct knob (`NvrConfig`, `DramConfig`, `SweepSpec`,
    /// ...) needs a doc comment stating its unit.
    KnobDoc,
    /// CSV header literals must agree column-for-column with the row
    /// format string that follows them.
    CsvSchemaSync,
    /// A `nvr-lint: allow(...)` comment without a parseable rule name or
    /// a non-empty `reason="..."`.
    MalformedAllow,
    /// A well-formed allow that suppressed nothing.
    UnusedAllow,
}

impl Rule {
    /// Every rule, in catalogue order.
    pub const ALL: [Rule; 11] = [
        Rule::OrderedContainers,
        Rule::WallClock,
        Rule::ThreadState,
        Rule::LossyCast,
        Rule::PanicHotLoop,
        Rule::UnsafeForbid,
        Rule::DocsDenyMissing,
        Rule::KnobDoc,
        Rule::CsvSchemaSync,
        Rule::MalformedAllow,
        Rule::UnusedAllow,
    ];

    /// The stable `category/name` id used in diagnostics and allows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::OrderedContainers => "determinism/ordered-containers",
            Rule::WallClock => "determinism/wall-clock",
            Rule::ThreadState => "determinism/thread-state",
            Rule::LossyCast => "overflow/lossy-cast",
            Rule::PanicHotLoop => "panic/hot-loop",
            Rule::UnsafeForbid => "unsafe/forbid",
            Rule::DocsDenyMissing => "docs/deny-missing",
            Rule::KnobDoc => "config/knob-doc",
            Rule::CsvSchemaSync => "csv/schema-sync",
            Rule::MalformedAllow => "lint/malformed-allow",
            Rule::UnusedAllow => "lint/unused-allow",
        }
    }

    /// One-line description for `--list-rules`.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Rule::OrderedContainers => {
                "no HashMap/HashSet/RandomState in result-producing crates \
                 (iteration order breaks --jobs bit-equality)"
            }
            Rule::WallClock => "no Instant::now/SystemTime outside audited sweep-timing sites",
            Rule::ThreadState => "no ambient randomness; RNG must flow from seeded SweepJob state",
            Rule::LossyCast => {
                "no narrowing `as` casts on cycle/address values in core/mem tick paths"
            }
            Rule::PanicHotLoop => {
                "unwrap()/expect() in controller/cache/DRAM code needs a justification"
            }
            Rule::UnsafeForbid => "crate roots must carry #![forbid(unsafe_code)]",
            Rule::DocsDenyMissing => "crate roots must carry #![deny(missing_docs)]",
            Rule::KnobDoc => "every config-struct field needs a doc comment stating its unit",
            Rule::CsvSchemaSync => {
                "CSV header literals must match the column count of their row format"
            }
            Rule::MalformedAllow => {
                "nvr-lint allows need a known rule and a non-empty reason=\"...\""
            }
            Rule::UnusedAllow => "allows that suppress nothing must be removed",
        }
    }

    /// Looks a rule up by its `category/name` id.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Whether an allow for this rule covers the whole file (crate-root
    /// attribute rules) rather than a single line.
    #[must_use]
    pub fn file_scoped(self) -> bool {
        matches!(self, Rule::UnsafeForbid | Rule::DocsDenyMissing)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule violated.
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations, in (file, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were checked.
    pub files_checked: usize,
}

impl Report {
    /// True when nothing was flagged.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable rendering: one stable JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"tool\": \"nvr-lint\",\n");
        out.push_str(&format!(
            "  \"files_checked\": {},\n  \"violations\": [",
            self.files_checked
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(d.rule.name()),
                json_escape(&d.file),
                d.line,
                json_escape(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
            assert!(!rule.describe().is_empty());
        }
        assert_eq!(Rule::from_name("nonsense/rule"), None);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_json_shape() {
        let mut r = Report {
            files_checked: 2,
            ..Report::default()
        };
        assert!(r.is_clean());
        assert!(r.to_json().contains("\"violations\": []"));
        r.diagnostics.push(Diagnostic {
            rule: Rule::OrderedContainers,
            file: "crates/core/src/lib.rs".into(),
            line: 3,
            message: "found `HashMap`".into(),
        });
        let json = r.to_json();
        assert!(json.contains("\"rule\": \"determinism/ordered-containers\""));
        assert!(json.contains("\"line\": 3"));
    }
}
