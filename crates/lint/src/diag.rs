//! Diagnostics: the rule catalogue, violation records, and the text/JSON
//! renderings the CLI emits.

use std::fmt;

use crate::model::ModelStats;

/// Every rule `nvr-lint` enforces.
///
/// Three families: per-file token rules, workspace-wide semantic rules
/// (which need the cross-file [`crate::model::WorkspaceModel`]), and the
/// two audit rules that keep `// nvr-lint: allow(...)` comments honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// No `HashMap`/`HashSet`/`RandomState`/`DefaultHasher` in the
    /// result-producing crates — unordered iteration breaks `--jobs`
    /// bit-equality.
    OrderedContainers,
    /// No `Instant::now`/`SystemTime` reads: wall-clock must never feed a
    /// simulation result. The sweep timing CSVs carry audited allows.
    WallClock,
    /// No ambient randomness (`thread_rng`, `OsRng`, `from_entropy`,
    /// `getrandom`): RNG state must flow from seeded `SweepJob` state.
    ThreadState,
    /// No narrowing `as` casts in the cycle/address-typed tick paths of
    /// `nvr_core`/`nvr_mem` — silent truncation corrupts speedups.
    LossyCast,
    /// `unwrap()`/`expect()` in controller/cache/DRAM tick code must carry
    /// a justification (an audited allow).
    PanicHotLoop,
    /// No per-iteration `Vec`/`String`/`Box` allocation inside the named
    /// tick/advance loops of `nvr_core`/`nvr_mem` — the allocator in a
    /// per-cycle loop multiplies every sweep's wall clock.
    HotLoopAlloc,
    /// Every crate root must carry `#![forbid(unsafe_code)]`.
    UnsafeForbid,
    /// Every crate root must carry `#![deny(missing_docs)]`.
    DocsDenyMissing,
    /// Every config-struct knob (`NvrConfig`, `DramConfig`, `SweepSpec`,
    /// ...) needs a doc comment stating its unit.
    KnobDoc,
    /// CSV header literals must agree column-for-column with the row
    /// format string that follows them.
    CsvSchemaSync,
    /// Semantic: every registry-enum variant (`SystemKind`, `WorkloadId`,
    /// `FigureId`) must sit in its `ALL` table and — for the dispatched
    /// enums — be referenced outside its defining file.
    VariantDrift,
    /// Semantic: no `_` catch-all arm in `match`es over registry enums
    /// inside result-producing crates — a new variant must fail to
    /// compile, not be silently lumped into an existing system.
    WildcardArm,
    /// Semantic: every pub field of a config struct must be read in at
    /// least one file other than the one defining it.
    DeadKnob,
    /// Semantic: CSV column names documented in README/ARCHITECTURE.md
    /// must exist in some writer's header string (or as a workspace
    /// identifier) — the cross-file upgrade of `csv/schema-sync`.
    CsvCrossFile,
    /// Semantic: no `+`/`-` between identifiers carrying *different* unit
    /// suffixes (`_cycles`/`_ns`/`_bytes`/`_lines`) unless one side is a
    /// named conversion.
    SuffixMix,
    /// A `nvr-lint: allow(...)` comment without a parseable rule name or
    /// a non-empty `reason="..."`.
    MalformedAllow,
    /// A well-formed allow that suppressed nothing.
    UnusedAllow,
}

impl Rule {
    /// Every rule, in catalogue order.
    pub const ALL: [Rule; 17] = [
        Rule::OrderedContainers,
        Rule::WallClock,
        Rule::ThreadState,
        Rule::LossyCast,
        Rule::PanicHotLoop,
        Rule::HotLoopAlloc,
        Rule::UnsafeForbid,
        Rule::DocsDenyMissing,
        Rule::KnobDoc,
        Rule::CsvSchemaSync,
        Rule::VariantDrift,
        Rule::WildcardArm,
        Rule::DeadKnob,
        Rule::CsvCrossFile,
        Rule::SuffixMix,
        Rule::MalformedAllow,
        Rule::UnusedAllow,
    ];

    /// The stable `category/name` id used in diagnostics and allows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::OrderedContainers => "determinism/ordered-containers",
            Rule::WallClock => "determinism/wall-clock",
            Rule::ThreadState => "determinism/thread-state",
            Rule::LossyCast => "overflow/lossy-cast",
            Rule::PanicHotLoop => "panic/hot-loop",
            Rule::HotLoopAlloc => "perf/hot-loop-alloc",
            Rule::UnsafeForbid => "unsafe/forbid",
            Rule::DocsDenyMissing => "docs/deny-missing",
            Rule::KnobDoc => "config/knob-doc",
            Rule::CsvSchemaSync => "csv/schema-sync",
            Rule::VariantDrift => "registry/variant-drift",
            Rule::WildcardArm => "registry/wildcard-arm",
            Rule::DeadKnob => "config/dead-knob",
            Rule::CsvCrossFile => "csv/cross-file-schema",
            Rule::SuffixMix => "units/suffix-mix",
            Rule::MalformedAllow => "lint/malformed-allow",
            Rule::UnusedAllow => "lint/unused-allow",
        }
    }

    /// One-line description for `--list-rules`.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Rule::OrderedContainers => {
                "no HashMap/HashSet/RandomState in result-producing crates \
                 (iteration order breaks --jobs bit-equality)"
            }
            Rule::WallClock => "no Instant::now/SystemTime outside audited sweep-timing sites",
            Rule::ThreadState => "no ambient randomness; RNG must flow from seeded SweepJob state",
            Rule::LossyCast => {
                "no narrowing `as` casts on cycle/address values in core/mem tick paths"
            }
            Rule::PanicHotLoop => {
                "unwrap()/expect() in controller/cache/DRAM code needs a justification"
            }
            Rule::HotLoopAlloc => {
                "no per-iteration Vec/String/Box allocation inside named \
                 tick/advance loops of core/mem"
            }
            Rule::UnsafeForbid => "crate roots must carry #![forbid(unsafe_code)]",
            Rule::DocsDenyMissing => "crate roots must carry #![deny(missing_docs)]",
            Rule::KnobDoc => "every config-struct field needs a doc comment stating its unit",
            Rule::CsvSchemaSync => {
                "CSV header literals must match the column count of their row format"
            }
            Rule::VariantDrift => {
                "registry-enum variants must sit in ALL and be referenced outside \
                 their defining file"
            }
            Rule::WildcardArm => {
                "no `_` arm in matches over registry enums inside result-producing crates"
            }
            Rule::DeadKnob => "every pub config-struct field must be read outside its file",
            Rule::CsvCrossFile => {
                "CSV columns documented in README/ARCHITECTURE.md must exist in a writer"
            }
            Rule::SuffixMix => {
                "no +/- between identifiers with different unit suffixes without a conversion"
            }
            Rule::MalformedAllow => {
                "nvr-lint allows need a known rule and a non-empty reason=\"...\""
            }
            Rule::UnusedAllow => "allows that suppress nothing must be removed",
        }
    }

    /// Looks a rule up by its `category/name` id.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Whether an allow for this rule covers the whole file (crate-root
    /// attribute rules) rather than a single line.
    #[must_use]
    pub fn file_scoped(self) -> bool {
        matches!(self, Rule::UnsafeForbid | Rule::DocsDenyMissing)
    }

    /// Whether the rule needs the cross-file workspace model (pass 2)
    /// rather than a single file's token stream (pass 1).
    #[must_use]
    pub fn semantic(self) -> bool {
        matches!(
            self,
            Rule::VariantDrift
                | Rule::WildcardArm
                | Rule::DeadKnob
                | Rule::CsvCrossFile
                | Rule::SuffixMix
        )
    }

    /// The long-form rationale printed by `--explain <name>`: what the
    /// rule guards, why the repo cares, and how to fix or suppress a hit.
    #[must_use]
    pub fn explain(self) -> &'static str {
        match self {
            Rule::OrderedContainers => {
                "Results must be bit-identical across --jobs and platforms. \
                 HashMap/HashSet iterate in RandomState order, so any fold over them \
                 can reorder floating-point accumulation and shift a speedup in the \
                 last ulp.\nFix: BTreeMap/BTreeSet, or a Vec in deterministic order.\n\
                 Scope: crates/core, crates/mem, crates/sim, crates/workloads."
            }
            Rule::WallClock => {
                "Wall-clock reads feeding a simulation result make runs \
                 irreproducible. Instant::now/SystemTime are legitimate only at the \
                 audited sweep-timing sites, each carrying an allow with a reason.\n\
                 Fix: thread simulated time (cycles) through instead; for genuine \
                 timing telemetry, add `// nvr-lint: allow(determinism/wall-clock) \
                 reason=\"...\"`."
            }
            Rule::ThreadState => {
                "thread_rng/OsRng/from_entropy draw ambient entropy, so two runs of \
                 the same seed diverge. All randomness must flow from the seeded \
                 Pcg32 carried in SweepJob/WorkloadSpec state.\n\
                 Fix: plumb the seeded generator through; never reseed from the \
                 environment."
            }
            Rule::LossyCast => {
                "Cycle counts and addresses are u64; a narrowing `as` cast in \
                 crates/core or crates/mem silently truncates once a sweep runs long \
                 enough.\nFix: u64 end-to-end, or try_from with an explicit error; \
                 justify real clamps with an allow."
            }
            Rule::PanicHotLoop => {
                "A panic inside controller/cache/DRAM tick code kills the whole \
                 parallel sweep, losing every in-flight figure.\nFix: return an \
                 error or restructure; where the invariant is airtight, document it \
                 via `allow(panic/hot-loop) reason=\"...\"`."
            }
            Rule::HotLoopAlloc => {
                "The simulator's throughput budget is set by the per-cycle loops in \
                 crates/core and crates/mem (tick/advance/step/issue/probe/install \
                 and friends). A Vec::new, String::from, format!, Box::new or \
                 .collect() inside such a loop's body calls the allocator once per \
                 iteration — the exact pattern the SoA/batching rework removed, and \
                 the one the perf CI gate exists to catch after the fact.\nFix: hoist \
                 the allocation out of the loop and reuse the buffer (clear(), \
                 swap-style drains), or size it once with with_capacity; where a \
                 per-iteration allocation is genuinely cold (error paths, logging \
                 that is off by default), justify it with \
                 `allow(perf/hot-loop-alloc) reason=\"...\"`."
            }
            Rule::UnsafeForbid => {
                "Every crate root must carry #![forbid(unsafe_code)]: the simulator \
                 has no business with unsafe, and forbid (unlike deny) cannot be \
                 overridden further down the tree."
            }
            Rule::DocsDenyMissing => {
                "Every crate root must carry #![deny(missing_docs)] so public API \
                 drift without documentation fails the build."
            }
            Rule::KnobDoc => {
                "Each config-struct field steers the model; an undocumented knob's \
                 unit and default rationale are unrecoverable a month later.\n\
                 Fix: add a /// doc comment stating the unit and why the default is \
                 what it is."
            }
            Rule::CsvSchemaSync => {
                "Within one file, a CSV header literal and the row format! that \
                 follows must agree on column count, or every downstream plot reads \
                 shifted columns.\nFix: keep header string and row fields in sync."
            }
            Rule::VariantDrift => {
                "The headline grid (8 workloads x 7 systems x figures) is built \
                 from hand-maintained registries: each enum's ALL table plus the \
                 dispatch surfaces (runner, sweep tables, CLI FromStr, figure \
                 drivers). A variant missing from ALL — or never referenced outside \
                 its defining file — silently drops out of every sweep while the \
                 build stays green.\nFix: add the variant to ALL and wire it through \
                 the dispatch surfaces; the fixture trees under crates/lint/tests \
                 show the minimal shape."
            }
            Rule::WildcardArm => {
                "A `_` arm in a match over SystemKind/WorkloadId/FigureId inside a \
                 result-producing crate means a future variant inherits some default \
                 behaviour instead of failing to compile — exactly how a new system \
                 ends up simulated with the wrong memory config.\nFix: enumerate \
                 every variant explicitly (guard arms are fine); the compiler then \
                 forces each new variant to be placed deliberately."
            }
            Rule::DeadKnob => {
                "A pub field on NvrConfig/CacheConfig/DramConfig/MemoryConfig/\
                 NpuConfig that no other file reads is a knob wired to nothing: \
                 sweeps vary it, plots caption it, the model ignores it.\nFix: \
                 either wire the knob into the model or delete it."
            }
            Rule::CsvCrossFile => {
                "README/ARCHITECTURE.md document CSV columns by name; the writers \
                 in crates/sim own the header strings. When a column is renamed in \
                 code but not in docs, every reader of the docs mis-parses the \
                 artifact.\nFix: update the documented column lists to match the \
                 writer headers (backticked snake_case names are checked against \
                 all writer headers and workspace identifiers)."
            }
            Rule::SuffixMix => {
                "Identifiers ending in _cycles/_ns/_bytes/_lines carry their unit \
                 in the name; adding or subtracting across units (latency_ns + \
                 row_bytes) is a dimensional bug the type system cannot see.\nFix: \
                 convert through a named helper (a *_per_*, to_*, from_* identifier \
                 on either side marks the site as a conversion)."
            }
            Rule::MalformedAllow => {
                "Suppressions are audited: `// nvr-lint: allow(rule) \
                 reason=\"...\"` needs a known rule name and a non-empty reason, or \
                 it is itself a violation."
            }
            Rule::UnusedAllow => {
                "An allow that suppresses nothing is stale audit trail; remove it \
                 so every suppression in the tree corresponds to a live finding."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule violated.
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations, in (file, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were checked.
    pub files_checked: usize,
    /// How many of those were served from the fingerprint cache.
    pub files_cached: usize,
    /// What the workspace model indexed (0 across the board when the
    /// semantic pass did not run, e.g. single-file `lint_source`).
    pub model_stats: ModelStats,
}

impl Report {
    /// True when nothing was flagged.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable rendering: one stable JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"tool\": \"nvr-lint\",\n");
        let s = &self.model_stats;
        out.push_str(&format!(
            "  \"files_checked\": {},\n  \"files_cached\": {},\n  \"model_stats\": \
             {{\"files\": {}, \"enums\": {}, \"variants\": {}, \"structs\": {}, \
             \"fields\": {}, \"matches\": {}, \"csv_headers\": {}}},\n  \"violations\": [",
            self.files_checked,
            self.files_cached,
            s.files,
            s.enums,
            s.variants,
            s.structs,
            s.fields,
            s.matches,
            s.csv_headers
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(d.rule.name()),
                json_escape(&d.file),
                d.line,
                json_escape(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
            assert!(!rule.describe().is_empty());
        }
        assert_eq!(Rule::from_name("nonsense/rule"), None);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_json_shape() {
        let mut r = Report {
            files_checked: 2,
            ..Report::default()
        };
        assert!(r.is_clean());
        assert!(r.to_json().contains("\"violations\": []"));
        r.diagnostics.push(Diagnostic {
            rule: Rule::OrderedContainers,
            file: "crates/core/src/lib.rs".into(),
            line: 3,
            message: "found `HashMap`".into(),
        });
        let json = r.to_json();
        assert!(json.contains("\"rule\": \"determinism/ordered-containers\""));
        assert!(json.contains("\"line\": 3"));
    }
}
