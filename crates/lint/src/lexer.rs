//! A small hand-rolled Rust lexer — just enough syntax awareness for the
//! lint rules: identifiers, punctuation, string/char/number literals and
//! comments, each tagged with its 1-based source line.
//!
//! The point of lexing (rather than substring search) is that rule
//! matching runs over *code tokens only*: a `HashMap` inside a doc
//! comment, a string literal or a `#[doc = "..."]` attribute never
//! triggers a determinism rule, while the comment stream is what the
//! suppression parser reads. The lexer understands line and (nested)
//! block comments, regular/raw/byte string literals with escapes and
//! line continuations, char literals vs lifetimes, and loose numeric
//! literals. It does not attempt full fidelity (no float-exponent
//! special cases, no non-ASCII identifiers) — the workspace is
//! rustfmt-clean 2021-edition code and the fixtures in `tests/` pin the
//! cases the rules depend on.

/// What kind of code token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `as`, `pub`, ...).
    Ident,
    /// Single punctuation character (`:`, `(`, `#`, ...).
    Punct(char),
    /// String literal (regular, raw or byte); `text` holds the cooked
    /// content with common escapes resolved.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal (integers, floats, any radix/suffix).
    Num,
    /// Lifetime (`'a`) — kept distinct so char-literal logic stays honest.
    Lifetime,
}

/// One code token with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Identifier text, cooked literal content, or the punctuation char.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment with its 1-based starting line; suppression comments are
/// parsed out of this stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body, including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The result of lexing one file: code tokens and comments, in order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens (comments excluded).
    pub toks: Vec<Tok>,
    /// Comments, for suppression parsing.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True if any code token starts on `line` — used to decide whether a
    /// suppression comment shares its line with code or stands alone.
    #[must_use]
    pub fn has_code_on_line(&self, line: u32) -> bool {
        self.toks.iter().any(|t| t.line == line)
    }
}

/// Tokenizes `src`. Never fails: unrecognised bytes become punctuation
/// tokens, unterminated literals run to end of file.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.cooked_string(line);
                }
                '\'' => self.char_or_lifetime(line),
                'r' | 'b' if self.literal_prefix(line) => {}
                _ if c.is_ascii_alphabetic() || c == '_' => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c), c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, line });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` and raw
    /// identifiers (`r#match`). Returns false (consuming nothing) when
    /// `r`/`b` starts a plain identifier.
    fn literal_prefix(&mut self, line: u32) -> bool {
        let c = self.peek(0);
        let mut idx = 1; // past the r/b
        let mut raw = false;
        if c == Some('b') {
            match self.peek(idx) {
                Some('\'') => {
                    self.bump(); // b
                    self.bump(); // '
                    self.char_body(line);
                    return true;
                }
                Some('r') => {
                    idx += 1;
                    raw = true;
                }
                _ => {}
            }
        } else {
            raw = true;
        }
        let mut hashes = 0usize;
        while self.peek(idx) == Some('#') {
            idx += 1;
            hashes += 1;
        }
        if raw && self.peek(idx) == Some('"') {
            for _ in 0..=idx {
                self.bump(); // prefix, hashes and opening quote
            }
            self.raw_string(hashes, line);
            return true;
        }
        if !raw && hashes == 0 && self.peek(idx) == Some('"') {
            self.bump(); // b
            self.bump(); // "
            self.cooked_string(line);
            return true;
        }
        // `r#match`: a raw identifier, one code token. The `r#` stays in
        // the text so a raw ident never impersonates the keyword to the
        // item parser — a naive split would emit a stray `r`, `#`, `match`
        // triple and fake a match expression.
        if c == Some('r')
            && hashes == 1
            && self
                .peek(idx)
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        {
            self.bump(); // r
            self.bump(); // #
            let mut text = String::from("r#");
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Ident, text, line);
            return true;
        }
        false
    }

    fn raw_string(&mut self, hashes: usize, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokKind::Str, text, line);
    }

    /// Body of a non-raw string, opening quote already consumed. Cooks
    /// the common escapes so rules see `\n` as a real newline.
    fn cooked_string(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => match self.bump() {
                    Some('n') => text.push('\n'),
                    Some('t') => text.push('\t'),
                    Some('r') => text.push('\r'),
                    Some('0') => text.push('\0'),
                    Some('\\') => text.push('\\'),
                    Some('"') => text.push('"'),
                    Some('\'') => text.push('\''),
                    // \x41 / \u{1F600}: swallow, substitute a placeholder.
                    Some('x') => {
                        self.bump();
                        self.bump();
                        text.push('?');
                    }
                    Some('u') => {
                        while let Some(c) = self.bump() {
                            if c == '}' {
                                break;
                            }
                        }
                        text.push('?');
                    }
                    // Line continuation: swallow the newline and leading
                    // whitespace of the next line.
                    Some('\n') => {
                        while self.peek(0).is_some_and(|c| c.is_whitespace()) {
                            self.bump();
                        }
                    }
                    Some(other) => text.push(other),
                    None => break,
                },
                _ => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a'` / `'\n'` are chars; `'a` (no closing quote) is a lifetime.
        let is_lifetime = self
            .peek(1)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            && self.peek(2) != Some('\'');
        self.bump(); // '
        if is_lifetime {
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
        } else {
            self.char_body(line);
        }
    }

    /// Char-literal body, opening quote consumed.
    fn char_body(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(TokKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.25` but not the range in `1..4`.
                seen_dot = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_idents() {
        let src = r##"
// HashMap in a comment
/* HashMap /* nested */ still comment */
let s = "HashMap in a string";
let r = r#"HashMap raw "quoted" too"#;
let real = HashMap::new();
"##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|i| *i == "HashMap").count(), 1);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn cooked_escapes_and_continuation() {
        let lexed = lex("let h = \"a,b\\n\";\nlet c = \"x,\\\n     y\\n\";");
        let strs: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["a,b\n", "x,y\n"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "x"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let lexed = lex("for i in 1..4 { let f = 2.5; }");
        let nums: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["1", "4", "2.5"]);
    }

    #[test]
    fn raw_identifiers_are_single_tokens() {
        // A raw ident must neither split into `r # match` (faking a match
        // expression to the item parser) nor collapse into the bare
        // keyword.
        let lexed = lex("let r#match = r#type + other;");
        let ids = idents("let r#match = r#type + other;");
        assert_eq!(ids, ["let", "r#match", "r#type", "other"]);
        assert!(!lexed
            .toks
            .iter()
            .any(|t| matches!(t.kind, TokKind::Punct('#'))));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let lexed = lex(r####"let a = r#"quote " hash # done"#; let b = r##"x"# y"##;"####);
        let strs: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["quote \" hash # done", "x\"# y"]);
    }

    #[test]
    fn nested_block_comments_terminate_exactly() {
        // The ident after the comment must survive; the one inside must not.
        let src = "/* outer /* inner /* deep */ still */ done */ after";
        let lexed = lex(src);
        assert_eq!(idents(src), ["after"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("deep"));
    }

    #[test]
    fn lifetime_ticks_vs_char_literals() {
        // `'a` in generics/refs is a lifetime; `'a'`, `'\''`, `b'x'` are
        // chars; `'_'` is a char-shaped token, not an underscore lifetime.
        let src = "fn f<'de>(x: &'de str) { let c = '\\''; let b = b'x'; let u = '_'; }";
        let lexed = lex(src);
        let lifetimes: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'de", "'de"]);
        let chars: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["'", "x", "_"]);
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 3]);
        assert!(lexed.has_code_on_line(2));
        assert!(!lexed.has_code_on_line(4));
    }
}
