//! The per-file fingerprint cache (`target/nvr-lint-cache.json`).
//!
//! Pass 1 (lex + token rules + item parse) is the expensive part of a
//! lint run and is a pure function of one file's bytes. The cache maps
//! each workspace-relative path to an FNV-1a fingerprint of its contents
//! plus the serialized [`FileAnalysis`]; on a warm run an unchanged file
//! costs one read + hash + decode instead of a full re-analysis, while
//! pass 2 (the semantic rules) always re-runs — it is cheap and any file
//! can invalidate its findings.
//!
//! The format is a single JSON document written and parsed by the tiny
//! hand-rolled reader below (std-only, like everything in this crate).
//! [`CACHE_VERSION`] must be bumped whenever the lexer, parser, token
//! rules or the [`FileAnalysis`] encoding change shape — a mismatched or
//! unreadable cache is simply treated as empty, never an error.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::diag::{json_escape, Diagnostic, Rule};
use crate::model::{ConstArray, EnumDef, FileModel, MatchExpr, PathRef, StructDef, UnitOpSite};
use crate::rules::{AllowData, FileAnalysis};

/// Bump on any change to the lexer, the item parser, the token rules or
/// this file's encoding: stale pass-1 results must never survive a
/// `nvr-lint` upgrade.
pub const CACHE_VERSION: u32 = 2;

/// One cached file: content fingerprint plus its pass-1 analysis.
#[derive(Debug, Clone)]
pub struct Entry {
    /// FNV-1a 64-bit hash of the file contents, hex-encoded.
    pub fingerprint: String,
    /// The pass-1 result the fingerprint vouches for.
    pub analysis: FileAnalysis,
}

/// The whole cache: workspace-relative path → entry, sorted (BTreeMap)
/// so the serialized document is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Per-file entries.
    pub entries: BTreeMap<String, Entry>,
}

/// FNV-1a over the file bytes, hex-encoded. Not cryptographic — it only
/// needs to make accidental collisions implausible for source files.
#[must_use]
pub fn fingerprint(src: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in src.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Loads the cache at `path`. Any failure — missing file, parse error,
/// version mismatch — yields an empty cache: correctness never depends
/// on the cache, only wall-clock does.
#[must_use]
pub fn load(path: &Path) -> Cache {
    let Ok(text) = fs::read_to_string(path) else {
        return Cache::default();
    };
    decode(&text).unwrap_or_default()
}

/// Writes the cache to `path`, creating parent directories. Best-effort:
/// the caller treats a failed write as "no cache next run".
pub fn save(path: &Path, cache: &Cache) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, encode(cache))
}

// ---------------------------------------------------------------------
// Encoding. Compact positional arrays: the cache is machine-written and
// machine-read, and a stable shape keeps the decoder trivial.

fn encode(cache: &Cache) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"version\":{CACHE_VERSION},\"files\":{{"));
    for (i, (rel, entry)) in cache.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"fp\":\"{}\",",
            json_escape(rel),
            json_escape(&entry.fingerprint)
        ));
        let a = &entry.analysis;
        out.push_str(&format!(
            "\"findings\":{},\"allows\":{},\"malformed\":{},\"model\":{}}}",
            encode_diags(&a.findings),
            encode_allows(&a.allows),
            encode_diags(&a.malformed),
            encode_model(&a.model)
        ));
    }
    out.push_str("}}\n");
    out
}

fn encode_diags(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "[\"{}\",{},\"{}\"]",
                json_escape(d.rule.name()),
                d.line,
                json_escape(&d.message)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn encode_allows(allows: &[AllowData]) -> String {
    let items: Vec<String> = allows
        .iter()
        .map(|a| {
            format!(
                "[\"{}\",{},{}]",
                json_escape(a.rule.name()),
                a.line,
                u8::from(a.standalone)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn encode_model(m: &FileModel) -> String {
    let enums: Vec<String> = m
        .enums
        .iter()
        .map(|e| {
            format!(
                "[\"{}\",{},{}]",
                json_escape(&e.name),
                e.line,
                encode_named(&e.variants)
            )
        })
        .collect();
    let structs: Vec<String> = m
        .structs
        .iter()
        .map(|s| {
            format!(
                "[\"{}\",{},{}]",
                json_escape(&s.name),
                s.line,
                encode_named(&s.fields)
            )
        })
        .collect();
    let matches: Vec<String> = m
        .matches
        .iter()
        .map(|x| {
            let roots: Vec<String> = x
                .pattern_roots
                .iter()
                .map(|r| format!("\"{}\"", json_escape(r)))
                .collect();
            format!(
                "[{},[{}],{},{}]",
                x.line,
                roots.join(","),
                x.wildcard_line.unwrap_or(0),
                x.arms
            )
        })
        .collect();
    let consts: Vec<String> = m
        .const_arrays
        .iter()
        .map(|c| {
            format!(
                "[\"{}\",{},{}]",
                json_escape(&c.name),
                c.line,
                encode_paths(&c.items)
            )
        })
        .collect();
    let idents: Vec<String> = m
        .idents
        .iter()
        .map(|i| format!("\"{}\"", json_escape(i)))
        .collect();
    let csv: Vec<String> = m
        .csv_headers
        .iter()
        .map(|(text, line)| format!("[\"{}\",{line}]", json_escape(text)))
        .collect();
    let unit_ops: Vec<String> = m
        .unit_ops
        .iter()
        .map(|u| {
            format!(
                "[{},\"{}\",\"{}\"]",
                u.line,
                json_escape(&u.lhs),
                json_escape(&u.rhs)
            )
        })
        .collect();
    let tests: Vec<String> = m
        .test_ranges
        .iter()
        .map(|(a, b)| format!("[{a},{b}]"))
        .collect();
    format!(
        "{{\"path\":\"{}\",\"enums\":[{}],\"structs\":[{}],\"matches\":[{}],\
         \"paths\":{},\"consts\":[{}],\"idents\":[{}],\"csv\":[{}],\
         \"unit_ops\":[{}],\"tests\":[{}]}}",
        json_escape(&m.path),
        enums.join(","),
        structs.join(","),
        matches.join(","),
        encode_paths(&m.paths),
        consts.join(","),
        idents.join(","),
        csv.join(","),
        unit_ops.join(","),
        tests.join(",")
    )
}

fn encode_named(items: &[(String, u32)]) -> String {
    let parts: Vec<String> = items
        .iter()
        .map(|(name, line)| format!("[\"{}\",{line}]", json_escape(name)))
        .collect();
    format!("[{}]", parts.join(","))
}

fn encode_paths(paths: &[PathRef]) -> String {
    let parts: Vec<String> = paths
        .iter()
        .map(|p| {
            format!(
                "[\"{}\",\"{}\",{}]",
                json_escape(&p.root),
                json_escape(&p.name),
                p.line
            )
        })
        .collect();
    format!("[{}]", parts.join(","))
}

// ---------------------------------------------------------------------
// Decoding: a minimal recursive-descent JSON reader over the subset the
// encoder emits (objects, arrays, strings, unsigned integers). Any
// deviation returns None and the whole cache is discarded.

#[derive(Debug)]
enum Val {
    Num(u64),
    Str(String),
    Arr(Vec<Val>),
    Obj(Vec<(String, Val)>),
}

impl Val {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Val> {
        match self {
            Val::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[Val]> {
        match self {
            Val::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    fn num(&self) -> Option<u64> {
        match self {
            Val::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn line(&self) -> Option<u32> {
        self.num().and_then(|n| u32::try_from(n).ok())
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Option<Val> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Val::Str),
            b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<Val> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Val::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Val::Obj(pairs));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Val> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Val::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Val::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            // \u00XX — the escaper only emits control chars.
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                b if *b < 0x80 => {
                    out.push(*b as char);
                    self.pos += 1;
                }
                b => {
                    // Multi-byte UTF-8: the lead byte gives the length.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self.bytes.get(self.pos..self.pos + len)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Option<Val> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
            .map(Val::Num)
    }
}

fn decode(text: &str) -> Option<Cache> {
    let mut reader = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let root = reader.value()?;
    if root.get("version")?.num()? != u64::from(CACHE_VERSION) {
        return None;
    }
    let mut cache = Cache::default();
    let Val::Obj(files) = root.get("files")? else {
        return None;
    };
    for (rel, entry) in files {
        cache.entries.insert(
            rel.clone(),
            Entry {
                fingerprint: entry.get("fp")?.str()?.to_string(),
                analysis: FileAnalysis {
                    findings: decode_diags(entry.get("findings")?, rel)?,
                    allows: decode_allows(entry.get("allows")?)?,
                    malformed: decode_diags(entry.get("malformed")?, rel)?,
                    model: decode_model(entry.get("model")?)?,
                },
            },
        );
    }
    Some(cache)
}

fn decode_diags(val: &Val, rel: &str) -> Option<Vec<Diagnostic>> {
    val.arr()?
        .iter()
        .map(|item| {
            let item = item.arr()?;
            Some(Diagnostic {
                rule: Rule::from_name(item.first()?.str()?)?,
                file: rel.to_string(),
                line: item.get(1)?.line()?,
                message: item.get(2)?.str()?.to_string(),
            })
        })
        .collect()
}

fn decode_allows(val: &Val) -> Option<Vec<AllowData>> {
    val.arr()?
        .iter()
        .map(|item| {
            let item = item.arr()?;
            Some(AllowData {
                rule: Rule::from_name(item.first()?.str()?)?,
                line: item.get(1)?.line()?,
                standalone: item.get(2)?.num()? != 0,
            })
        })
        .collect()
}

fn decode_named(val: &Val) -> Option<Vec<(String, u32)>> {
    val.arr()?
        .iter()
        .map(|item| {
            let item = item.arr()?;
            Some((item.first()?.str()?.to_string(), item.get(1)?.line()?))
        })
        .collect()
}

fn decode_paths(val: &Val) -> Option<Vec<PathRef>> {
    val.arr()?
        .iter()
        .map(|item| {
            let item = item.arr()?;
            Some(PathRef {
                root: item.first()?.str()?.to_string(),
                name: item.get(1)?.str()?.to_string(),
                line: item.get(2)?.line()?,
            })
        })
        .collect()
}

fn decode_model(val: &Val) -> Option<FileModel> {
    let mut model = FileModel {
        path: val.get("path")?.str()?.to_string(),
        ..FileModel::default()
    };
    for item in val.get("enums")?.arr()? {
        let item = item.arr()?;
        model.enums.push(EnumDef {
            name: item.first()?.str()?.to_string(),
            line: item.get(1)?.line()?,
            variants: decode_named(item.get(2)?)?,
        });
    }
    for item in val.get("structs")?.arr()? {
        let item = item.arr()?;
        model.structs.push(StructDef {
            name: item.first()?.str()?.to_string(),
            line: item.get(1)?.line()?,
            fields: decode_named(item.get(2)?)?,
        });
    }
    for item in val.get("matches")?.arr()? {
        let item = item.arr()?;
        let wildcard = item.get(2)?.line()?;
        model.matches.push(MatchExpr {
            line: item.first()?.line()?,
            pattern_roots: item
                .get(1)?
                .arr()?
                .iter()
                .map(|r| r.str().map(str::to_string))
                .collect::<Option<_>>()?,
            wildcard_line: (wildcard != 0).then_some(wildcard),
            arms: item.get(3)?.line()?,
        });
    }
    model.paths = decode_paths(val.get("paths")?)?;
    for item in val.get("consts")?.arr()? {
        let item = item.arr()?;
        model.const_arrays.push(ConstArray {
            name: item.first()?.str()?.to_string(),
            line: item.get(1)?.line()?,
            items: decode_paths(item.get(2)?)?,
        });
    }
    model.idents = val
        .get("idents")?
        .arr()?
        .iter()
        .map(|i| i.str().map(str::to_string))
        .collect::<Option<_>>()?;
    for item in val.get("csv")?.arr()? {
        let item = item.arr()?;
        model
            .csv_headers
            .push((item.first()?.str()?.to_string(), item.get(1)?.line()?));
    }
    for item in val.get("unit_ops")?.arr()? {
        let item = item.arr()?;
        model.unit_ops.push(UnitOpSite {
            line: item.first()?.line()?,
            lhs: item.get(1)?.str()?.to_string(),
            rhs: item.get(2)?.str()?.to_string(),
        });
    }
    for item in val.get("tests")?.arr()? {
        let item = item.arr()?;
        model
            .test_ranges
            .push((item.first()?.line()?, item.get(1)?.line()?));
    }
    Some(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::analyze_source;

    #[test]
    fn fingerprints_differ_and_are_stable() {
        let a = fingerprint("fn a() {}");
        assert_eq!(a, fingerprint("fn a() {}"));
        assert_ne!(a, fingerprint("fn b() {}"));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn analysis_round_trips_through_the_cache_format() {
        let src = "pub enum Kind { A, B }\n\
                   impl Kind { pub const ALL: [Kind; 2] = [Kind::A, Kind::B]; }\n\
                   pub struct NvrConfig { pub vector_width: u32 }\n\
                   // nvr-lint: allow(determinism/wall-clock) reason=\"test\"\n\
                   fn f(k: Kind, a_cycles: u64, b_bytes: u64) -> u64 {\n\
                   let h = \"tile,cycles\\n\";\n\
                   match k { Kind::A => a_cycles + b_bytes, _ => 0 }\n}\n\
                   #[cfg(test)]\nmod tests { use std::collections::HashMap;\n}\n";
        let analysis = analyze_source("crates/core/src/x.rs", src);
        let mut cache = Cache::default();
        cache.entries.insert(
            "crates/core/src/x.rs".to_string(),
            Entry {
                fingerprint: fingerprint(src),
                analysis: analysis.clone(),
            },
        );
        let decoded = decode(&encode(&cache)).expect("round trip");
        let back = &decoded.entries["crates/core/src/x.rs"];
        assert_eq!(back.fingerprint, fingerprint(src));
        let (a, b) = (&analysis, &back.analysis);
        assert_eq!(a.model, b.model);
        assert_eq!(a.allows.len(), b.allows.len());
        assert_eq!(a.findings.len(), b.findings.len());
        for (x, y) in a.findings.iter().zip(&b.findings) {
            assert_eq!((x.rule, x.line, &x.message), (y.rule, y.line, &y.message));
        }
    }

    #[test]
    fn version_mismatch_discards_cache() {
        let text = format!("{{\"version\":{},\"files\":{{}}}}", CACHE_VERSION + 1);
        assert!(decode(&text).is_none());
        assert!(decode("not json").is_none());
    }

    #[test]
    fn load_of_missing_file_is_empty() {
        let cache = load(Path::new("/nonexistent/nvr-lint-cache.json"));
        assert!(cache.entries.is_empty());
    }
}
