//! The item-level parser: one linear scan over a file's token stream
//! producing a [`FileModel`].
//!
//! This is deliberately not a Rust parser. It recognises exactly the
//! item shapes the semantic rules query — `enum` definitions, braced
//! `struct` definitions with `pub` fields, `match` expressions with
//! their arm patterns, `const … = [ … ];` registry tables, and
//! `Root::Name` path references — by bracket-depth counting, and skips
//! everything else. The workspace is rustfmt-clean 2021-edition code;
//! the fixtures in `tests/` pin every shape the rules depend on, and the
//! lexer guarantees comments/strings/raw identifiers can never fake a
//! keyword to this pass.

use std::collections::BTreeSet;

use crate::lexer::{Lexed, Tok, TokKind};
use crate::model::{ConstArray, EnumDef, FileModel, MatchExpr, PathRef, StructDef, UnitOpSite};

/// The unit vocabulary of the `units/suffix-mix` rule.
const UNIT_SUFFIXES: [&str; 4] = ["_cycles", "_ns", "_bytes", "_lines"];

/// The unit suffix an identifier carries, if any.
#[must_use]
pub fn unit_suffix(name: &str) -> Option<&'static str> {
    UNIT_SUFFIXES.iter().copied().find(|s| name.ends_with(s))
}

/// Parses one lexed file into its [`FileModel`]. Never fails: malformed
/// shapes are skipped, not reported — the compiler owns syntax errors.
#[must_use]
pub fn parse_file(rel: &str, lexed: &Lexed) -> FileModel {
    let toks = &lexed.toks;
    let mut model = FileModel {
        path: rel.to_string(),
        test_ranges: crate::rules::cfg_test_lines(lexed),
        ..FileModel::default()
    };

    for (i, tok) in toks.iter().enumerate() {
        match tok.kind {
            TokKind::Ident => {
                model.idents.insert(tok.text.clone());
            }
            TokKind::Str => {
                if looks_like_csv_header(&tok.text) {
                    model.csv_headers.push((tok.text.clone(), tok.line));
                }
                continue;
            }
            _ => continue,
        }

        // `Root::Name` with an uppercase-initial root: enum variants,
        // associated consts, unit structs — the reference graph the
        // registry rules walk.
        if starts_upper(&tok.text)
            && is_punct(toks.get(i + 1), ':')
            && is_punct(toks.get(i + 2), ':')
            && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident)
        {
            model.paths.push(PathRef {
                root: tok.text.clone(),
                name: toks[i + 3].text.clone(),
                line: tok.line,
            });
        }

        // `lhs ± rhs` between identifiers. `->`, `+=`, `-=` and unary
        // minus all fail the Ident-operator-Ident shape on their own.
        if let Some(op) = toks.get(i + 1) {
            if matches!(op.kind, TokKind::Punct('+') | TokKind::Punct('-'))
                && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
            {
                // The right operand may be a dotted chain
                // (`self.cfg.latency_ns`); its unit lives on the last
                // segment. The left operand's last segment is `tok`
                // already — the lexer hands segments one at a time.
                let mut j = i + 2;
                while is_punct(toks.get(j + 1), '.')
                    && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    j += 2;
                }
                if unit_suffix(&tok.text).is_some() && unit_suffix(&toks[j].text).is_some() {
                    model.unit_ops.push(UnitOpSite {
                        line: op.line,
                        lhs: tok.text.clone(),
                        rhs: toks[j].text.clone(),
                    });
                }
            }
        }

        // Item keywords. The scan resumes at i + 1 in every case, so a
        // `match` nested inside an arm body is found on its own.
        match tok.text.as_str() {
            "enum" => {
                if let Some(def) = parse_enum(toks, i) {
                    model.enums.push(def);
                }
            }
            "struct" => {
                if let Some(def) = parse_struct(toks, i) {
                    model.structs.push(def);
                }
            }
            "const" => {
                if let Some(def) = parse_const_array(toks, i) {
                    model.const_arrays.push(def);
                }
            }
            "match" => {
                if let Some(m) = parse_match(toks, i) {
                    model.matches.push(m);
                }
            }
            _ => {}
        }
    }
    model
}

fn is_punct(tok: Option<&Tok>, c: char) -> bool {
    tok.is_some_and(|t| t.kind == TokKind::Punct(c))
}

fn punct_of(tok: &Tok) -> Option<char> {
    match tok.kind {
        TokKind::Punct(c) => Some(c),
        _ => None,
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// A string literal shaped like a CSV header: ends in a newline, carries
/// no format placeholders, and every comma-separated segment is an
/// identifier-shaped column name (≥ 2 of them).
fn looks_like_csv_header(text: &str) -> bool {
    if !text.ends_with('\n') || text.contains('{') || text.contains('}') {
        return false;
    }
    let body = text.trim_end_matches('\n');
    if body.contains('\n') {
        return false;
    }
    let segments: Vec<&str> = body.split(',').collect();
    if segments.len() < 2 {
        return false;
    }
    segments.iter().all(|s| {
        let s = s.trim();
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    })
}

/// `enum Name { Variant, Variant(T), Variant { .. } }` starting at the
/// `enum` keyword. Variant payloads push bracket depth, so their field
/// idents are never mistaken for variants.
fn parse_enum(toks: &[Tok], kw: usize) -> Option<EnumDef> {
    let name = toks.get(kw + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    // Find the body brace; a `;` or `=` first means this was not an enum
    // definition after all (`enum` cannot appear elsewhere, but stay safe).
    let mut j = kw + 2;
    loop {
        match toks.get(j).and_then(punct_of) {
            Some('{') => break,
            Some(';') | Some('=') | None => return None,
            _ => j += 1,
        }
    }
    let mut def = EnumDef {
        name: name.text.clone(),
        line: toks[kw].line,
        variants: Vec::new(),
    };
    let mut depth = 0i64;
    let mut expect_variant = false;
    while let Some(tok) = toks.get(j) {
        match punct_of(tok) {
            Some('{') => {
                depth += 1;
                if depth == 1 {
                    expect_variant = true;
                }
            }
            Some('}') => {
                depth -= 1;
                if depth <= 0 {
                    break;
                }
            }
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some(',') if depth == 1 => expect_variant = true,
            // `#[...]` attribute on a variant: skip it whole so `doc`,
            // `must_use` etc. are not read as variant names.
            Some('#') if depth == 1 && is_punct(toks.get(j + 1), '[') => {
                let mut attr_depth = 0i64;
                j += 1;
                while let Some(t) = toks.get(j) {
                    match punct_of(t) {
                        Some('[') => attr_depth += 1,
                        Some(']') => {
                            attr_depth -= 1;
                            if attr_depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // Explicit discriminants (`Variant = 3`) never re-arm.
            Some('=') if depth == 1 => expect_variant = false,
            None if tok.kind == TokKind::Ident && depth == 1 && expect_variant => {
                def.variants.push((tok.text.clone(), tok.line));
                expect_variant = false;
            }
            _ => {}
        }
        j += 1;
    }
    Some(def)
}

/// `struct Name { pub field: T, … }` starting at the `struct` keyword.
/// Tuple and unit structs have no named fields and are skipped.
fn parse_struct(toks: &[Tok], kw: usize) -> Option<StructDef> {
    let name = toks.get(kw + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    let mut j = kw + 2;
    loop {
        match toks.get(j).and_then(punct_of) {
            Some('{') => break,
            // `struct Unit;` / `struct Tuple(T);` — nothing to index.
            Some(';') | Some('(') | None => return None,
            _ => j += 1,
        }
    }
    let mut def = StructDef {
        name: name.text.clone(),
        line: toks[kw].line,
        fields: Vec::new(),
    };
    let mut depth = 0i64;
    while let Some(tok) = toks.get(j) {
        match punct_of(tok) {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth <= 0 {
                    break;
                }
            }
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            None if tok.kind == TokKind::Ident && tok.text == "pub" && depth == 1 => {
                // `pub` / `pub(crate)` / `pub(super)` field visibility.
                let mut k = j + 1;
                if is_punct(toks.get(k), '(') {
                    while toks.get(k).is_some() && !is_punct(toks.get(k), ')') {
                        k += 1;
                    }
                    k += 1;
                }
                // Field name: an identifier followed by a single `:`
                // (a `::` here would be a path in an expression).
                if let Some(field) = toks.get(k) {
                    if field.kind == TokKind::Ident
                        && is_punct(toks.get(k + 1), ':')
                        && !is_punct(toks.get(k + 2), ':')
                    {
                        def.fields.push((field.text.clone(), field.line));
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    Some(def)
}

/// `const NAME: [T; n] = [ Root::Item, … ];` starting at the `const`
/// keyword — the registry-table shape. Consts whose initialiser is not
/// an array literal return `None`.
fn parse_const_array(toks: &[Tok], kw: usize) -> Option<ConstArray> {
    // `*const T` raw-pointer types share the keyword; the `*` gives
    // them away. `const fn` has a keyword, not a name, in position 1.
    if kw > 0 && punct_of(&toks[kw - 1]) == Some('*') {
        return None;
    }
    let name = toks.get(kw + 1)?;
    if name.kind != TokKind::Ident || name.text == "fn" {
        return None;
    }
    if !is_punct(toks.get(kw + 2), ':') || is_punct(toks.get(kw + 3), ':') {
        return None;
    }
    // Scan the type for the `=` at bracket depth 0. `[T; n]` array types
    // nest a `;`, so depth matters; a bare `;`, `,`, `>` or `{` at depth
    // 0 means there is no array initialiser here (plain const, const
    // generic parameter, trait bound).
    let mut j = kw + 3;
    let mut depth = 0i64;
    loop {
        let tok = toks.get(j)?;
        match punct_of(tok) {
            Some('[') | Some('(') => depth += 1,
            Some(']') | Some(')') => depth -= 1,
            Some('=') if depth == 0 => break,
            Some(';') | Some(',') | Some('>') | Some('{') if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    if !is_punct(toks.get(j + 1), '[') {
        return None;
    }
    let mut def = ConstArray {
        name: name.text.clone(),
        line: toks[kw].line,
        items: Vec::new(),
    };
    let mut k = j + 1;
    let mut depth = 0i64;
    while let Some(tok) = toks.get(k) {
        match punct_of(tok) {
            Some('[') | Some('(') | Some('{') => depth += 1,
            Some(']') | Some(')') | Some('}') => {
                depth -= 1;
                if depth <= 0 {
                    break;
                }
            }
            None if tok.kind == TokKind::Ident
                && starts_upper(&tok.text)
                && is_punct(toks.get(k + 1), ':')
                && is_punct(toks.get(k + 2), ':')
                && toks.get(k + 3).is_some_and(|t| t.kind == TokKind::Ident) =>
            {
                def.items.push(PathRef {
                    root: tok.text.clone(),
                    name: toks[k + 3].text.clone(),
                    line: tok.line,
                });
                k += 3;
            }
            _ => {}
        }
        k += 1;
    }
    Some(def)
}

/// `match scrutinee { pat [if guard] => body, … }` starting at the
/// `match` keyword. Records arm-pattern path roots (guards excluded) and
/// whether a bare `_` catch-all arm exists.
fn parse_match(toks: &[Tok], kw: usize) -> Option<MatchExpr> {
    // Body brace: first `{` at paren/bracket depth 0 after the
    // scrutinee (struct literals are not legal in scrutinee position
    // without parens, so this is exact).
    let mut j = kw + 1;
    let mut depth = 0i64;
    loop {
        let tok = toks.get(j)?;
        match punct_of(tok) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some('{') if depth == 0 => break,
            Some(';') if depth == 0 => return None,
            Some('}') if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    let mut m = MatchExpr {
        line: toks[kw].line,
        pattern_roots: BTreeSet::new(),
        wildcard_line: None,
        arms: 0,
    };
    j += 1; // into the body
    'arms: loop {
        // Skip arm attributes (`#[cfg(...)] Pat => ...`).
        while is_punct(toks.get(j), '#') && is_punct(toks.get(j + 1), '[') {
            let mut attr_depth = 0i64;
            j += 1;
            while let Some(t) = toks.get(j) {
                match punct_of(t) {
                    Some('[') => attr_depth += 1,
                    Some(']') => {
                        attr_depth -= 1;
                        if attr_depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
        }
        match toks.get(j) {
            None => break,
            Some(t) if punct_of(t) == Some('}') => break, // body close
            _ => {}
        }
        // Pattern: tokens up to a top-level `if` (guard) or `=>`.
        let pat_start = j;
        let mut depth = 0i64;
        loop {
            let Some(tok) = toks.get(j) else { break 'arms };
            match punct_of(tok) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('}') => {
                    depth -= 1;
                    if depth < 0 {
                        break 'arms; // malformed: ran into the body close
                    }
                }
                Some('=') if depth == 0 && is_punct(toks.get(j + 1), '>') => break,
                None if tok.kind == TokKind::Ident && tok.text == "if" && depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let pat_end = j;
        let guarded = toks.get(j).is_some_and(|t| t.text == "if");
        if guarded {
            // Swallow the guard expression up to its `=>`.
            let mut depth = 0i64;
            loop {
                let Some(tok) = toks.get(j) else { break 'arms };
                match punct_of(tok) {
                    Some('(') | Some('[') | Some('{') => depth += 1,
                    Some(')') | Some(']') | Some('}') => depth -= 1,
                    Some('=') if depth == 0 && is_punct(toks.get(j + 1), '>') => break,
                    _ => {}
                }
                j += 1;
            }
        }
        // Trailing `|` alternation leaves pat_end right; a leading `|`
        // (or-pattern sugar) is harmless to the checks below.
        if pat_end == pat_start {
            break; // empty pattern: malformed
        }
        m.arms += 1;
        let pattern = &toks[pat_start..pat_end];
        if !guarded && pattern.len() == 1 && pattern[0].text == "_" {
            m.wildcard_line.get_or_insert(pattern[0].line);
        }
        for (p, tok) in pattern.iter().enumerate() {
            if tok.kind == TokKind::Ident
                && starts_upper(&tok.text)
                && is_punct(pattern.get(p + 1), ':')
                && is_punct(pattern.get(p + 2), ':')
            {
                m.pattern_roots.insert(tok.text.clone());
            }
        }
        // Past the `=>`.
        j += 2;
        // Arm body: braced bodies end at their matching `}`; braceless
        // bodies end at a top-level `,` or at the match's closing `}`.
        if is_punct(toks.get(j), '{') {
            let mut depth = 0i64;
            while let Some(tok) = toks.get(j) {
                match punct_of(tok) {
                    Some('{') | Some('(') | Some('[') => depth += 1,
                    Some('}') | Some(')') | Some(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
            if is_punct(toks.get(j), ',') {
                j += 1;
            }
        } else {
            let mut depth = 0i64;
            loop {
                let Some(tok) = toks.get(j) else { break 'arms };
                match punct_of(tok) {
                    Some('(') | Some('[') | Some('{') => depth += 1,
                    Some(')') | Some(']') => depth -= 1,
                    Some('}') => {
                        if depth == 0 {
                            break; // match body close; outer loop sees it
                        }
                        depth -= 1;
                    }
                    Some(',') if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileModel {
        parse_file("crates/core/src/x.rs", &lex(src))
    }

    #[test]
    fn enum_variants_with_payloads_and_attrs() {
        let m = parse(
            "pub enum Kind {\n  #[doc = \"x\"]\n  Plain,\n  Tuple(u32, u64),\n  \
             Struct { a: u32 },\n  Last,\n}\n",
        );
        assert_eq!(m.enums.len(), 1);
        let names: Vec<&str> = m.enums[0]
            .variants
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, ["Plain", "Tuple", "Struct", "Last"]);
    }

    #[test]
    fn struct_pub_fields_only() {
        let m = parse(
            "pub struct Cfg {\n  pub width: u32,\n  pub(crate) inner: u64,\n  \
             private: bool,\n  pub nested: Vec<(u32, u32)>,\n}\n",
        );
        assert_eq!(m.structs.len(), 1);
        let names: Vec<&str> = m.structs[0]
            .fields
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, ["width", "inner", "nested"]);
    }

    #[test]
    fn tuple_and_unit_structs_are_skipped() {
        let m = parse("struct Unit;\nstruct Tuple(u32);\nstruct Real { pub a: u32 }\n");
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].name, "Real");
    }

    #[test]
    fn const_array_items_collected() {
        let m = parse(
            "pub const ALL: [Kind; 2] = [Kind::A, Kind::B];\n\
             pub const N: usize = 3;\nfn f(x: *const u8) {}\n",
        );
        assert_eq!(m.const_arrays.len(), 1);
        assert_eq!(m.const_arrays[0].name, "ALL");
        let items: Vec<&str> = m.const_arrays[0]
            .items
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(items, ["A", "B"]);
    }

    #[test]
    fn match_wildcard_and_roots() {
        let m = parse(
            "fn f(k: Kind) -> u32 {\n  match k {\n    Kind::A => 1,\n    \
             Kind::B if cond() => { nested(); 2 }\n    _ => 0,\n  }\n}\n",
        );
        assert_eq!(m.matches.len(), 1);
        let mx = &m.matches[0];
        assert_eq!(mx.arms, 3);
        assert!(mx.pattern_roots.contains("Kind"));
        assert_eq!(mx.wildcard_line, Some(5));
    }

    #[test]
    fn guard_paths_are_not_pattern_roots() {
        let m = parse(
            "fn f(k: Kind) -> u32 {\n  match k {\n    x if x == Other::Y => 1,\n    _ => 0,\n  }\n}\n",
        );
        let mx = &m.matches[0];
        assert!(mx.pattern_roots.is_empty());
        assert_eq!(mx.arms, 2);
        assert!(mx.wildcard_line.is_some());
    }

    #[test]
    fn guarded_underscore_is_not_a_catch_all() {
        let m = parse("fn f(k: u32) -> u32 { match k { _ if k > 3 => 1, _ => 0 } }\n");
        let mx = &m.matches[0];
        assert_eq!(mx.arms, 2);
        // The *unguarded* `_` is the recorded catch-all.
        assert_eq!(mx.wildcard_line, Some(1));
    }

    #[test]
    fn nested_matches_are_both_found() {
        let m = parse(
            "fn f(a: Kind, b: Kind) -> u32 {\n  match a {\n    Kind::A => match b {\n      \
             Kind::B => 1,\n      _ => 2,\n    },\n    _ => 0,\n  }\n}\n",
        );
        assert_eq!(m.matches.len(), 2);
        assert!(m.matches.iter().all(|mx| mx.wildcard_line.is_some()));
    }

    #[test]
    fn struct_literal_in_braceless_arm_body() {
        let m = parse(
            "fn f(k: Kind) -> Cfg {\n  match k {\n    Kind::A => Cfg { a: 1, b: 2 },\n    \
             Kind::B => other(),\n  }\n}\n",
        );
        let mx = &m.matches[0];
        assert_eq!(mx.arms, 2);
        assert_eq!(mx.wildcard_line, None);
    }

    #[test]
    fn csv_headers_and_unit_ops() {
        let m = parse(
            "fn f() {\n  let h = \"tile,cycles\\n\";\n  let not = \"a b c\";\n  \
             let x = total_cycles + row_bytes;\n  let y = a_cycles - b_cycles;\n  \
             let z = lat_ns + self.cfg.dram_cycles;\n}\n",
        );
        assert_eq!(m.csv_headers.len(), 1);
        assert_eq!(m.csv_headers[0].0, "tile,cycles\n");
        let pairs: Vec<(&str, &str)> = m
            .unit_ops
            .iter()
            .map(|u| (u.lhs.as_str(), u.rhs.as_str()))
            .collect();
        assert_eq!(
            pairs,
            [
                ("total_cycles", "row_bytes"),
                ("a_cycles", "b_cycles"),
                ("lat_ns", "dram_cycles")
            ]
        );
    }

    #[test]
    fn path_refs_and_idents_indexed() {
        let m = parse("use crate::x::Kind;\nfn f() { let k = Kind::A; std::mem::drop(k); }\n");
        assert!(m.paths.iter().any(|p| p.root == "Kind" && p.name == "A"));
        // Lowercase roots (module paths) are not reference-graph edges.
        assert!(!m.paths.iter().any(|p| p.root == "std"));
        assert!(m.idents.contains("drop"));
    }

    #[test]
    fn cfg_test_ranges_recorded() {
        let m = parse("fn f() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\n");
        assert_eq!(m.test_ranges.len(), 1);
        assert!(m.in_test_code(4));
        assert!(!m.in_test_code(1));
    }
}
