//! The `nvr-lint` CLI.
//!
//! ```sh
//! cargo run -p nvr_lint                     # lint the workspace, text output
//! cargo run -p nvr_lint -- --format json    # machine-readable report on stdout
//! cargo run -p nvr_lint -- --out lint.json  # also write the JSON report to a file
//! cargo run -p nvr_lint -- --list-rules     # print the rule catalogue
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use nvr_lint::{find_workspace_root, lint_workspace, Rule};

struct Args {
    format_json: bool,
    out: Option<PathBuf>,
    root: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        format_json: false,
        out: None,
        root: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().as_deref() {
                Some("json") => args.format_json = true,
                Some("text") => args.format_json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--out" => {
                args.out = Some(PathBuf::from(it.next().ok_or("--out expects a path")?));
            }
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root expects a path")?));
            }
            "--list-rules" => args.list_rules = true,
            "-h" | "--help" => {
                println!(
                    "nvr-lint: workspace determinism & invariant checks\n\n\
                     USAGE: nvr-lint [--format text|json] [--out PATH] [--root PATH] [--list-rules]\n\n\
                     Exit codes: 0 clean, 1 violations, 2 usage/I/O error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("nvr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in Rule::ALL {
            println!("{:32} {}", rule.name(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    let root = args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    });
    let Some(root) = root else {
        eprintln!("nvr-lint: no workspace root found (pass --root)");
        return ExitCode::from(2);
    };
    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("nvr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            eprintln!("nvr-lint: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    if args.format_json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "nvr-lint: {} file(s) checked, {} violation(s)",
            report.files_checked,
            report.diagnostics.len()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
