//! The `nvr-lint` CLI.
//!
//! ```sh
//! cargo run -p nvr_lint                     # two-pass workspace lint, text output
//! cargo run -p nvr_lint -- --format json    # machine-readable report on stdout
//! cargo run -p nvr_lint -- --out lint.json  # also write the JSON report to a file
//! cargo run -p nvr_lint -- --list-rules     # print the rule catalogue
//! cargo run -p nvr_lint -- --rule registry/wildcard-arm   # one rule only
//! cargo run -p nvr_lint -- --explain config/dead-knob     # rule rationale
//! cargo run -p nvr_lint -- --no-cache       # force a cold pass-1
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error. The
//! pass-1 cache lives at `target/nvr-lint-cache.json` under the
//! workspace root unless `--cache PATH` / `--no-cache` says otherwise; a
//! timing line with the cache hit count goes to stderr so CI logs show
//! cold-vs-warm wall-clock.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use nvr_lint::{find_workspace_root, lint_workspace_with, LintOptions, Rule};

struct Args {
    format_json: bool,
    out: Option<PathBuf>,
    root: Option<PathBuf>,
    list_rules: bool,
    rule: Option<Rule>,
    explain: Option<Rule>,
    cache: Option<PathBuf>,
    no_cache: bool,
}

fn rule_by_name(name: &str) -> Result<Rule, String> {
    Rule::from_name(name).ok_or_else(|| {
        format!("unknown rule `{name}` (run `nvr-lint --list-rules` for the catalogue)")
    })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        format_json: false,
        out: None,
        root: None,
        list_rules: false,
        rule: None,
        explain: None,
        cache: None,
        no_cache: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().as_deref() {
                Some("json") => args.format_json = true,
                Some("text") => args.format_json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--out" => {
                args.out = Some(PathBuf::from(it.next().ok_or("--out expects a path")?));
            }
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root expects a path")?));
            }
            "--rule" => {
                let name = it.next().ok_or("--rule expects a rule name")?;
                args.rule = Some(rule_by_name(&name)?);
            }
            "--explain" => {
                let name = it.next().ok_or("--explain expects a rule name")?;
                args.explain = Some(rule_by_name(&name)?);
            }
            "--cache" => {
                args.cache = Some(PathBuf::from(it.next().ok_or("--cache expects a path")?));
            }
            "--no-cache" => args.no_cache = true,
            "--list-rules" => args.list_rules = true,
            "-h" | "--help" => {
                println!(
                    "nvr-lint: workspace determinism & invariant checks\n\n\
                     USAGE: nvr-lint [--format text|json] [--out PATH] [--root PATH]\n\
                     \x20               [--rule NAME] [--explain NAME] [--list-rules]\n\
                     \x20               [--cache PATH] [--no-cache]\n\n\
                     Exit codes: 0 clean, 1 violations, 2 usage/I/O error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("nvr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in Rule::ALL {
            println!("{:32} {}", rule.name(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    if let Some(rule) = args.explain {
        println!(
            "{}\n  {}\n\n{}",
            rule.name(),
            rule.describe(),
            rule.explain()
        );
        return ExitCode::SUCCESS;
    }
    let root = args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    });
    let Some(root) = root else {
        eprintln!("nvr-lint: no workspace root found (pass --root)");
        return ExitCode::from(2);
    };
    let opts = LintOptions {
        cache_path: if args.no_cache {
            None
        } else {
            Some(
                args.cache
                    .unwrap_or_else(|| root.join("target/nvr-lint-cache.json")),
            )
        },
        rule: args.rule,
    };
    // Timing telemetry only: the measured duration is printed to stderr
    // and never feeds a result.
    // nvr-lint: allow(determinism/wall-clock) reason="CLI wall-clock telemetry for the CI cold-vs-warm cache line; stderr only"
    let started = Instant::now();
    let report = match lint_workspace_with(&root, &opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("nvr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "nvr-lint: pass 1+2 over {} file(s) ({} cached) in {elapsed_ms:.1} ms",
        report.files_checked, report.files_cached
    );
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            eprintln!("nvr-lint: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    if args.format_json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "nvr-lint: {} file(s) checked, {} violation(s)",
            report.files_checked,
            report.diagnostics.len()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
