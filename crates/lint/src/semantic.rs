//! Pass 2: the cross-file semantic rules over the [`WorkspaceModel`].
//!
//! Everything here is a pure query against the model built by pass 1 —
//! no file IO, no lexing. The engine resolves `allow(...)` suppressions
//! *after* this pass, so a semantic finding in a `.rs` file is
//! suppressible exactly like a token-rule finding. Findings in the two
//! documentation files (`README.md`, `docs/ARCHITECTURE.md`) cannot
//! carry allows; the fix is always to update the doc.

use crate::diag::{Diagnostic, Rule};
use crate::model::WorkspaceModel;
use crate::parser::unit_suffix;

/// The registry enums and whether their variants must be referenced
/// outside the defining file. `FigureId` is dispatched through its `ALL`
/// table alone (the sweep driver iterates it), so only table membership
/// is checked for it; `SystemKind`/`WorkloadId` additionally fan out to
/// hand-written dispatch surfaces (runner config, CLI parsers, figure
/// drivers) that must each name the variant.
const REGISTRY_ENUMS: [(&str, bool); 3] = [
    ("SystemKind", true),
    ("WorkloadId", true),
    ("FigureId", false),
];

/// Crates whose numeric outputs land in figures/CSVs — the scope of the
/// wildcard-arm rule (mirrors the token rules' RESULT_CRATES).
const RESULT_CRATES: [&str; 4] = [
    "crates/core/",
    "crates/mem/",
    "crates/sim/",
    "crates/workloads/",
];

/// Config structs whose pub fields the dead-knob rule audits.
const CONFIG_STRUCTS: [&str; 5] = [
    "NvrConfig",
    "CacheConfig",
    "DramConfig",
    "MemoryConfig",
    "NpuConfig",
];

/// Runs every semantic rule. `docs` holds the rendered documentation
/// files as `(workspace-relative path, contents)` pairs.
#[must_use]
pub fn run(model: &WorkspaceModel, docs: &[(String, String)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_variant_drift(model, &mut diags);
    check_wildcard_arms(model, &mut diags);
    check_dead_knobs(model, &mut diags);
    check_csv_docs(model, docs, &mut diags);
    check_suffix_mix(model, &mut diags);
    diags
}

/// `registry/variant-drift`: every variant of a registry enum must be in
/// the `ALL` table of its defining file, and (for the dispatched enums)
/// referenced as `Enum::Variant` in at least one other file.
fn check_variant_drift(model: &WorkspaceModel, diags: &mut Vec<Diagnostic>) {
    for (enum_name, external) in REGISTRY_ENUMS {
        for (file, def) in model.enum_defs(enum_name) {
            let table = file
                .const_arrays
                .iter()
                .find(|c| c.name == "ALL" && c.items.iter().any(|p| p.root == enum_name));
            let Some(table) = table else {
                diags.push(Diagnostic {
                    rule: Rule::VariantDrift,
                    file: file.path.clone(),
                    line: def.line,
                    message: format!(
                        "registry enum `{enum_name}` has no `ALL` table in its defining \
                         file; sweeps iterate ALL, so without it no variant runs"
                    ),
                });
                continue;
            };
            for (variant, line) in &def.variants {
                if !table.items.iter().any(|p| p.name == *variant) {
                    diags.push(Diagnostic {
                        rule: Rule::VariantDrift,
                        file: file.path.clone(),
                        line: *line,
                        message: format!(
                            "`{enum_name}::{variant}` is missing from the `ALL` table \
                             (line {}); it will silently never run in any sweep",
                            table.line
                        ),
                    });
                }
                if external && !model.path_used_outside(enum_name, variant, &file.path) {
                    diags.push(Diagnostic {
                        rule: Rule::VariantDrift,
                        file: file.path.clone(),
                        line: *line,
                        message: format!(
                            "`{enum_name}::{variant}` is never referenced outside its \
                             defining file — no dispatch surface (runner, sweep \
                             tables, CLI, figures) names it"
                        ),
                    });
                }
            }
        }
    }
}

/// `registry/wildcard-arm`: a `match` over a registry enum inside a
/// result-producing crate must enumerate every variant — a `_` arm turns
/// the next variant addition into silent behaviour instead of a compile
/// error.
fn check_wildcard_arms(model: &WorkspaceModel, diags: &mut Vec<Diagnostic>) {
    for file in &model.files {
        if !RESULT_CRATES.iter().any(|c| file.path.starts_with(c)) {
            continue;
        }
        for m in &file.matches {
            let Some(wildcard_line) = m.wildcard_line else {
                continue;
            };
            if file.in_test_code(m.line) {
                continue;
            }
            let Some((enum_name, _)) = REGISTRY_ENUMS
                .iter()
                .find(|(name, _)| m.pattern_roots.contains(*name))
            else {
                continue;
            };
            diags.push(Diagnostic {
                rule: Rule::WildcardArm,
                file: file.path.clone(),
                line: wildcard_line,
                message: format!(
                    "`_` arm in a match over `{enum_name}` (match on line {}): \
                     enumerate the variants so a new one fails to compile instead \
                     of inheriting this arm",
                    m.line
                ),
            });
        }
    }
}

/// `config/dead-knob`: each pub field on a config struct must be read in
/// at least one file other than the one defining the struct; otherwise
/// sweeps can vary it and plots caption it while the model ignores it.
fn check_dead_knobs(model: &WorkspaceModel, diags: &mut Vec<Diagnostic>) {
    for file in &model.files {
        for def in &file.structs {
            if !CONFIG_STRUCTS.contains(&def.name.as_str()) {
                continue;
            }
            for (field, line) in &def.fields {
                if !model.ident_used_outside(field, &file.path) {
                    diags.push(Diagnostic {
                        rule: Rule::DeadKnob,
                        file: file.path.clone(),
                        line: *line,
                        message: format!(
                            "config knob `{}::{field}` is never read outside {}; \
                             wire it into the model or delete it",
                            def.name, file.path
                        ),
                    });
                }
            }
        }
    }
}

/// `csv/cross-file-schema`: backticked snake_case column names in the
/// documentation must exist in some writer's CSV header (comma lists) or
/// at least as a workspace identifier (single names) — catching the
/// rename-in-code-only drift the per-file `csv/schema-sync` cannot see.
fn check_csv_docs(model: &WorkspaceModel, docs: &[(String, String)], diags: &mut Vec<Diagnostic>) {
    let columns = model.csv_columns();
    let known_ident =
        |name: &str| columns.contains(name) || model.files.iter().any(|f| f.idents.contains(name));
    for (path, text) in docs {
        let mut in_fence = false;
        for (i, raw_line) in text.lines().enumerate() {
            let line_no = (i + 1) as u32;
            if raw_line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for span in backtick_spans(raw_line) {
                if let Some(cols) = doc_column_list(span) {
                    for col in cols {
                        if !columns.contains(col) {
                            diags.push(Diagnostic {
                                rule: Rule::CsvCrossFile,
                                file: path.clone(),
                                line: line_no,
                                message: format!(
                                    "documented CSV column `{col}` matches no writer \
                                     header in the workspace; the docs have drifted \
                                     from the CSV writers"
                                ),
                            });
                        }
                    }
                } else if is_doc_ident(span) && !known_ident(span) {
                    diags.push(Diagnostic {
                        rule: Rule::CsvCrossFile,
                        file: path.clone(),
                        line: line_no,
                        message: format!(
                            "documented name `{span}` matches no CSV column or \
                             workspace identifier; it was probably renamed in code"
                        ),
                    });
                }
            }
        }
    }
}

/// The contents of inline `` `code` `` spans on one markdown line.
fn backtick_spans(line: &str) -> Vec<&str> {
    line.split('`').skip(1).step_by(2).collect()
}

/// `Some(columns)` when the span is a comma-separated list of ≥ 2
/// lowercase snake_case names (at least one with an underscore) — the
/// shape of a documented CSV column list, and nothing prose-like.
fn doc_column_list(span: &str) -> Option<Vec<&str>> {
    let cols: Vec<&str> = span.split(',').map(str::trim).collect();
    if cols.len() < 2 || !cols.iter().all(|c| is_doc_ident(c)) {
        return None;
    }
    cols.iter().any(|c| c.contains('_')).then_some(cols)
}

/// A lowercase snake_case identifier with an underscore — specific
/// enough that prose, CLI flags, paths and type names in backticks are
/// never mistaken for column references.
fn is_doc_ident(s: &str) -> bool {
    s.contains('_')
        && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// `units/suffix-mix`: `a_cycles + b_bytes` style arithmetic, unless a
/// named conversion (`*_per_*`, `to_*`, `from_*`) sits on either side.
fn check_suffix_mix(model: &WorkspaceModel, diags: &mut Vec<Diagnostic>) {
    let is_conversion = |name: &str| {
        name.contains("per_")
            || name.starts_with("to_")
            || name.starts_with("from_")
            || name.contains("_to_")
            || name.contains("_from_")
    };
    for file in &model.files {
        for op in &file.unit_ops {
            let (Some(lu), Some(ru)) = (unit_suffix(&op.lhs), unit_suffix(&op.rhs)) else {
                continue;
            };
            if lu == ru || is_conversion(&op.lhs) || is_conversion(&op.rhs) {
                continue;
            }
            if file.in_test_code(op.line) {
                continue;
            }
            diags.push(Diagnostic {
                rule: Rule::SuffixMix,
                file: file.path.clone(),
                line: op.line,
                message: format!(
                    "`{}` ({}) and `{}` ({}) are added/subtracted across units; \
                     route the conversion through a named *_per_*/to_*/from_* \
                     identifier",
                    op.lhs, lu, op.rhs, ru
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn model(files: &[(&str, &str)]) -> WorkspaceModel {
        WorkspaceModel {
            files: files
                .iter()
                .map(|(rel, src)| parse_file(rel, &lex(src)))
                .collect(),
        }
    }

    const KIND_OK: &str = "pub enum SystemKind { A, B }\n\
        impl SystemKind {\n  pub const ALL: [SystemKind; 2] = \
        [SystemKind::A, SystemKind::B];\n}\n";

    #[test]
    fn drift_fires_when_variant_missing_from_all() {
        let bad = KIND_OK.replace(", SystemKind::B", "");
        let m = model(&[
            ("crates/sim/src/runner.rs", &bad),
            (
                "crates/sim/src/sweep.rs",
                "fn f() { let _ = (SystemKind::A, SystemKind::B); }\n",
            ),
        ]);
        let diags = run(&m, &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::VariantDrift);
        assert!(diags[0].message.contains("SystemKind::B"));
    }

    #[test]
    fn drift_fires_when_variant_unreferenced_elsewhere() {
        let m = model(&[
            ("crates/sim/src/runner.rs", KIND_OK),
            (
                "crates/sim/src/sweep.rs",
                "fn f() { let _ = SystemKind::A; }\n",
            ),
        ]);
        let diags = run(&m, &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("never referenced outside"));
    }

    #[test]
    fn figure_id_needs_no_external_references() {
        let src = "pub enum FigureId { F1 }\nimpl FigureId {\n  \
                   pub const ALL: [FigureId; 1] = [FigureId::F1];\n}\n";
        let m = model(&[("crates/sim/src/figures.rs", src)]);
        assert!(run(&m, &[]).is_empty());
    }

    #[test]
    fn wildcard_arm_fires_only_in_result_crates() {
        let src = "fn f(k: SystemKind) -> u32 { match k { SystemKind::A => 1, _ => 0 } }\n";
        let m = model(&[("crates/sim/src/x.rs", src)]);
        let diags = run(&m, &[]);
        assert!(
            diags.iter().any(|d| d.rule == Rule::WildcardArm),
            "{diags:?}"
        );
        let m = model(&[("crates/lint/src/x.rs", src)]);
        assert!(run(&m, &[]).iter().all(|d| d.rule != Rule::WildcardArm));
    }

    #[test]
    fn wildcard_over_plain_enum_is_fine() {
        let src = "fn f(k: Other) -> u32 { match k { Other::A => 1, _ => 0 } }\n";
        let m = model(&[("crates/sim/src/x.rs", src)]);
        assert!(run(&m, &[]).is_empty());
    }

    #[test]
    fn dead_knob_fires_and_external_read_clears_it() {
        let cfg = "pub struct NvrConfig {\n  pub vector_width: u32,\n  pub unused_knob: u32,\n}\n";
        let user = "fn f(c: &NvrConfig) -> u32 { c.vector_width }\n";
        let m = model(&[
            ("crates/core/src/config.rs", cfg),
            ("crates/core/src/controller.rs", user),
        ]);
        let diags = run(&m, &[]);
        let dead: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == Rule::DeadKnob).collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert!(dead[0].message.contains("unused_knob"));
    }

    #[test]
    fn csv_doc_drift_fires_on_unknown_column() {
        let writer = "fn f() { let h = \"tile_id,total_cycles\\n\"; }\n";
        let m = model(&[("crates/sim/src/sweep.rs", writer)]);
        let docs = vec![(
            "README.md".to_string(),
            "The sweep CSV carries `tile_id,total_cycles`.\n\
             Columns `tile_id` and `ghost_column` matter.\n\
             ```\ncode fence with `fake_col` is skipped\n```\n\
             CLI flags like `--out nvr-lint.json` are not columns.\n"
                .to_string(),
        )];
        let diags = run(&m, &docs);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::CsvCrossFile);
        assert!(diags[0].message.contains("ghost_column"));
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn suffix_mix_fires_across_units_only() {
        let src = "fn f(a_cycles: u64, b_bytes: u64, c_cycles: u64, bytes_per_line: u64) {\n\
                   let x = a_cycles + b_bytes;\n\
                   let y = a_cycles + c_cycles;\n\
                   let z = b_bytes - bytes_per_line;\n}\n";
        let m = model(&[("crates/core/src/x.rs", src)]);
        let diags = run(&m, &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::SuffixMix);
        assert_eq!(diags[0].line, 2);
    }
}
