//! The workspace symbol model the semantic pass runs over.
//!
//! Pass 1 builds one [`FileModel`] per source file (item-level facts the
//! [`crate::parser`] extracts from the token stream); the engine stitches
//! them into a [`WorkspaceModel`] and the cross-file rules in
//! [`crate::semantic`] query the whole thing at once. Every structure
//! here is deliberately flat and string-keyed so it serialises into the
//! fingerprint cache (`target/nvr-lint-cache.json`) without a schema
//! crate.

use std::collections::BTreeSet;

/// One enum definition: name plus its variants with their lines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnumDef {
    /// Enum name (`SystemKind`).
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names with the line each is declared on.
    pub variants: Vec<(String, u32)>,
}

/// One braced struct definition: name plus its `pub` fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name (`NvrConfig`).
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Public field names with the line each is declared on.
    pub fields: Vec<(String, u32)>,
}

/// One `match` expression, reduced to what the registry rules need.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchExpr {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// Roots of `Root::Variant` paths appearing in the arm *patterns*
    /// (guards excluded) — the enums this match dispatches over.
    pub pattern_roots: BTreeSet<String>,
    /// Line of a catch-all `_` arm, when the match has one.
    pub wildcard_line: Option<u32>,
    /// Number of arms.
    pub arms: u32,
}

/// One `Root::Name` path reference (use sites, arm patterns, const
/// tables alike).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathRef {
    /// First segment (`SystemKind`).
    pub root: String,
    /// Second segment (`NvrNsb`).
    pub name: String,
    /// 1-based line.
    pub line: u32,
}

/// One `const NAME: … = [ … ];` item whose initialiser is an array
/// literal — the hand-maintained registry tables (`SystemKind::ALL`)
/// whose membership the drift rule audits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstArray {
    /// Const name (`ALL`, `PREFETCHERS`).
    pub name: String,
    /// 1-based line of the `const` keyword.
    pub line: u32,
    /// `Root::Variant` paths inside the array literal.
    pub items: Vec<PathRef>,
}

/// A `lhs ± rhs` site where both operands carry a unit suffix
/// (`_cycles`/`_ns`/`_bytes`/`_lines`) — the raw material of the
/// `units/suffix-mix` rule, recorded even when the units agree so the
/// rule itself stays a pure model query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitOpSite {
    /// 1-based line of the operator.
    pub line: u32,
    /// Last path segment of the left operand (`total_cycles`).
    pub lhs: String,
    /// Last path segment of the right operand (`row_bytes`).
    pub rhs: String,
}

/// Everything pass 1 learns about one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileModel {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
    /// Braced struct definitions with `pub` fields.
    pub structs: Vec<StructDef>,
    /// `match` expressions.
    pub matches: Vec<MatchExpr>,
    /// `Root::Name` path references.
    pub paths: Vec<PathRef>,
    /// Const array registry tables.
    pub const_arrays: Vec<ConstArray>,
    /// Distinct identifier texts in the file (dead-knob lookups).
    pub idents: BTreeSet<String>,
    /// String literals that look like CSV headers (≥ 2 identifier-shaped
    /// comma-separated columns ending in a newline), with their lines.
    pub csv_headers: Vec<(String, u32)>,
    /// Additive arithmetic between unit-suffixed identifiers.
    pub unit_ops: Vec<UnitOpSite>,
    /// `#[cfg(test)]` line ranges (inclusive) — semantic rules that police
    /// production code skip findings inside them.
    pub test_ranges: Vec<(u32, u32)>,
}

impl FileModel {
    /// True when `line` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }
}

/// The stitched whole-workspace model.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceModel {
    /// Per-file models, in sorted path order.
    pub files: Vec<FileModel>,
}

impl WorkspaceModel {
    /// The files defining an enum named `name`.
    #[must_use]
    pub fn enum_defs<'a>(&'a self, name: &str) -> Vec<(&'a FileModel, &'a EnumDef)> {
        let mut out = Vec::new();
        for f in &self.files {
            for e in &f.enums {
                if e.name == name {
                    out.push((f, e));
                }
            }
        }
        out
    }

    /// True when `ident` occurs in any file other than `except_path`.
    #[must_use]
    pub fn ident_used_outside(&self, ident: &str, except_path: &str) -> bool {
        self.files
            .iter()
            .any(|f| f.path != except_path && f.idents.contains(ident))
    }

    /// True when the path `root::name` is referenced in any file other
    /// than `except_path`.
    #[must_use]
    pub fn path_used_outside(&self, root: &str, name: &str, except_path: &str) -> bool {
        self.files.iter().any(|f| {
            f.path != except_path && f.paths.iter().any(|p| p.root == root && p.name == name)
        })
    }

    /// Union of every CSV column name any writer in the workspace emits.
    #[must_use]
    pub fn csv_columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for f in &self.files {
            for (header, _) in &f.csv_headers {
                for col in header.trim_end_matches('\n').split(',') {
                    out.insert(col.trim().to_string());
                }
            }
        }
        out
    }

    /// Aggregate counts for the JSON report's `model_stats` block.
    #[must_use]
    pub fn stats(&self) -> ModelStats {
        let mut s = ModelStats {
            files: self.files.len(),
            ..ModelStats::default()
        };
        for f in &self.files {
            s.enums += f.enums.len();
            s.variants += f.enums.iter().map(|e| e.variants.len()).sum::<usize>();
            s.structs += f.structs.len();
            s.fields += f.structs.iter().map(|d| d.fields.len()).sum::<usize>();
            s.matches += f.matches.len();
            s.csv_headers += f.csv_headers.len();
        }
        s
    }
}

/// Counts of what the two-pass analysis indexed — surfaced in the JSON
/// report so CI can see the model did not silently lose the tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Files parsed into the model.
    pub files: usize,
    /// Enum definitions indexed.
    pub enums: usize,
    /// Enum variants indexed.
    pub variants: usize,
    /// Struct definitions indexed.
    pub structs: usize,
    /// Public struct fields indexed.
    pub fields: usize,
    /// `match` expressions indexed.
    pub matches: usize,
    /// CSV header literals indexed.
    pub csv_headers: usize,
}
