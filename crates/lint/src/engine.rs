//! Workspace discovery and the two-pass whole-tree lint.
//!
//! Walks `crates/`, `tests/` and `examples/` under the workspace root
//! (skipping `target/`, `vendor/` — third-party stand-ins — and any
//! `fixtures/` directory, which holds deliberately-bad lint inputs).
//! Pass 1 analyzes each file ([`crate::rules::analyze_source`], served
//! from the fingerprint cache when unchanged); pass 2 stitches the
//! per-file models into a [`WorkspaceModel`] and runs the cross-file
//! semantic rules ([`crate::semantic`]) over it plus the two
//! documentation files. Suppressions resolve *after* both passes, so an
//! `allow(...)` comment covers semantic findings exactly like token
//! findings.

use std::fs;
use std::path::{Path, PathBuf};

use crate::cache::{self, Cache, Entry};
use crate::diag::{Report, Rule};
use crate::model::WorkspaceModel;
use crate::rules::{analyze_source, resolve_file};
use crate::semantic;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// Top-level directories scanned under the workspace root.
const SCAN_ROOTS: [&str; 3] = ["crates", "tests", "examples"];

/// Documentation files the `csv/cross-file-schema` rule reads, relative
/// to the workspace root. Missing files are simply skipped (fixture
/// trees usually have none).
const DOC_FILES: [&str; 2] = ["README.md", "docs/ARCHITECTURE.md"];

/// Knobs for a workspace lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Where to load/store the pass-1 fingerprint cache; `None` disables
    /// caching (every file re-analyzed).
    pub cache_path: Option<PathBuf>,
    /// Restrict the report to one rule (`--rule`); suppression-audit
    /// diagnostics are filtered out too, so the output is exactly that
    /// rule's findings.
    pub rule: Option<Rule>,
}

/// Lints the workspace rooted at `root` with default options (no cache,
/// all rules).
///
/// # Errors
///
/// Returns a message when `root` is not a workspace root (no `Cargo.toml`)
/// or a file cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    lint_workspace_with(root, &LintOptions::default())
}

/// Lints the workspace rooted at `root`.
///
/// # Errors
///
/// Returns a message when `root` is not a workspace root (no `Cargo.toml`)
/// or a file cannot be read. Cache load/store failures are *not* errors:
/// an unreadable cache means a cold run, a failed write means the next
/// run is cold too.
pub fn lint_workspace_with(root: &Path, opts: &LintOptions) -> Result<Report, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs_files(&root.join(scan), &mut files);
    }
    files.sort();

    // Pass 1, cache-aware. `fresh` becomes both this run's working set
    // and the cache written back for the next run.
    let old_cache = opts
        .cache_path
        .as_deref()
        .map(cache::load)
        .unwrap_or_default();
    let mut fresh = Cache::default();
    let mut report = Report::default();
    for path in &files {
        let src =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let fingerprint = cache::fingerprint(&src);
        let analysis = match old_cache.entries.get(&rel) {
            Some(entry) if entry.fingerprint == fingerprint => {
                report.files_cached += 1;
                entry.analysis.clone()
            }
            _ => analyze_source(&rel, &src),
        };
        report.files_checked += 1;
        fresh.entries.insert(
            rel,
            Entry {
                fingerprint,
                analysis,
            },
        );
    }

    // Pass 2: the cross-file rules over the stitched model + docs.
    let model = WorkspaceModel {
        files: fresh
            .entries
            .values()
            .map(|e| e.analysis.model.clone())
            .collect(),
    };
    report.model_stats = model.stats();
    let docs: Vec<(String, String)> = DOC_FILES
        .iter()
        .filter_map(|rel| {
            fs::read_to_string(root.join(rel))
                .ok()
                .map(|text| ((*rel).to_string(), text))
        })
        .collect();
    let mut semantic_diags = semantic::run(&model, &docs);

    // Suppression resolution, per file, over token + semantic findings.
    for (rel, entry) in &fresh.entries {
        let a = &entry.analysis;
        let mut findings = a.findings.clone();
        let mut i = 0;
        while i < semantic_diags.len() {
            if semantic_diags[i].file == *rel {
                findings.push(semantic_diags.swap_remove(i));
            } else {
                i += 1;
            }
        }
        report
            .diagnostics
            .extend(resolve_file(rel, findings, &a.allows, a.malformed.clone()));
    }
    // What remains targets the doc files, which carry no allow comments.
    report.diagnostics.append(&mut semantic_diags);
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule.name()).cmp(&(&b.file, b.line, b.rule.name())));

    if let Some(rule) = opts.rule {
        report.diagnostics.retain(|d| d.rule == rule);
    }
    if let Some(path) = &opts.cache_path {
        // Best-effort: a failed write only costs the next run its warmth.
        let _ = cache::save(path, &fresh);
    }
    Ok(report)
}

/// Walks upward from `start` to the first directory holding a
/// `Cargo.toml` with a `[workspace]` table.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    // read_dir order is platform-dependent; the caller sorts the full list.
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if SKIP_DIRS.iter().any(|s| name.to_string_lossy() == *s) {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_root_is_an_error() {
        let err = lint_workspace(Path::new("/nonexistent-nvr-lint-root"));
        assert!(err.is_err());
    }

    #[test]
    fn finds_own_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }
}
