//! Workspace discovery and the whole-tree lint pass.
//!
//! Walks `crates/`, `tests/` and `examples/` under the workspace root
//! (skipping `target/`, `vendor/` — third-party stand-ins — and any
//! `fixtures/` directory, which holds deliberately-bad lint inputs),
//! lints every `.rs` file and aggregates an ordered [`Report`].

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::Report;
use crate::rules::lint_source;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// Top-level directories scanned under the workspace root.
const SCAN_ROOTS: [&str; 3] = ["crates", "tests", "examples"];

/// Lints the workspace rooted at `root`.
///
/// # Errors
///
/// Returns a message when `root` is not a workspace root (no `Cargo.toml`)
/// or a file cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs_files(&root.join(scan), &mut files);
    }
    files.sort();
    let mut report = Report::default();
    for path in &files {
        let src =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        report.diagnostics.extend(lint_source(&rel, &src));
        report.files_checked += 1;
    }
    Ok(report)
}

/// Walks upward from `start` to the first directory holding a
/// `Cargo.toml` with a `[workspace]` table.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    // read_dir order is platform-dependent; the caller sorts the full list.
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if SKIP_DIRS.iter().any(|s| name.to_string_lossy() == *s) {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_root_is_an_error() {
        let err = lint_workspace(Path::new("/nonexistent-nvr-lint-root"));
        assert!(err.is_err());
    }

    #[test]
    fn finds_own_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }
}
