//! The per-file (pass 1) rule checks and the audited-suppression
//! machinery.
//!
//! Two entry points:
//!
//! * [`analyze_source`] is the cacheable pass-1 half: lex, run every
//!   token rule whose scope covers the file, parse the suppression
//!   comments and build the file's [`FileModel`] — *without* resolving
//!   suppressions, because the workspace semantic pass may still add
//!   findings that the same allows must be able to cover.
//! * [`resolve_file`] applies the allows to the combined finding list
//!   (token + semantic), flagging unused allows.
//!
//! [`lint_source`] composes the two for single-file use (tests, fixture
//! checks); the engine interleaves the semantic pass between them.

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::model::FileModel;

/// Crates whose numeric outputs land in figures/CSVs — the set where
/// unordered containers would silently break `--jobs` bit-equality.
const RESULT_CRATES: [&str; 4] = [
    "crates/core/",
    "crates/mem/",
    "crates/sim/",
    "crates/workloads/",
];

/// Identifiers whose presence in a result-producing crate is a
/// determinism hazard: all iterate (or hash) in platform/seed-dependent
/// order.
const UNORDERED_IDENTS: [&str; 4] = ["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Ambient-randomness identifiers: all draw entropy from outside the
/// seeded `SweepJob` state.
const AMBIENT_RNG_IDENTS: [&str; 5] = [
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
];

/// Narrowing integer targets for `as` casts in tick paths.
const NARROW_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Tick-path files where a stray panic would take down a whole sweep and
/// where every `unwrap`/`expect` therefore needs a written justification.
const HOT_LOOP_FILES: [&str; 4] = [
    "crates/core/src/controller.rs",
    "crates/mem/src/cache.rs",
    "crates/mem/src/dram.rs",
    "crates/mem/src/hierarchy.rs",
];

/// Function-name markers for the simulator's per-cycle entry points in
/// `crates/core`/`crates/mem`: a `for`/`while`/`loop` body inside a
/// function whose name contains one of these is a hot loop, where a
/// per-iteration allocation multiplies every sweep's wall clock.
const HOT_FN_MARKERS: [&str; 7] = [
    "tick", "advance", "step", "issue", "probe", "install", "progress",
];

/// Files holding the config structs whose fields the knob-doc rule covers.
const KNOB_FILES: [&str; 3] = [
    "crates/core/src/config.rs",
    "crates/mem/src/config.rs",
    "crates/sim/src/sweep.rs",
];

/// The config structs themselves.
const KNOB_STRUCTS: [&str; 6] = [
    "NvrConfig",
    "CacheConfig",
    "DramConfig",
    "MemoryConfig",
    "SweepSpec",
    "SweepJob",
];

/// A parsed `nvr-lint: allow(rule) reason="..."` comment — the
/// serializable half (the runtime `used` flag lives in [`resolve_file`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllowData {
    /// The rule being suppressed.
    pub rule: Rule,
    /// Line of the comment itself.
    pub line: u32,
    /// Whether the comment stands alone above the code it annotates (in
    /// which case it also covers the following line).
    pub standalone: bool,
}

impl AllowData {
    fn covers(self, rule: Rule, line: u32) -> bool {
        if self.rule != rule {
            return false;
        }
        if rule.file_scoped() {
            return true;
        }
        line == self.line || (self.standalone && line == self.line + 1)
    }
}

/// Everything pass 1 learns about one file — pure in the file contents,
/// which is what makes it cacheable by fingerprint.
#[derive(Debug, Clone, Default)]
pub struct FileAnalysis {
    /// Token-rule findings, *before* suppression resolution.
    pub findings: Vec<Diagnostic>,
    /// Well-formed suppression comments.
    pub allows: Vec<AllowData>,
    /// Malformed-allow diagnostics (never suppressible).
    pub malformed: Vec<Diagnostic>,
    /// The file's slice of the workspace model.
    pub model: FileModel,
}

/// Pass 1 for one file: token rules + suppression comments + item model.
/// `rel` is the workspace-relative path with forward slashes — rule
/// scoping keys off it.
#[must_use]
pub fn analyze_source(rel: &str, src: &str) -> FileAnalysis {
    let lexed = lex(src);
    let test_lines = cfg_test_lines(&lexed);
    let mut findings: Vec<Diagnostic> = Vec::new();

    check_ordered_containers(rel, &lexed, &mut findings);
    check_wall_clock(rel, &lexed, &mut findings);
    check_thread_state(rel, &lexed, &mut findings);
    check_lossy_cast(rel, &lexed, &test_lines, &mut findings);
    check_panic_hot_loop(rel, &lexed, &test_lines, &mut findings);
    check_hot_loop_alloc(rel, &lexed, &test_lines, &mut findings);
    check_crate_root_attrs(rel, &lexed, &mut findings);
    check_knob_doc(rel, src, &mut findings);
    check_csv_schema(rel, &lexed, &mut findings);

    let (allows, malformed) = parse_allows(rel, &lexed);
    FileAnalysis {
        findings,
        allows,
        malformed,
        model: crate::parser::parse_file(rel, &lexed),
    }
}

/// Resolves suppressions over the combined finding list of one file: a
/// finding covered by an allow is dropped and marks the allow used;
/// unused allows become findings themselves. Returns the surviving
/// diagnostics in (line, rule) order.
#[must_use]
pub fn resolve_file(
    rel: &str,
    findings: Vec<Diagnostic>,
    allows: &[AllowData],
    malformed: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let mut used = vec![false; allows.len()];
    let mut diags = malformed;
    for d in findings {
        match allows.iter().position(|a| a.covers(d.rule, d.line)) {
            Some(i) => used[i] = true,
            None => diags.push(d),
        }
    }
    for (allow, used) in allows.iter().zip(used) {
        if !used {
            diags.push(Diagnostic {
                rule: Rule::UnusedAllow,
                file: rel.into(),
                line: allow.line,
                message: format!(
                    "allow({}) suppresses nothing — remove it so the audit trail stays honest",
                    allow.rule
                ),
            });
        }
    }
    diags.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.name().cmp(b.rule.name())));
    diags
}

/// Lints one file's source with the per-file rules only (no workspace
/// semantic pass): pass 1 plus suppression resolution.
#[must_use]
pub fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let analysis = analyze_source(rel, src);
    resolve_file(rel, analysis.findings, &analysis.allows, analysis.malformed)
}

/// Parses every suppression comment; returns well-formed allows plus
/// diagnostics for malformed ones.
fn parse_allows(rel: &str, lexed: &Lexed) -> (Vec<AllowData>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for comment in &lexed.comments {
        // Suppressions live in plain comments only: doc comments merely
        // *describe* the syntax (rustdoc, this file) and never suppress.
        let is_doc = ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| comment.text.starts_with(p));
        if is_doc {
            continue;
        }
        let Some(idx) = comment.text.find("nvr-lint:") else {
            continue;
        };
        let body = &comment.text[idx + "nvr-lint:".len()..];
        let mut malformed = |msg: String| {
            diags.push(Diagnostic {
                rule: Rule::MalformedAllow,
                file: rel.into(),
                line: comment.line,
                message: msg,
            });
        };
        let Some(open) = body.find("allow(") else {
            malformed("expected `allow(rule)` after `nvr-lint:`".into());
            continue;
        };
        let after = &body[open + "allow(".len()..];
        let Some(close) = after.find(')') else {
            malformed("unclosed `allow(` — expected `allow(rule)`".into());
            continue;
        };
        let rule_name = after[..close].trim();
        let Some(rule) = Rule::from_name(rule_name) else {
            malformed(format!(
                "unknown rule `{rule_name}` (run `nvr-lint --list-rules` for the catalogue)"
            ));
            continue;
        };
        let rest = &after[close + 1..];
        let reason = rest
            .find("reason=\"")
            .map(|r| &rest[r + "reason=\"".len()..])
            .and_then(|tail| tail.find('"').map(|end| tail[..end].trim()));
        match reason {
            Some(r) if !r.is_empty() => allows.push(AllowData {
                rule,
                line: comment.line,
                standalone: !lexed.has_code_on_line(comment.line),
            }),
            _ => malformed(format!(
                "allow({rule}) needs a non-empty reason=\"...\" — suppressions are audited"
            )),
        }
    }
    (allows, diags)
}

/// Lines covered by `#[cfg(test)]` items: rules that police production
/// tick paths skip these (tests unwrap freely, by design). The parser
/// reuses it to stamp [`crate::model::FileModel::test_ranges`].
pub(crate) fn cfg_test_lines(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.toks;
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = tok_is(&toks[i], "#")
            && tok_is(&toks[i + 1], "[")
            && ident_is(&toks[i + 2], "cfg")
            && tok_is(&toks[i + 3], "(")
            && ident_is(&toks[i + 4], "test")
            && tok_is(&toks[i + 5], ")")
            && tok_is(&toks[i + 6], "]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the body's opening brace, then its matching close.
        let mut j = i + 7;
        while j < toks.len() && !tok_is(&toks[j], "{") {
            // A `;` first means a braceless item (e.g. `mod tests;`).
            if tok_is(&toks[j], ";") {
                break;
            }
            j += 1;
        }
        if j >= toks.len() || !tok_is(&toks[j], "{") {
            i = j;
            continue;
        }
        let start = toks[i].line;
        let mut depth = 0i64;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let end = toks.get(j).map_or(u32::MAX, |t| t.line);
        ranges.push((start, end));
        i = j + 1;
    }
    ranges
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

fn tok_is(tok: &Tok, text: &str) -> bool {
    match tok.kind {
        TokKind::Punct(c) => text.len() == 1 && text.starts_with(c),
        _ => false,
    }
}

fn ident_is(tok: &Tok, text: &str) -> bool {
    tok.kind == TokKind::Ident && tok.text == text
}

fn push(diags: &mut Vec<Diagnostic>, rule: Rule, rel: &str, line: u32, message: String) {
    diags.push(Diagnostic {
        rule,
        file: rel.into(),
        line,
        message,
    });
}

fn check_ordered_containers(rel: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    if !RESULT_CRATES.iter().any(|c| rel.starts_with(c)) {
        return;
    }
    for tok in &lexed.toks {
        if tok.kind == TokKind::Ident && UNORDERED_IDENTS.contains(&tok.text.as_str()) {
            push(
                diags,
                Rule::OrderedContainers,
                rel,
                tok.line,
                format!(
                    "`{}` in a result-producing crate: unordered iteration breaks \
                     --jobs bit-equality; use BTreeMap/BTreeSet or a Vec keyed by \
                     deterministic order",
                    tok.text
                ),
            );
        }
    }
}

fn check_wall_clock(rel: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        // `SystemTime::<anything>` is a clock (or epoch) access; the bare
        // ident in a `use` import is not flagged, mirroring `Instant`.
        if i + 2 < toks.len()
            && ident_is(&toks[i], "SystemTime")
            && tok_is(&toks[i + 1], ":")
            && tok_is(&toks[i + 2], ":")
        {
            push(
                diags,
                Rule::WallClock,
                rel,
                toks[i].line,
                "`SystemTime` read: wall-clock must never feed a simulation result".into(),
            );
        }
        if i + 3 < toks.len()
            && ident_is(&toks[i], "Instant")
            && tok_is(&toks[i + 1], ":")
            && tok_is(&toks[i + 2], ":")
            && ident_is(&toks[i + 3], "now")
        {
            push(
                diags,
                Rule::WallClock,
                rel,
                toks[i].line,
                "`Instant::now()`: wall-clock reads are only legitimate at the audited \
                 sweep-timing sites (keep them out of anything that feeds a result)"
                    .into(),
            );
        }
    }
}

fn check_thread_state(rel: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    for tok in &lexed.toks {
        if tok.kind == TokKind::Ident && AMBIENT_RNG_IDENTS.contains(&tok.text.as_str()) {
            push(
                diags,
                Rule::ThreadState,
                rel,
                tok.line,
                format!(
                    "`{}` draws ambient entropy; all randomness must flow from the \
                     seeded Pcg32 in SweepJob/WorkloadSpec state",
                    tok.text
                ),
            );
        }
    }
}

fn check_lossy_cast(
    rel: &str,
    lexed: &Lexed,
    test_lines: &[(u32, u32)],
    diags: &mut Vec<Diagnostic>,
) {
    if !(rel.starts_with("crates/core/") || rel.starts_with("crates/mem/")) {
        return;
    }
    let toks = &lexed.toks;
    for i in 0..toks.len().saturating_sub(1) {
        if ident_is(&toks[i], "as")
            && toks[i + 1].kind == TokKind::Ident
            && NARROW_TARGETS.contains(&toks[i + 1].text.as_str())
            && !in_ranges(test_lines, toks[i].line)
        {
            push(
                diags,
                Rule::LossyCast,
                rel,
                toks[i].line,
                format!(
                    "narrowing `as {}` in a cycle/address-typed tick path can silently \
                     truncate u64 values; use try_from or justify with an allow",
                    toks[i + 1].text
                ),
            );
        }
    }
}

fn check_panic_hot_loop(
    rel: &str,
    lexed: &Lexed,
    test_lines: &[(u32, u32)],
    diags: &mut Vec<Diagnostic>,
) {
    if !HOT_LOOP_FILES.contains(&rel) {
        return;
    }
    let toks = &lexed.toks;
    for i in 0..toks.len().saturating_sub(2) {
        if tok_is(&toks[i], ".")
            && (ident_is(&toks[i + 1], "unwrap") || ident_is(&toks[i + 1], "expect"))
            && tok_is(&toks[i + 2], "(")
            && !in_ranges(test_lines, toks[i].line)
        {
            push(
                diags,
                Rule::PanicHotLoop,
                rel,
                toks[i].line,
                format!(
                    "`.{}()` in controller/cache/DRAM code: a panic here kills a whole \
                     sweep; justify the invariant with an allow or return an error",
                    toks[i + 1].text
                ),
            );
        }
    }
}

/// The first `{` at or after `from` together with its matching `}`, as
/// token indices. Returns `None` when a `;` arrives first (no block — a
/// trait-method signature) or the braces never balance.
fn brace_block(toks: &[Tok], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < toks.len() && !tok_is(&toks[i], "{") {
        if tok_is(&toks[i], ";") {
            return None;
        }
        i += 1;
    }
    let open = i;
    let mut depth = 0i64;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Flags per-iteration `Vec`/`String`/`Box` allocation (constructors,
/// `vec!`/`format!`, `.to_vec()`/`.to_string()`/`.to_owned()`/
/// `.collect()`) inside `for`/`while`/`loop` bodies of the named hot
/// functions of `crates/core`/`crates/mem`.
fn check_hot_loop_alloc(
    rel: &str,
    lexed: &Lexed,
    test_lines: &[(u32, u32)],
    diags: &mut Vec<Diagnostic>,
) {
    if !(rel.starts_with("crates/core/") || rel.starts_with("crates/mem/")) {
        return;
    }
    let toks = &lexed.toks;
    // Body spans of the hot functions (token index ranges).
    let mut hot_spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_hot_fn = ident_is(&toks[i], "fn")
            && toks.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident && HOT_FN_MARKERS.iter().any(|m| t.text.contains(m))
            })
            && !in_ranges(test_lines, toks[i].line);
        if is_hot_fn {
            if let Some(span) = brace_block(toks, i + 2) {
                hot_spans.push(span);
            }
        }
        i += 1;
    }
    // Loop bodies inside those functions.
    let mut loop_spans: Vec<(usize, usize)> = Vec::new();
    for &(fs, fe) in &hot_spans {
        for j in fs..=fe {
            let is_loop = toks[j].kind == TokKind::Ident
                && matches!(toks[j].text.as_str(), "for" | "while" | "loop");
            if is_loop {
                if let Some((open, close)) = brace_block(toks, j + 1) {
                    if close <= fe {
                        loop_spans.push((open, close));
                    }
                }
            }
        }
    }
    // Allocation sites, deduplicated by token index (nested loops overlap).
    let mut flagged: Vec<usize> = Vec::new();
    for &(ls, le) in &loop_spans {
        for k in ls..=le {
            let Some(what) = alloc_site(toks, k) else {
                continue;
            };
            if flagged.contains(&k) {
                continue;
            }
            flagged.push(k);
            push(
                diags,
                Rule::HotLoopAlloc,
                rel,
                toks[k].line,
                format!(
                    "{what} allocates on every iteration of a hot tick/advance loop; \
                     hoist the buffer out of the loop and reuse it, or justify a \
                     genuinely cold path with an allow"
                ),
            );
        }
    }
}

/// `Some(description)` when the token at `k` starts an allocating
/// expression: a `Vec`/`String`/`Box` constructor, a `vec!`/`format!`
/// invocation, or an allocating method call.
fn alloc_site(toks: &[Tok], k: usize) -> Option<String> {
    let t = &toks[k];
    if t.kind != TokKind::Ident {
        return None;
    }
    match t.text.as_str() {
        "Vec" | "String" | "Box" => {
            let path = tok_is(toks.get(k + 1)?, ":") && tok_is(toks.get(k + 2)?, ":");
            let m = toks.get(k + 3)?;
            let ctor = m.kind == TokKind::Ident
                && matches!(m.text.as_str(), "new" | "from" | "with_capacity");
            (path && ctor).then(|| format!("`{}::{}`", t.text, m.text))
        }
        "vec" | "format" if tok_is(toks.get(k + 1)?, "!") => Some(format!("`{}!`", t.text)),
        "to_string" | "to_owned" | "to_vec" | "collect" => {
            let method_call = k > 0
                && tok_is(&toks[k - 1], ".")
                && toks
                    .get(k + 1)
                    .is_some_and(|n| tok_is(n, "(") || tok_is(n, ":"));
            method_call.then(|| format!("`.{}()`", t.text))
        }
        _ => None,
    }
}

/// Crate-root attribute rules: `#![forbid(unsafe_code)]` and
/// `#![deny(missing_docs)]` on every `crates/*/src/lib.rs`.
fn check_crate_root_attrs(rel: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    let is_lib_root = rel.starts_with("crates/") && rel.ends_with("/src/lib.rs");
    if !is_lib_root {
        return;
    }
    if !has_inner_attr(lexed, "forbid", "unsafe_code") {
        push(
            diags,
            Rule::UnsafeForbid,
            rel,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".into(),
        );
    }
    if !has_inner_attr(lexed, "deny", "missing_docs") {
        push(
            diags,
            Rule::DocsDenyMissing,
            rel,
            1,
            "crate root is missing `#![deny(missing_docs)]`".into(),
        );
    }
}

fn has_inner_attr(lexed: &Lexed, level: &str, lint: &str) -> bool {
    let toks = &lexed.toks;
    (0..toks.len().saturating_sub(7)).any(|i| {
        tok_is(&toks[i], "#")
            && tok_is(&toks[i + 1], "!")
            && tok_is(&toks[i + 2], "[")
            && ident_is(&toks[i + 3], level)
            && tok_is(&toks[i + 4], "(")
            && ident_is(&toks[i + 5], lint)
            && tok_is(&toks[i + 6], ")")
            && tok_is(&toks[i + 7], "]")
    })
}

/// Line-based check (the workspace is rustfmt-enforced): every field of a
/// config struct must be immediately preceded by a doc comment, possibly
/// with attributes in between.
fn check_knob_doc(rel: &str, src: &str, diags: &mut Vec<Diagnostic>) {
    if !KNOB_FILES.contains(&rel) {
        return;
    }
    let lines: Vec<&str> = src.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim_start();
        let Some(struct_name) = KNOB_STRUCTS
            .iter()
            .find(|name| trimmed.starts_with(&format!("pub struct {name} {{")))
        else {
            i += 1;
            continue;
        };
        // Walk the struct body, tracking brace depth line by line.
        let mut depth: i64 = 1;
        let mut j = i + 1;
        while j < lines.len() && depth > 0 {
            let body_line = lines[j].trim();
            if depth == 1 && body_line.starts_with("pub ") && body_line.contains(':') {
                let documented = (i + 1..j)
                    .rev()
                    .map(|k| lines[k].trim())
                    .take_while(|prev| {
                        prev.starts_with("///") || prev.starts_with("#[") || prev.starts_with("//")
                    });
                if !documented.into_iter().any(|prev| prev.starts_with("///")) {
                    let field = body_line
                        .trim_start_matches("pub ")
                        .split(':')
                        .next()
                        .unwrap_or("?")
                        .trim();
                    push(
                        diags,
                        Rule::KnobDoc,
                        rel,
                        (j + 1) as u32,
                        format!(
                            "config knob `{struct_name}::{field}` has no doc comment; \
                             every knob must state its unit and default rationale"
                        ),
                    );
                }
            }
            depth += i64::try_from(body_line.matches('{').count()).unwrap_or(0);
            depth -= i64::try_from(body_line.matches('}').count()).unwrap_or(0);
            j += 1;
        }
        i = j;
    }
}

/// Pairs CSV header literals with the first row-format literal that
/// follows and compares top-level column counts.
fn check_csv_schema(rel: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    let strs: Vec<&Tok> = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .collect();
    for (i, header) in strs.iter().enumerate() {
        let Some(header_cols) = csv_header_columns(&header.text) else {
            continue;
        };
        // The matching row emitter is the next format-ish literal ending in
        // a newline within a generous window of the header.
        let row = strs[i + 1..]
            .iter()
            .find(|t| t.text.ends_with('\n') && t.text.contains('{') && t.line <= header.line + 80);
        let Some(row) = row else { continue };
        let row_cols = top_level_commas(&row.text) + 1;
        if row_cols != header_cols {
            push(
                diags,
                Rule::CsvSchemaSync,
                rel,
                row.line,
                format!(
                    "CSV row format has {row_cols} columns but the header on line {} \
                     declares {header_cols}; keep the header string and the row \
                     field list in sync",
                    header.line
                ),
            );
        }
    }
}

/// `Some(columns)` when the literal looks like a CSV header: ends with a
/// newline, has ≥ 2 commas, no format placeholders, and every segment is
/// an identifier-shaped column name.
fn csv_header_columns(text: &str) -> Option<usize> {
    if !text.ends_with('\n') || text.contains('{') || text.contains('}') {
        return None;
    }
    let body = text.trim_end_matches('\n');
    let segments: Vec<&str> = body.split(',').collect();
    if segments.len() < 3 {
        return None;
    }
    let ident_like = |s: &str| {
        let s = s.trim();
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    };
    segments
        .iter()
        .all(|s| ident_like(s))
        .then_some(segments.len())
}

/// Commas outside `{...}` placeholders (format-spec commas don't count),
/// honouring `{{`/`}}` escapes.
fn top_level_commas(text: &str) -> usize {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '{' if chars.get(i + 1) == Some(&'{') => i += 1,
            '}' if chars.get(i + 1) == Some(&'}') => i += 1,
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => commas += 1,
            _ => {}
        }
        i += 1;
    }
    commas
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(rel: &str, src: &str) -> Vec<Rule> {
        lint_source(rel, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn scoping_gates_container_rule() {
        let src = "use std::collections::HashMap;\n";
        assert!(rules_fired("crates/core/src/x.rs", src).contains(&Rule::OrderedContainers));
        assert!(!rules_fired("crates/llm/src/x.rs", src).contains(&Rule::OrderedContainers));
    }

    #[test]
    fn suppression_consumes_finding() {
        let src = "let m: HashMap<u64, u64> = HashMap::new(); \
                   // nvr-lint: allow(determinism/ordered-containers) reason=\"fixture\"\n";
        assert!(rules_fired("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let src = "// nvr-lint: allow(determinism/ordered-containers) reason=\"fixture\"\n\
                   let m: HashMap<u64, u64> = HashMap::new();\n";
        assert!(rules_fired("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src = "// nvr-lint: allow(determinism/ordered-containers)\nlet x = 1;\n";
        assert_eq!(
            rules_fired("crates/llm/src/x.rs", src),
            [Rule::MalformedAllow]
        );
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// nvr-lint: allow(determinism/wall-clock) reason=\"stale\"\nlet x = 1;\n";
        assert_eq!(rules_fired("crates/llm/src/x.rs", src), [Rule::UnusedAllow]);
    }

    #[test]
    fn cfg_test_mod_is_exempt_from_panic_rule() {
        let src = "fn f(x: Option<u64>) -> u64 { x.expect(\"set\") }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { \
                   Some(1).unwrap(); }\n}\n";
        let fired = rules_fired("crates/mem/src/dram.rs", src);
        assert_eq!(fired, [Rule::PanicHotLoop]); // only the non-test expect
    }

    #[test]
    fn csv_header_mismatch_detected() {
        let good = "fn csv() -> String {\n\
            let mut out = String::from(\"a,b,c\\n\");\n\
            out.push_str(&format!(\"{},{},{}\\n\", 1, 2, 3));\nout\n}\n";
        assert!(rules_fired("crates/sim/src/x.rs", good).is_empty());
        let bad = good.replace("\"a,b,c\\n\"", "\"a,b,c,d\\n\"");
        assert_eq!(
            rules_fired("crates/sim/src/x.rs", &bad),
            [Rule::CsvSchemaSync]
        );
    }

    #[test]
    fn format_spec_commas_do_not_count() {
        assert_eq!(top_level_commas("{},{:>8},{:.3}\n"), 2);
        assert_eq!(top_level_commas("{{literal}},{}\n"), 1);
    }
}
