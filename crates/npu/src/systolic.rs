//! Systolic-array compute timing.

/// An output-stationary systolic array (Gemmini's default organisation).
///
/// Workload generators use [`SystolicArray::gemm_cycles`] to convert layer
/// shapes into per-tile compute budgets, so the compute/memory balance of
/// each workload reflects its real arithmetic intensity.
///
/// # Examples
///
/// ```
/// use nvr_npu::SystolicArray;
///
/// let sa = SystolicArray::new(16, 16);
/// // A 16x16x16 GEMM fits the array exactly: k + fill/drain.
/// assert_eq!(sa.gemm_cycles(16, 16, 16), 16 + 16 + 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
}

impl SystolicArray {
    /// Creates an array of `rows × cols` MAC units.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        SystolicArray { rows, cols }
    }

    /// The default 16×16 Gemmini configuration.
    #[must_use]
    pub fn gemmini_default() -> Self {
        SystolicArray::new(16, 16)
    }

    /// Rows of MAC units.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of MAC units.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cycles for an `m × k × n` dense GEMM (output-stationary schedule):
    /// each `rows × cols` output tile streams `k` partial sums plus array
    /// fill/drain.
    #[must_use]
    pub fn gemm_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        if m == 0 || k == 0 || n == 0 {
            return 0;
        }
        let row_tiles = m.div_ceil(self.rows) as u64;
        let col_tiles = n.div_ceil(self.cols) as u64;
        row_tiles * col_tiles * (k as u64 + self.rows as u64 + self.cols as u64)
    }

    /// Cycles for a sparse row-gather MAC phase: `nnz` gathered rows each
    /// contributing a `1 × k` vector against the array's columns.
    #[must_use]
    pub fn sparse_mac_cycles(&self, nnz: usize, k: usize) -> u64 {
        if nnz == 0 || k == 0 {
            return 0;
        }
        let col_tiles = k.div_ceil(self.cols) as u64;
        // Each non-zero streams through the array once per column tile.
        nnz as u64 * col_tiles
    }
}

impl Default for SystolicArray {
    fn default() -> Self {
        SystolicArray::gemmini_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_scales_with_tiles() {
        let sa = SystolicArray::new(16, 16);
        let one_tile = sa.gemm_cycles(16, 64, 16);
        let four_tiles = sa.gemm_cycles(32, 64, 32);
        assert_eq!(four_tiles, 4 * one_tile);
    }

    #[test]
    fn gemm_empty_is_zero() {
        let sa = SystolicArray::default();
        assert_eq!(sa.gemm_cycles(0, 16, 16), 0);
        assert_eq!(sa.gemm_cycles(16, 0, 16), 0);
    }

    #[test]
    fn partial_tiles_round_up() {
        let sa = SystolicArray::new(16, 16);
        assert_eq!(sa.gemm_cycles(17, 8, 1), 2 * (8 + 32));
    }

    #[test]
    fn sparse_mac_counts_col_tiles() {
        let sa = SystolicArray::new(16, 16);
        assert_eq!(sa.sparse_mac_cycles(10, 16), 10);
        assert_eq!(sa.sparse_mac_cycles(10, 17), 20);
        assert_eq!(sa.sparse_mac_cycles(0, 64), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_panic() {
        let _ = SystolicArray::new(0, 16);
    }
}
