//! Results of an NPU simulation run.

use nvr_common::Cycle;
use nvr_mem::MemoryStats;

/// Timing and miss statistics of one program execution.
///
/// The latency split the paper's Fig. 5 plots — base execution time vs
/// cache-miss stall — is obtained by running the same program twice: once
/// against the real memory system and once against
/// [`nvr_mem::MemorySystem::ideal`]; the difference is the stall segment
/// (see the `nvr-sim` harness).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Program name.
    pub name: String,
    /// Prefetcher name attached during the run.
    pub prefetcher: &'static str,
    /// Wall-clock cycles from first issue to last retire.
    pub total_cycles: Cycle,
    /// Sum of systolic-array busy cycles.
    pub compute_cycles: u64,
    /// Gather vector batches executed.
    pub gather_batches: u64,
    /// Batches in which at least one element line truly missed (the
    /// per-batch miss metric of Fig. 8a).
    pub gather_batch_misses: u64,
    /// Gather elements executed.
    pub gather_elements: u64,
    /// Elements whose line truly missed (per-element miss metric).
    pub gather_element_misses: u64,
    /// Index-array lines demanded.
    pub index_lines: u64,
    /// Index-array lines that missed.
    pub index_line_misses: u64,
    /// Memory-system statistics snapshot (finalised).
    pub mem: MemoryStats,
    /// Aggregate DRAM utilisation over the run: busy cycles as a
    /// fraction of the capacity of all channels.
    pub dram_utilisation: f64,
    /// Per-channel DRAM utilisation over the run, in channel order.
    pub channel_utilisation: Vec<f64>,
}

impl RunResult {
    /// Per-batch miss rate (0 when no gathers ran).
    #[must_use]
    pub fn batch_miss_rate(&self) -> f64 {
        if self.gather_batches == 0 {
            0.0
        } else {
            self.gather_batch_misses as f64 / self.gather_batches as f64
        }
    }

    /// Per-element miss rate (0 when no gathers ran).
    #[must_use]
    pub fn element_miss_rate(&self) -> f64 {
        if self.gather_elements == 0 {
            0.0
        } else {
            self.gather_element_misses as f64 / self.gather_elements as f64
        }
    }

    /// Fraction of wall-clock spent outside compute (memory-bound share).
    #[must_use]
    pub fn memory_bound_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            1.0 - (self.compute_cycles.min(self.total_cycles) as f64 / self.total_cycles as f64)
        }
    }

    /// The busiest channel's utilisation — the saturation signal channel
    /// scaling studies care about (0 when no channel data was recorded).
    #[must_use]
    pub fn max_channel_utilisation(&self) -> f64 {
        self.channel_utilisation.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        RunResult {
            name: "t".into(),
            prefetcher: "None",
            total_cycles: 1000,
            compute_cycles: 250,
            gather_batches: 10,
            gather_batch_misses: 5,
            gather_elements: 160,
            gather_element_misses: 16,
            index_lines: 4,
            index_line_misses: 4,
            mem: MemoryStats::default(),
            dram_utilisation: 0.5,
            channel_utilisation: vec![0.4, 0.6],
        }
    }

    #[test]
    fn rates() {
        let r = result();
        assert!((r.batch_miss_rate() - 0.5).abs() < 1e-12);
        assert!((r.element_miss_rate() - 0.1).abs() < 1e-12);
        assert!((r.memory_bound_fraction() - 0.75).abs() < 1e-12);
        assert!((r.max_channel_utilisation() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_run_rates_are_zero() {
        let r = RunResult {
            gather_batches: 0,
            gather_elements: 0,
            total_cycles: 0,
            ..result()
        };
        assert_eq!(r.batch_miss_rate(), 0.0);
        assert_eq!(r.element_miss_rate(), 0.0);
        assert_eq!(r.memory_bound_fraction(), 0.0);
    }
}
