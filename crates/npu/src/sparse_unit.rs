//! The NPU's sparse-operators unit.
//!
//! Handles alignment, skipping and tiling of sparse data (§IV-A, Fig. 3b).
//! For timing purposes the unit is busy for a stretch of cycles at the
//! start of each tile's compute phase (index alignment); at all other times
//! it is idle — and those idle windows are precisely where NVR borrows it
//! for speculative dependency-chain execution (§III Q&A3).

use nvr_common::Cycle;

/// Occupancy model of the sparse-operators unit.
///
/// # Examples
///
/// ```
/// use nvr_npu::SparseUnit;
///
/// let mut su = SparseUnit::new(16);
/// let done = su.process(100, 64); // 64 indices at 16 lanes -> 4 cycles
/// assert_eq!(done, 104);
/// assert!(!su.is_idle(102));
/// assert!(su.is_idle(104));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseUnit {
    lanes: usize,
    busy_until: Cycle,
    total_busy: u64,
}

impl SparseUnit {
    /// Creates a unit with `lanes` parallel index-processing lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "sparse unit lanes must be non-zero");
        SparseUnit {
            lanes,
            busy_until: 0,
            total_busy: 0,
        }
    }

    /// Occupies the unit from `start` to process `n_indices` (align/skip/
    /// tile work); returns the completion cycle.
    pub fn process(&mut self, start: Cycle, n_indices: usize) -> Cycle {
        let cycles = (n_indices as u64).div_ceil(self.lanes as u64);
        let begin = start.max(self.busy_until);
        self.busy_until = begin + cycles;
        self.total_busy += cycles;
        self.busy_until
    }

    /// Whether the unit is idle at `cycle` (available for runahead).
    #[must_use]
    pub fn is_idle(&self, cycle: Cycle) -> bool {
        cycle >= self.busy_until
    }

    /// Cycle at which the unit next becomes idle.
    #[must_use]
    pub fn idle_at(&self) -> Cycle {
        self.busy_until
    }

    /// Total cycles the unit has been busy over the run.
    #[must_use]
    pub fn total_busy_cycles(&self) -> u64 {
        self.total_busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processing_time_scales_with_lanes() {
        let mut narrow = SparseUnit::new(4);
        let mut wide = SparseUnit::new(32);
        assert_eq!(narrow.process(0, 64), 16);
        assert_eq!(wide.process(0, 64), 2);
    }

    #[test]
    fn back_to_back_serialises() {
        let mut su = SparseUnit::new(16);
        assert_eq!(su.process(0, 32), 2);
        assert_eq!(su.process(0, 32), 4); // queued behind the first
        assert_eq!(su.total_busy_cycles(), 4);
    }

    #[test]
    fn idle_tracking() {
        let mut su = SparseUnit::new(16);
        assert!(su.is_idle(0));
        su.process(10, 160); // busy 10..20 (reserved from now on)
        assert!(!su.is_idle(15));
        assert!(su.is_idle(20));
        assert_eq!(su.idle_at(), 20);
    }

    #[test]
    fn zero_indices_is_free() {
        let mut su = SparseUnit::new(16);
        assert_eq!(su.process(7, 0), 7);
        assert!(su.is_idle(7));
    }
}
