//! NPU configuration.

use nvr_common::NvrError;

/// Execution discipline of the NPU pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Serial load → compute → store per tile; any vector element miss
    /// stalls everything (the paper's baseline Gemmini behaviour, §II-B).
    #[default]
    InOrder,
    /// Ideal out-of-order: loads for up to `rob_tiles` upcoming tiles issue
    /// while earlier tiles compute, overlapping memory with computation.
    OutOfOrder {
        /// Tile-granular ROB window.
        rob_tiles: usize,
    },
}

/// Configuration of the NPU timing model.
///
/// # Examples
///
/// ```
/// use nvr_npu::NpuConfig;
///
/// let cfg = NpuConfig::default();
/// assert_eq!(cfg.vector_width, 16);
/// cfg.validate()?;
/// # Ok::<(), nvr_common::NvrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NpuConfig {
    /// Execution discipline.
    pub exec: ExecMode,
    /// SIMD lanes / gather elements per vector load (the paper's N=16).
    pub vector_width: usize,
    /// Scratchpad capacity in bytes (Gemmini default: 256 KB).
    pub scratchpad_bytes: u64,
    /// DMA engine throughput, bytes per cycle.
    pub dma_bytes_per_cycle: u64,
    /// Coarse loads the load controller can issue per cycle.
    pub loads_per_cycle: u64,
}

impl NpuConfig {
    /// The configuration with ideal OoO execution, default window.
    #[must_use]
    pub fn out_of_order() -> Self {
        NpuConfig {
            exec: ExecMode::OutOfOrder { rob_tiles: 8 },
            ..NpuConfig::default()
        }
    }

    /// Checks the configuration is realisable.
    ///
    /// # Errors
    ///
    /// Returns [`NvrError::Config`] if any knob is zero.
    pub fn validate(&self) -> Result<(), NvrError> {
        if self.vector_width == 0
            || self.scratchpad_bytes == 0
            || self.dma_bytes_per_cycle == 0
            || self.loads_per_cycle == 0
        {
            return Err(NvrError::Config(
                "NPU configuration values must be non-zero".into(),
            ));
        }
        if let ExecMode::OutOfOrder { rob_tiles } = self.exec {
            if rob_tiles == 0 {
                return Err(NvrError::Config("ROB window must be non-zero".into()));
            }
        }
        Ok(())
    }
}

impl Default for NpuConfig {
    fn default() -> Self {
        NpuConfig {
            exec: ExecMode::InOrder,
            vector_width: 16,
            scratchpad_bytes: 256 * 1024,
            dma_bytes_per_cycle: 32,
            loads_per_cycle: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_valid() {
        NpuConfig::default().validate().expect("default valid");
        NpuConfig::out_of_order().validate().expect("ooo valid");
    }

    #[test]
    fn zero_knobs_rejected() {
        let bad = NpuConfig {
            vector_width: 0,
            ..NpuConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NpuConfig {
            exec: ExecMode::OutOfOrder { rob_tiles: 0 },
            ..NpuConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
