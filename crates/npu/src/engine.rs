//! The cycle-stepped NPU execution engine.

use nvr_common::{Addr, Cycle};
use nvr_mem::{AccessOutcome, MemorySystem};
use nvr_prefetch::Prefetcher;
use nvr_trace::event::PC_TABLE_PROBE;
use nvr_trace::{AccessEvent, EventKind, NpuProgram, SnoopState, TileOp};

use crate::config::{ExecMode, NpuConfig};
use crate::result::RunResult;
use crate::sparse_unit::SparseUnit;
use crate::systolic::SystolicArray;

/// The NPU engine: executes an [`NpuProgram`] against a memory system,
/// driving an attached prefetcher with events and idle windows.
///
/// # Examples
///
/// ```
/// use nvr_npu::{NpuConfig, NpuEngine};
/// use nvr_mem::{MemoryConfig, MemorySystem};
/// use nvr_prefetch::NullPrefetcher;
/// use nvr_trace::{MemoryImage, NpuProgram};
/// use nvr_common::DataWidth;
///
/// let engine = NpuEngine::new(NpuConfig::default());
/// let program = NpuProgram {
///     name: "empty".into(),
///     width: DataWidth::Int8,
///     tiles: vec![],
///     image: MemoryImage::new(),
/// };
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let result = engine.run(&program, &mut mem, &mut NullPrefetcher::new());
/// assert_eq!(result.total_cycles, 0);
/// ```
#[derive(Debug, Clone)]
pub struct NpuEngine {
    cfg: NpuConfig,
    systolic: SystolicArray,
}

/// Mutable per-run accounting shared by the execution modes.
#[derive(Debug, Default)]
struct Counters {
    compute_cycles: u64,
    gather_batches: u64,
    gather_batch_misses: u64,
    gather_elements: u64,
    gather_element_misses: u64,
    index_lines: u64,
    index_line_misses: u64,
}

impl NpuEngine {
    /// Creates an engine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NpuConfig::validate`].
    #[must_use]
    pub fn new(cfg: NpuConfig) -> Self {
        cfg.validate().expect("npu config must be valid");
        NpuEngine {
            cfg,
            systolic: SystolicArray::gemmini_default(),
        }
    }

    /// The configuration this engine was built with.
    #[must_use]
    pub fn config(&self) -> &NpuConfig {
        &self.cfg
    }

    /// The systolic array whose timing this engine assumes; workload
    /// generators should size `compute_cycles` with the same array.
    #[must_use]
    pub fn systolic(&self) -> &SystolicArray {
        &self.systolic
    }

    /// Executes `program` to completion; returns timing and miss counts.
    ///
    /// The prefetcher observes every demand access and receives
    /// [`Prefetcher::advance`] windows covering stall and compute phases.
    pub fn run(
        &self,
        program: &NpuProgram,
        mem: &mut MemorySystem,
        prefetcher: &mut dyn Prefetcher,
    ) -> RunResult {
        match self.cfg.exec {
            ExecMode::InOrder => self.run_in_order(program, mem, prefetcher),
            ExecMode::OutOfOrder { rob_tiles } => {
                self.run_out_of_order(program, mem, prefetcher, rob_tiles)
            }
        }
    }

    fn snoop_for(
        program: &NpuProgram,
        tile: &TileOp,
        index_base: Addr,
        consumed_in_tile: u64,
        load_in_flight: bool,
        sparse_idle: bool,
    ) -> SnoopState {
        let elem_start = tile
            .index_region
            .start()
            .raw()
            .saturating_sub(index_base.raw())
            / 4;
        let elem_end = elem_start + tile.index_count() as u64;
        SnoopState {
            tile: tile.id,
            total_tiles: program.tiles.len(),
            index_base,
            elem_start,
            elem_end,
            elem_consumed: (elem_start + consumed_in_tile).min(elem_end),
            gather: tile.gather,
            npu_load_in_flight: load_in_flight,
            sparse_unit_idle: sparse_idle,
        }
    }

    /// Demand-loads the tile's index slice, emitting per-element events.
    /// Returns the cycle all index data is ready.
    #[allow(clippy::too_many_arguments)]
    fn load_index(
        &self,
        tile: &TileOp,
        program: &NpuProgram,
        snoop: &SnoopState,
        mem: &mut MemorySystem,
        prefetcher: &mut dyn Prefetcher,
        issue_at: Cycle,
        counters: &mut Counters,
    ) -> Cycle {
        let mut ready = issue_at;
        if tile.index_region.is_empty() {
            return ready;
        }
        let values = tile.index_values(&program.image);
        let first_line = tile.index_region.start().line();
        let mut line_missed = Vec::new();
        for (k, line) in tile.index_region.lines().enumerate() {
            let t = issue_at + (k as u64) / self.cfg.loads_per_cycle;
            let r = mem.demand_line(line, t);
            ready = ready.max(r.ready_at);
            counters.index_lines += 1;
            if r.outcome == AccessOutcome::Miss {
                counters.index_line_misses += 1;
            }
            line_missed.push(r.outcome == AccessOutcome::Miss);
        }
        for (p, &v) in values.iter().enumerate() {
            let addr = tile.index_region.start().offset(p as u64 * 4);
            let line_idx = (addr.line().index() - first_line.index()) as usize;
            let ev = AccessEvent::index_load(
                issue_at,
                tile.id,
                addr,
                v,
                line_missed.get(line_idx).copied().unwrap_or(false),
            );
            prefetcher.observe(&ev, snoop, &program.image, mem);
        }
        ready
    }

    /// Demand-loads one gather batch (probes first for two-level chains).
    /// Returns (issue cycle of the element loads, batch-complete cycle).
    #[allow(clippy::too_many_arguments)]
    fn load_batch(
        &self,
        tile: &TileOp,
        program: &NpuProgram,
        snoop: &SnoopState,
        mem: &mut MemorySystem,
        prefetcher: &mut dyn Prefetcher,
        batch: &[nvr_trace::ResolvedGather],
        issue_at: Cycle,
        counters: &mut Counters,
    ) -> (Cycle, Cycle) {
        // Phase 1: table probes (dependency: targets need slot values).
        let mut elem_issue = issue_at;
        let two_level = batch.iter().any(|rg| rg.probe.is_some());
        if two_level {
            let mut probe_ready = issue_at;
            for rg in batch {
                if let Some(probe) = rg.probe {
                    let r = mem.demand_line(probe.line(), issue_at);
                    probe_ready = probe_ready.max(r.ready_at);
                    let ev = AccessEvent {
                        cycle: issue_at,
                        tile: tile.id,
                        pc: PC_TABLE_PROBE,
                        addr: probe,
                        kind: EventKind::TableProbe {
                            value: program.image.read_u32(probe),
                        },
                        missed: r.outcome == AccessOutcome::Miss,
                    };
                    prefetcher.observe(&ev, snoop, &program.image, mem);
                }
            }
            elem_issue = probe_ready;
        }
        // Phase 2: the element loads; the batch retires when all arrive.
        let mut batch_ready = elem_issue + mem.config().min_demand_latency();
        let mut any_missed = false;
        for rg in batch {
            let mut elem_missed = false;
            for line in rg.target.lines() {
                let r = mem.demand_line(line, elem_issue);
                batch_ready = batch_ready.max(r.ready_at);
                if r.outcome == AccessOutcome::Miss {
                    elem_missed = true;
                }
            }
            counters.gather_elements += 1;
            if elem_missed {
                counters.gather_element_misses += 1;
                any_missed = true;
            }
            let ev = AccessEvent::gather(elem_issue, tile.id, rg.target.start(), elem_missed);
            prefetcher.observe(&ev, snoop, &program.image, mem);
        }
        counters.gather_batches += 1;
        if any_missed {
            counters.gather_batch_misses += 1;
        }
        (elem_issue, batch_ready)
    }

    fn finish(
        program: &NpuProgram,
        prefetcher: &dyn Prefetcher,
        mem: &mut MemorySystem,
        total_cycles: Cycle,
        counters: Counters,
    ) -> RunResult {
        mem.finalize();
        RunResult {
            name: program.name.clone(),
            prefetcher: prefetcher.name(),
            total_cycles,
            compute_cycles: counters.compute_cycles,
            gather_batches: counters.gather_batches,
            gather_batch_misses: counters.gather_batch_misses,
            gather_elements: counters.gather_elements,
            gather_element_misses: counters.gather_element_misses,
            index_lines: counters.index_lines,
            index_line_misses: counters.index_line_misses,
            mem: mem.stats(),
            dram_utilisation: mem.dram().utilisation(total_cycles.max(1)),
            channel_utilisation: mem.dram().channel_utilisation(total_cycles.max(1)),
        }
    }

    fn run_in_order(
        &self,
        program: &NpuProgram,
        mem: &mut MemorySystem,
        prefetcher: &mut dyn Prefetcher,
    ) -> RunResult {
        let mut counters = Counters::default();
        let mut spad =
            nvr_mem::Scratchpad::new(self.cfg.scratchpad_bytes, self.cfg.dma_bytes_per_cycle);
        let mut sparse_unit = SparseUnit::new(self.cfg.vector_width);
        let index_base = program
            .tiles
            .first()
            .map_or(Addr::new(0), |t| t.index_region.start());
        let mut cycle: Cycle = 0;
        let mut last_drain: Cycle = 0;

        for tile in &program.tiles {
            let snoop = Self::snoop_for(program, tile, index_base, 0, true, true);
            // Dense operand DMA: engine-side and channel-side in parallel.
            let dma_done = if tile.dma_bytes > 0 {
                let engine_side = spad
                    .dma_in(cycle, tile.dma_bytes.min(self.cfg.scratchpad_bytes))
                    .expect("tile DMA sized within scratchpad");
                let channel_side = mem.dma_read_bytes(cycle, tile.dma_bytes);
                engine_side.max(channel_side)
            } else {
                cycle
            };

            // Index loads.
            let index_ready =
                self.load_index(tile, program, &snoop, mem, prefetcher, cycle, &mut counters);
            prefetcher.advance(cycle, index_ready, &snoop, &program.image, mem);

            // Gather batches: strictly serialised (in-order blocking loads).
            let mut t = index_ready;
            if let Some(g) = tile.gather {
                let resolved = tile.resolved_gathers(&program.image);
                let mut consumed = 0u64;
                for batch in resolved.chunks(g.batch.max(1)) {
                    consumed += batch.len() as u64;
                    // The snooped progress pointer advances with each
                    // issued vector load.
                    let snoop = Self::snoop_for(program, tile, index_base, consumed, true, true);
                    let (issue, ready) = self.load_batch(
                        tile,
                        program,
                        &snoop,
                        mem,
                        prefetcher,
                        batch,
                        t,
                        &mut counters,
                    );
                    // The stall window is runahead opportunity.
                    prefetcher.advance(issue, ready, &snoop, &program.image, mem);
                    t = ready;
                }
            }

            // Compute: sparse unit aligns indices first, then the array runs.
            let compute_start = t.max(dma_done);
            let sparse_done = sparse_unit.process(compute_start, tile.index_count());
            let compute_end = compute_start + tile.compute_cycles;
            counters.compute_cycles += tile.compute_cycles;
            let idle_snoop = Self::snoop_for(
                program,
                tile,
                index_base,
                tile.index_count() as u64,
                false,
                true,
            );
            prefetcher.advance(
                sparse_done.min(compute_end),
                compute_end,
                &idle_snoop,
                &program.image,
                mem,
            );

            // Store: write buffer drains in the background.
            if tile.store_bytes > 0 {
                last_drain = last_drain.max(mem.store_bytes(compute_end, tile.store_bytes));
            }
            cycle = compute_end;
        }
        let total = cycle.max(last_drain);
        Self::finish(program, prefetcher, mem, total, counters)
    }

    fn run_out_of_order(
        &self,
        program: &NpuProgram,
        mem: &mut MemorySystem,
        prefetcher: &mut dyn Prefetcher,
        rob_tiles: usize,
    ) -> RunResult {
        let mut counters = Counters::default();
        let mut spad =
            nvr_mem::Scratchpad::new(self.cfg.scratchpad_bytes, self.cfg.dma_bytes_per_cycle);
        let mut sparse_unit = SparseUnit::new(self.cfg.vector_width);
        let index_base = program
            .tiles
            .first()
            .map_or(Addr::new(0), |t| t.index_region.start());

        let mut load_free: Cycle = 0;
        let mut compute_free: Cycle = 0;
        let mut compute_starts: Vec<Cycle> = Vec::with_capacity(program.tiles.len());
        let mut last_drain: Cycle = 0;

        for (i, tile) in program.tiles.iter().enumerate() {
            let snoop = Self::snoop_for(program, tile, index_base, 0, true, true);
            // ROB gating: tile i's loads wait for tile i-rob_tiles to start.
            let gate = if i >= rob_tiles {
                compute_starts[i - rob_tiles]
            } else {
                0
            };
            let issue_base = load_free.max(gate);

            let dma_done = if tile.dma_bytes > 0 {
                let engine_side = spad
                    .dma_in(issue_base, tile.dma_bytes.min(self.cfg.scratchpad_bytes))
                    .expect("tile DMA sized within scratchpad");
                let channel_side = mem.dma_read_bytes(issue_base, tile.dma_bytes);
                engine_side.max(channel_side)
            } else {
                issue_base
            };

            let index_ready = self.load_index(
                tile,
                program,
                &snoop,
                mem,
                prefetcher,
                issue_base,
                &mut counters,
            );
            prefetcher.advance(issue_base, index_ready, &snoop, &program.image, mem);

            // Gathers: batches issue back-to-back without waiting for the
            // previous batch to complete (non-blocking vector loads).
            let mut data_ready = index_ready;
            let mut issue = index_ready;
            if let Some(g) = tile.gather {
                let resolved = tile.resolved_gathers(&program.image);
                for batch in resolved.chunks(g.batch.max(1)) {
                    let (_elem_issue, ready) = self.load_batch(
                        tile,
                        program,
                        &snoop,
                        mem,
                        prefetcher,
                        batch,
                        issue,
                        &mut counters,
                    );
                    data_ready = data_ready.max(ready);
                    issue += 1; // one vector load per cycle
                }
            }
            load_free = issue.max(issue_base);

            let ready = data_ready.max(dma_done);
            let compute_start = compute_free.max(ready);
            compute_starts.push(compute_start);
            let _sparse_done = sparse_unit.process(compute_start, tile.index_count());
            let compute_end = compute_start + tile.compute_cycles;
            counters.compute_cycles += tile.compute_cycles;
            compute_free = compute_end;

            if tile.store_bytes > 0 {
                last_drain = last_drain.max(mem.store_bytes(compute_end, tile.store_bytes));
            }
        }
        let total = compute_free.max(last_drain);
        Self::finish(program, prefetcher, mem, total, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::{DataWidth, Region};
    use nvr_mem::MemoryConfig;
    use nvr_prefetch::NullPrefetcher;
    use nvr_trace::{GatherDesc, MemoryImage, SparseFunc};

    /// Builds a small gather-heavy program: `tiles` tiles of `per_tile`
    /// indices each, gathering 64-byte rows from a wide IA space.
    fn gather_program(tiles: usize, per_tile: usize, compute: u64) -> NpuProgram {
        let mut image = MemoryImage::new();
        let index_base = Addr::new(0x10_0000);
        let n = tiles * per_tile;
        // Spread indices across a 4 Mi-row space with a deterministic hash.
        let indices: Vec<u32> = (0..n)
            .map(|i| MemoryImage::background(Addr::new(i as u64 * 4)) % (1 << 18))
            .collect();
        image.add_u32_segment(index_base, indices);
        let func = SparseFunc::Affine {
            ia_base: Addr::new(0x1_0000_0000),
            row_bytes: 64,
        };
        let tiles: Vec<TileOp> = (0..tiles)
            .map(|i| TileOp {
                id: i,
                index_region: Region::new(
                    index_base.offset(i as u64 * per_tile as u64 * 4),
                    per_tile as u64 * 4,
                ),
                gather: Some(GatherDesc { func, batch: 16 }),
                dma_bytes: 256,
                compute_cycles: compute,
                store_bytes: 64,
            })
            .collect();
        let prog = NpuProgram {
            name: "unit-gather".into(),
            width: DataWidth::Int8,
            tiles,
            image,
        };
        prog.assert_valid();
        prog
    }

    #[test]
    fn empty_program_is_zero_cycles() {
        let engine = NpuEngine::new(NpuConfig::default());
        let program = NpuProgram {
            name: "empty".into(),
            width: DataWidth::Int8,
            tiles: vec![],
            image: MemoryImage::new(),
        };
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let r = engine.run(&program, &mut mem, &mut NullPrefetcher::new());
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.gather_batches, 0);
    }

    #[test]
    fn cold_gathers_mostly_miss() {
        let engine = NpuEngine::new(NpuConfig::default());
        let program = gather_program(8, 64, 50);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let r = engine.run(&program, &mut mem, &mut NullPrefetcher::new());
        assert_eq!(r.gather_elements, 8 * 64);
        assert!(
            r.element_miss_rate() > 0.9,
            "cold random gathers should miss, rate {}",
            r.element_miss_rate()
        );
        assert_eq!(r.gather_batches, 8 * 4);
        assert!(r.batch_miss_rate() >= r.element_miss_rate());
    }

    #[test]
    fn ideal_memory_gives_base_time() {
        let engine = NpuEngine::new(NpuConfig::default());
        let program = gather_program(8, 64, 50);
        let mut real = MemorySystem::new(MemoryConfig::default());
        let mut ideal = MemorySystem::ideal(MemoryConfig::default());
        let r_real = engine.run(&program, &mut real, &mut NullPrefetcher::new());
        let r_ideal = engine.run(&program, &mut ideal, &mut NullPrefetcher::new());
        assert!(
            r_ideal.total_cycles < r_real.total_cycles / 2,
            "ideal {} vs real {}",
            r_ideal.total_cycles,
            r_real.total_cycles
        );
        assert_eq!(r_ideal.gather_elements, r_real.gather_elements);
    }

    #[test]
    fn ooo_overlaps_memory_and_compute() {
        let program = gather_program(16, 64, 2000);
        let ino = NpuEngine::new(NpuConfig::default());
        let ooo = NpuEngine::new(NpuConfig::out_of_order());
        let mut mem_a = MemorySystem::new(MemoryConfig::default());
        let mut mem_b = MemorySystem::new(MemoryConfig::default());
        let r_ino = ino.run(&program, &mut mem_a, &mut NullPrefetcher::new());
        let r_ooo = ooo.run(&program, &mut mem_b, &mut NullPrefetcher::new());
        assert!(
            r_ooo.total_cycles < r_ino.total_cycles,
            "OoO {} should beat InO {}",
            r_ooo.total_cycles,
            r_ino.total_cycles
        );
    }

    #[test]
    fn repeat_run_hits_warm_cache() {
        // A program whose IA working set fits in L2: second tile pass hits.
        let mut image = MemoryImage::new();
        let index_base = Addr::new(0x10_0000);
        let per_tile = 64usize;
        let tiles_n = 8usize;
        let indices: Vec<u32> = (0..(tiles_n * per_tile))
            .map(|i| (i % 128) as u32) // only 128 distinct rows = 8 KB
            .collect();
        image.add_u32_segment(index_base, indices);
        let func = SparseFunc::Affine {
            ia_base: Addr::new(0x1_0000_0000),
            row_bytes: 64,
        };
        let tiles: Vec<TileOp> = (0..tiles_n)
            .map(|i| TileOp {
                id: i,
                index_region: Region::new(
                    index_base.offset(i as u64 * per_tile as u64 * 4),
                    per_tile as u64 * 4,
                ),
                gather: Some(GatherDesc { func, batch: 16 }),
                dma_bytes: 0,
                compute_cycles: 10,
                store_bytes: 0,
            })
            .collect();
        let program = NpuProgram {
            name: "warm".into(),
            width: DataWidth::Int8,
            tiles,
            image,
        };
        let engine = NpuEngine::new(NpuConfig::default());
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let r = engine.run(&program, &mut mem, &mut NullPrefetcher::new());
        // 128 distinct lines cold-miss once; the rest of the 512 gathers hit.
        assert!(r.gather_element_misses <= 128 + 8);
        assert!(r.element_miss_rate() < 0.3);
    }

    #[test]
    fn two_level_gathers_probe_and_fetch() {
        let mut image = MemoryImage::new();
        let index_base = Addr::new(0x10_0000);
        let table_base = Addr::new(0x20_0000);
        image.add_u32_segment(index_base, (0..64).collect());
        image.add_u32_segment(table_base, (0..64).map(|b| (b * 7) % 64).collect());
        let func = SparseFunc::TableLookup {
            table_base,
            ia_base: Addr::new(0x1_0000_0000),
            row_bytes: 64,
        };
        let program = NpuProgram {
            name: "2lvl".into(),
            width: DataWidth::Int8,
            tiles: vec![TileOp {
                id: 0,
                index_region: Region::new(index_base, 64 * 4),
                gather: Some(GatherDesc { func, batch: 16 }),
                dma_bytes: 0,
                compute_cycles: 10,
                store_bytes: 0,
            }],
            image,
        };
        let engine = NpuEngine::new(NpuConfig::default());
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let r = engine.run(&program, &mut mem, &mut NullPrefetcher::new());
        // Probes hit the table lines (1 KB), targets hit 64 distinct rows.
        assert_eq!(r.gather_elements, 64);
        assert!(r.total_cycles > 2 * 164, "two serialised memory levels");
    }

    #[test]
    fn stall_dominates_for_io_bound_inorder() {
        let engine = NpuEngine::new(NpuConfig::default());
        let program = gather_program(16, 64, 10); // tiny compute
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let r = engine.run(&program, &mut mem, &mut NullPrefetcher::new());
        assert!(
            r.memory_bound_fraction() > 0.8,
            "IO-bound fraction {}",
            r.memory_bound_fraction()
        );
    }
}
