//! Gemmini-like NPU timing model.
//!
//! Reproduces the baseline accelerator of §IV-A: a systolic-array NPU with
//! an explicitly managed scratchpad, decoupled load/execute/store
//! controllers, a coarse-grained instruction stream, and a basic sparse
//! operators unit. Two execution modes mirror the paper's comparison
//! points:
//!
//! * **in-order** — load and compute serialise; a cache miss in any vector
//!   element stalls the whole pipeline (§II-B);
//! * **ideal out-of-order** — loads of upcoming tiles issue while earlier
//!   tiles compute, bounded by a ROB-like tile window; the paper's
//!   "ideal OoO Gemmini" that still underperforms on IO-bound workloads.
//!
//! The engine drives a [`nvr_prefetch::Prefetcher`] with demand events and
//! idle windows, which is where NVR (and the baselines) do their work.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod engine;
pub mod result;
pub mod sparse_unit;
pub mod systolic;

pub use config::{ExecMode, NpuConfig};
pub use engine::NpuEngine;
pub use result::RunResult;
pub use sparse_unit::SparseUnit;
pub use systolic::SystolicArray;
