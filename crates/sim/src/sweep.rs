//! Batched, parallel sweep running.
//!
//! The figure harnesses all reduce to the same shape of work: a grid of
//! independent `run_system` calls over workloads x systems x scales x
//! widths x seeds. This module names that shape ([`SweepSpec`] /
//! [`SweepJob`]), fans it out over a fixed std-only thread pool
//! ([`pool`]), and collects the outcomes into a keyed, timed
//! [`SweepResults`] table. Jobs are fully self-contained (each builds its
//! own program from the seed), so a sweep at `jobs = N` is bit-identical
//! to `jobs = 1` — the precondition for trusting parallel regeneration.
//!
//! Figure drivers whose runs are not plain grid cells (custom programs,
//! per-cell prefetcher configs) fan out through [`run_batch`] instead,
//! which is the same ordered pool under arbitrary closures.
//!
//! # Examples
//!
//! ```
//! use nvr_sim::sweep::{run_sweep, SweepSpec};
//! use nvr_sim::SystemKind;
//! use nvr_workloads::{Scale, WorkloadId};
//!
//! let spec = SweepSpec {
//!     workloads: vec![WorkloadId::Ds],
//!     systems: vec![SystemKind::InOrder, SystemKind::Nvr],
//!     scales: vec![Scale::Tiny],
//!     ..SweepSpec::default()
//! };
//! let results = run_sweep(&spec, 2);
//! assert_eq!(results.cells.len(), 2);
//! ```

pub mod pool;

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use nvr_common::DataWidth;
use nvr_mem::MemoryConfig;
use nvr_trace::NpuProgram;
use nvr_workloads::{Scale, TileOrder, WorkloadId, WorkloadSpec};

use crate::report::{fmt3, Table};
use crate::runner::{run_system_tuned, RunOutcome, SystemKind};

/// Seed the experiment harnesses default to (kept in sync with
/// `nvr_bench::EXPERIMENT_SEED`).
pub const DEFAULT_SEED: u64 = 2025;

/// The cartesian sweep specification: every combination of the five axes
/// becomes one [`SweepJob`].
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Workload axis.
    pub workloads: Vec<WorkloadId>,
    /// System axis.
    pub systems: Vec<SystemKind>,
    /// Problem-size axis.
    pub scales: Vec<Scale>,
    /// Tile-order axis: the graph workloads' node-visit schedule
    /// ([`TileOrder`]); non-graph workloads build identically under every
    /// order, so single-order sweeps should stick to the default.
    pub orders: Vec<TileOrder>,
    /// Operand-width axis.
    pub widths: Vec<DataWidth>,
    /// RNG-seed axis (scenario diversity).
    pub seeds: Vec<u64>,
    /// NSB-admission override shared by every cell: `Some(t)` forces the
    /// NVR-family `nsb_admit_min_reuse` to `t` (0 = pure-LRU NSB), `None`
    /// keeps the calibrated default.
    pub nsb_admit: Option<u32>,
    /// Memory system shared by every cell.
    pub mem_cfg: MemoryConfig,
}

impl Default for SweepSpec {
    /// The full evaluation grid at one width, one seed, default scale.
    fn default() -> Self {
        SweepSpec {
            workloads: WorkloadId::ALL.to_vec(),
            systems: SystemKind::ALL.to_vec(),
            scales: vec![Scale::Default],
            orders: vec![TileOrder::Natural],
            widths: vec![DataWidth::Fp16],
            seeds: vec![DEFAULT_SEED],
            nsb_admit: None,
            mem_cfg: MemoryConfig::default(),
        }
    }
}

impl SweepSpec {
    /// Builds the cartesian product of the six axes, in deterministic
    /// row-major order (workload outermost, seed innermost).
    #[must_use]
    pub fn jobs(&self) -> Vec<SweepJob> {
        let mut out = Vec::with_capacity(
            self.workloads.len()
                * self.systems.len()
                * self.scales.len()
                * self.orders.len()
                * self.widths.len()
                * self.seeds.len(),
        );
        for &workload in &self.workloads {
            for &system in &self.systems {
                for &scale in &self.scales {
                    for &order in &self.orders {
                        for &width in &self.widths {
                            for &seed in &self.seeds {
                                out.push(SweepJob {
                                    workload,
                                    system,
                                    scale,
                                    order,
                                    width,
                                    seed,
                                    nsb_admit: self.nsb_admit,
                                    mem_cfg: self.mem_cfg.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One fully-specified cell of the sweep grid.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Workload to build.
    pub workload: WorkloadId,
    /// System to run it under.
    pub system: SystemKind,
    /// Problem size.
    pub scale: Scale,
    /// Graph-workload node-visit order.
    pub order: TileOrder,
    /// Operand width.
    pub width: DataWidth,
    /// Program seed.
    pub seed: u64,
    /// NSB-admission override for the NVR-family systems.
    pub nsb_admit: Option<u32>,
    /// Memory system configuration.
    pub mem_cfg: MemoryConfig,
}

impl SweepJob {
    /// Stable lookup/reporting key, e.g. `DS/NVR/default/natural/FP16/2025`.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}/{}",
            self.workload.short(),
            self.system.label(),
            self.scale,
            self.order,
            self.width,
            self.seed
        )
    }

    /// Runs the cell: builds the program from the seed and simulates it.
    #[must_use]
    pub fn run(&self) -> RunOutcome {
        let spec = WorkloadSpec {
            width: self.width,
            seed: self.seed,
            scale: self.scale,
            order: self.order,
        };
        let program = self.workload.build(&spec);
        self.run_with_program(&program)
    }

    /// Runs the cell against a pre-built `program` (which must be the
    /// job's own (workload, scale, order, width, seed) build). The sweep
    /// uses this to build each unique program once and share it across the
    /// system axis instead of regenerating it per cell.
    #[must_use]
    pub fn run_with_program(&self, program: &NpuProgram) -> RunOutcome {
        run_system_tuned(program, &self.mem_cfg, self.system, self.nsb_admit)
    }
}

/// One finished cell: the job, its outcome, and how long it took on the
/// wall clock (host-dependent; excluded from the deterministic outputs).
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The job that ran.
    pub job: SweepJob,
    /// Its simulation outcome.
    pub outcome: RunOutcome,
    /// Host wall-clock time of the cell.
    pub wall: Duration,
}

/// The keyed result table of one sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepResults {
    /// All cells, in the spec's deterministic job order.
    pub cells: Vec<SweepCell>,
    /// Worker count the sweep ran with (context for the timing CSV; never
    /// part of the deterministic outputs).
    pub jobs: usize,
    /// End-to-end wall clock of the whole sweep.
    pub wall: Duration,
}

impl SweepResults {
    /// Looks a cell up by its grid coordinates.
    #[must_use]
    pub fn get(
        &self,
        workload: WorkloadId,
        system: SystemKind,
        scale: Scale,
        order: TileOrder,
        width: DataWidth,
        seed: u64,
    ) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.job.workload == workload
                && c.job.system == system
                && c.job.scale == scale
                && c.job.order == order
                && c.job.width == width
                && c.job.seed == seed
        })
    }

    /// Speedup of `system` over the in-order baseline of the same
    /// (workload, scale, order, width, seed) cell, when both are in the
    /// table. The baseline shares the cell's tile order: an order is a
    /// compile-time schedule available to every system, so its intrinsic
    /// locality benefit accrues to the baseline too and the ratio isolates
    /// what the prefetcher adds on top.
    #[must_use]
    pub fn speedup_vs_inorder(&self, cell: &SweepCell) -> Option<f64> {
        let j = &cell.job;
        let base = self.get(
            j.workload,
            SystemKind::InOrder,
            j.scale,
            j.order,
            j.width,
            j.seed,
        )?;
        Some(
            base.outcome.result.total_cycles as f64
                / cell.outcome.result.total_cycles.max(1) as f64,
        )
    }

    /// Mean speedup and 95% CI half-width of `cell`'s seed group — every
    /// cell sharing its (workload, system, scale, order, width) across the
    /// sweep's seed axis. `None` when no cell of the group has an
    /// in-order baseline; the half-width is 0 for a single seed.
    #[must_use]
    pub fn speedup_stats(&self, cell: &SweepCell) -> Option<(f64, f64)> {
        let j = &cell.job;
        let speedups: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| {
                c.job.workload == j.workload
                    && c.job.system == j.system
                    && c.job.scale == j.scale
                    && c.job.order == j.order
                    && c.job.width == j.width
            })
            .filter_map(|c| self.speedup_vs_inorder(c))
            .collect();
        if speedups.is_empty() {
            None
        } else {
            Some(nvr_common::mean_ci95(&speedups))
        }
    }

    /// Deterministic CSV of the numeric results (no wall-clock columns, so
    /// `jobs = 1` and `jobs = N` emit identical bytes). The trailing
    /// column groups:
    ///
    /// * `pf_timely..pf_qd_p95` — measured per-prefetch outcomes (zero
    ///   for systems without lifetime tracking) plus the DRAM channel
    ///   queue-delay p50/p95 of all accepted speculative fills;
    /// * `channels,ch_util_mean,ch_util_max` — DRAM channel count and
    ///   per-channel utilisation summary of the timed run;
    /// * `speedup,speedup_mean,speedup_ci95` — speedup vs the in-order
    ///   baseline cell (`-` when the sweep has none) and its mean ± 95%
    ///   CI across the seed axis (the half-width is 0 for one seed).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "workload,system,scale,order,width,seed,cycles,base_cycles,\
             l2_demand_misses,l2_demand_hits,dram_demand_lines,\
             prefetch_issued,prefetch_useful,prefetch_late,\
             pf_timely,pf_late,pf_evicted_unused,pf_slack_mean,\
             pf_qd_p50,pf_qd_p95,channels,ch_util_mean,ch_util_max,\
             speedup,speedup_mean,speedup_ci95\n",
        );
        for c in &self.cells {
            let m = &c.outcome.result.mem;
            let t = c.outcome.timeliness.clone().unwrap_or_default();
            let util = c.outcome.channel_utilisation();
            let util_mean = nvr_common::mean(util);
            let util_max = c.outcome.result.max_channel_utilisation();
            let qd = m.dram.queue_delay_merged();
            let speedup = self
                .speedup_vs_inorder(c)
                .map_or_else(|| "-".into(), |s| format!("{s:.3}"));
            let (sp_mean, sp_ci) = self.speedup_stats(c).map_or_else(
                || ("-".into(), "-".into()),
                |(m, ci)| (format!("{m:.3}"), format!("{ci:.3}")),
            );
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{},{},{},{:.3},{:.3},{},{},{}\n",
                c.job.workload.short(),
                c.job.system.label(),
                c.job.scale,
                c.job.order,
                c.job.width,
                c.job.seed,
                c.outcome.result.total_cycles,
                c.outcome.base_cycles,
                m.l2.demand_misses.get(),
                m.l2.demand_hits.get(),
                m.dram.demand_lines.get(),
                m.l2.prefetch_issued.get(),
                m.l2.prefetch_useful.get(),
                m.l2.prefetch_late.get(),
                t.timely,
                t.late,
                t.evicted_unused,
                t.slack.mean(),
                qd.percentile(0.5),
                qd.percentile(0.95),
                util.len(),
                util_mean,
                util_max,
                speedup,
                sp_mean,
                sp_ci,
            ));
        }
        out
    }

    /// Per-cell wall-clock CSV (host-dependent; keep out of diffs). The
    /// leading `#` comment line records the worker count, the scale axis,
    /// and the git revision (`NVR_GIT_REV`, falling back to CI's
    /// `GITHUB_SHA`), so archived timing CSVs from different runs are
    /// comparable.
    #[must_use]
    pub fn timing_csv(&self) -> String {
        let rev = std::env::var("NVR_GIT_REV")
            .or_else(|_| std::env::var("GITHUB_SHA"))
            .unwrap_or_else(|_| "unknown".into());
        let mut scales: Vec<String> = Vec::new();
        for c in &self.cells {
            let s = c.job.scale.to_string();
            if !scales.contains(&s) {
                scales.push(s);
            }
        }
        let mut out = format!(
            "# jobs={} scales={} git_rev={}\n",
            self.jobs,
            if scales.is_empty() {
                "-".into()
            } else {
                scales.join("+")
            },
            rev
        );
        out.push_str("key,wall_us\n");
        for c in &self.cells {
            out.push_str(&format!("{},{}\n", c.job.key(), c.wall.as_micros()));
        }
        out.push_str(&format!("total,{}\n", self.wall.as_micros()));
        out
    }
}

impl fmt::Display for SweepResults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Sweep — {} cells", self.cells.len())?;
        let mut t = Table::new(vec![
            "workload".into(),
            "system".into(),
            "scale".into(),
            "order".into(),
            "width".into(),
            "seed".into(),
            "cycles".into(),
            "stall".into(),
            "l2 misses".into(),
            "speedup".into(),
        ]);
        for c in &self.cells {
            t.row(vec![
                c.job.workload.short().into(),
                c.job.system.label().into(),
                c.job.scale.to_string(),
                c.job.order.to_string(),
                c.job.width.to_string(),
                c.job.seed.to_string(),
                c.outcome.result.total_cycles.to_string(),
                c.outcome.stall_cycles().to_string(),
                c.outcome.result.mem.l2.demand_misses.get().to_string(),
                self.speedup_vs_inorder(c)
                    .map_or_else(|| "-".into(), |s| format!("{}x", fmt3(s))),
            ]);
        }
        write!(f, "{t}")?;
        // Multi-seed sweeps get a per-group aggregate: mean ± 95% CI of
        // the speedup across the seed axis.
        let mut seen: Vec<(&SweepCell, usize)> = Vec::new();
        for c in &self.cells {
            let group = |a: &SweepJob, b: &SweepJob| {
                a.workload == b.workload
                    && a.system == b.system
                    && a.scale == b.scale
                    && a.order == b.order
                    && a.width == b.width
            };
            match seen.iter_mut().find(|(rep, _)| group(&rep.job, &c.job)) {
                Some((_, n)) => *n += 1,
                None => seen.push((c, 1)),
            }
        }
        if seen.iter().any(|(_, n)| *n > 1) {
            writeln!(f, "\nSeed aggregate — speedup mean ± 95% CI")?;
            let mut agg = Table::new(vec![
                "workload".into(),
                "system".into(),
                "scale".into(),
                "order".into(),
                "width".into(),
                "seeds".into(),
                "speedup".into(),
            ]);
            for (rep, n) in &seen {
                let cell = self.speedup_stats(rep).map_or_else(
                    || "-".into(),
                    |(m, ci)| format!("{}x ± {}", fmt3(m), fmt3(ci)),
                );
                agg.row(vec![
                    rep.job.workload.short().into(),
                    rep.job.system.label().into(),
                    rep.job.scale.to_string(),
                    rep.job.order.to_string(),
                    rep.job.width.to_string(),
                    n.to_string(),
                    cell,
                ]);
            }
            write!(f, "\n{agg}")?;
        }
        Ok(())
    }
}

/// Runs every cell of `spec` over `jobs` workers.
///
/// Program construction is deduplicated: the system axis reuses one build
/// per (workload, scale, order, width, seed) point — builds are pure
/// functions of those axes, so sharing is output-invariant, and on the
/// full seven-system grid it removes six of every seven builds.
#[must_use]
pub fn run_sweep(spec: &SweepSpec, jobs: usize) -> SweepResults {
    // nvr-lint: allow(determinism/wall-clock) reason="sweep-level wall clock feeds only timing_csv, never a simulation result"
    let t0 = Instant::now();
    let grid = spec.jobs();
    // Map every job to its unique program point, in first-encounter order.
    let mut unique: Vec<(WorkloadId, Scale, TileOrder, DataWidth, u64)> = Vec::new();
    let mut prog_idx = Vec::with_capacity(grid.len());
    for job in &grid {
        let key = (job.workload, job.scale, job.order, job.width, job.seed);
        let idx = unique.iter().position(|&k| k == key).unwrap_or_else(|| {
            unique.push(key);
            unique.len() - 1
        });
        prog_idx.push(idx);
    }
    let builders: Vec<_> = unique
        .into_iter()
        .map(|(workload, scale, order, width, seed)| {
            move || {
                Arc::new(workload.build(&WorkloadSpec {
                    width,
                    seed,
                    scale,
                    order,
                }))
            }
        })
        .collect();
    let programs = pool::run_ordered(builders, jobs);
    let tasks: Vec<_> = grid
        .into_iter()
        .zip(prog_idx)
        .map(|(job, idx)| {
            let program = Arc::clone(&programs[idx]);
            move || {
                // nvr-lint: allow(determinism/wall-clock) reason="per-cell wall clock lands in SweepCell::wall, excluded from deterministic CSVs"
                let cell_t0 = Instant::now();
                let outcome = job.run_with_program(&program);
                SweepCell {
                    job,
                    outcome,
                    wall: cell_t0.elapsed(),
                }
            }
        })
        .collect();
    let cells = pool::run_ordered(tasks, jobs);
    SweepResults {
        cells,
        jobs,
        wall: t0.elapsed(),
    }
}

/// Fans arbitrary independent simulation closures out over the pool,
/// preserving submission order — the entry point for figure drivers whose
/// runs are not plain grid cells.
#[must_use]
pub fn run_batch<T, F>(tasks: Vec<F>, jobs: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    pool::run_ordered(tasks, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            workloads: vec![WorkloadId::Ds, WorkloadId::St],
            systems: vec![SystemKind::InOrder, SystemKind::Nvr],
            scales: vec![Scale::Tiny],
            widths: vec![DataWidth::Int8],
            seeds: vec![7],
            ..SweepSpec::default()
        }
    }

    #[test]
    fn cartesian_product_order_and_keys() {
        let spec = tiny_spec();
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 4);
        let keys: Vec<String> = jobs.iter().map(SweepJob::key).collect();
        assert_eq!(
            keys,
            [
                "DS/InO/tiny/natural/INT8/7",
                "DS/NVR/tiny/natural/INT8/7",
                "ST/InO/tiny/natural/INT8/7",
                "ST/NVR/tiny/natural/INT8/7",
            ]
        );
    }

    #[test]
    fn sweep_collects_every_cell_and_speedups() {
        let results = run_sweep(&tiny_spec(), 2);
        assert_eq!(results.cells.len(), 4);
        let nvr = results
            .get(
                WorkloadId::Ds,
                SystemKind::Nvr,
                Scale::Tiny,
                TileOrder::Natural,
                DataWidth::Int8,
                7,
            )
            .expect("cell present");
        let speedup = results.speedup_vs_inorder(nvr).expect("baseline present");
        assert!(speedup >= 1.0, "NVR should not lose to InO ({speedup})");
        // The InO cell's own speedup is exactly 1.
        let ino = results
            .get(
                WorkloadId::Ds,
                SystemKind::InOrder,
                Scale::Tiny,
                TileOrder::Natural,
                DataWidth::Int8,
                7,
            )
            .expect("cell present");
        assert_eq!(results.speedup_vs_inorder(ino), Some(1.0));
    }

    #[test]
    fn csv_is_numeric_only_and_stable() {
        let spec = SweepSpec {
            workloads: vec![WorkloadId::Ds],
            systems: vec![SystemKind::InOrder],
            ..tiny_spec()
        };
        let a = run_sweep(&spec, 1).to_csv();
        let b = run_sweep(&spec, 4).to_csv();
        assert_eq!(a, b, "jobs=1 and jobs=4 CSVs must be identical");
        assert!(a.starts_with("workload,system,scale,order,width,seed,cycles"));
        let header = a.lines().next().expect("header");
        for col in ["ch_util_mean", "pf_qd_p50", "speedup_ci95", "channels"] {
            assert!(header.contains(col), "missing CSV column {col}");
        }
    }

    #[test]
    fn multi_seed_aggregate_reports_mean_and_ci() {
        let spec = SweepSpec {
            workloads: vec![WorkloadId::Ds],
            systems: vec![SystemKind::InOrder, SystemKind::Nvr],
            scales: vec![Scale::Tiny],
            widths: vec![DataWidth::Int8],
            seeds: vec![1, 2, 3],
            ..SweepSpec::default()
        };
        let results = run_sweep(&spec, 2);
        let nvr = results
            .get(
                WorkloadId::Ds,
                SystemKind::Nvr,
                Scale::Tiny,
                TileOrder::Natural,
                DataWidth::Int8,
                2,
            )
            .expect("cell present");
        let (mean, ci) = results.speedup_stats(nvr).expect("stats present");
        assert!(mean > 1.0, "mean speedup {mean}");
        assert!(ci >= 0.0);
        // Every cell of the group reports the same aggregate.
        let other = results
            .get(
                WorkloadId::Ds,
                SystemKind::Nvr,
                Scale::Tiny,
                TileOrder::Natural,
                DataWidth::Int8,
                3,
            )
            .expect("cell present");
        assert_eq!(results.speedup_stats(other), Some((mean, ci)));
        // The rendition carries the aggregate section.
        let text = results.to_string();
        assert!(text.contains("Seed aggregate"), "{text}");
        // And the CSV repeats mean/ci per cell of the group.
        let csv = results.to_csv();
        let line = csv
            .lines()
            .find(|l| l.starts_with("DS,NVR") && l.contains(",2,"))
            .expect("NVR row");
        assert!(line.contains(&format!("{mean:.3}")));
    }
}
