//! A minimal fixed thread pool built on `std::thread::scope`.
//!
//! The registry is unreachable in this workspace (no rayon), so this is the
//! smallest std-only fan-out that preserves determinism: results come back
//! in submission order regardless of worker count or OS scheduling, which
//! is what lets `jobs = 1` and `jobs = N` sweeps be bit-identical.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-task cell: holds the closure until a worker claims it, then the
/// result until the pool drains.
enum Slot<T, F> {
    Empty,
    Task(F),
    Done(T),
}

/// Runs `tasks` on up to `workers` OS threads and returns the results in
/// submission order.
///
/// Work is claimed through an atomic cursor, so heterogeneous job lengths
/// load-balance dynamically; each result lands back in its submission
/// slot, so ordering never depends on completion time. `workers <= 1` (or
/// a single task) degenerates to a serial loop with no threads spawned.
///
/// A panicking task aborts the whole batch (the scope re-raises the panic
/// once all workers have joined) — simulation jobs are deterministic, so a
/// panic is a programming error, not a per-cell condition to report.
pub fn run_ordered<T, F>(tasks: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if workers <= 1 || n <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let slots: Vec<Mutex<Slot<T, F>>> = tasks
        .into_iter()
        .map(|f| Mutex::new(Slot::Task(f)))
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = {
                    let mut slot = slots[i].lock().expect("pool slot poisoned");
                    match std::mem::replace(&mut *slot, Slot::Empty) {
                        Slot::Task(f) => f,
                        _ => unreachable!("slot {i} claimed twice"),
                    }
                };
                let result = task();
                *slots[i].lock().expect("pool slot poisoned") = Slot::Done(result);
            });
        }
    });
    slots
        .into_iter()
        .map(
            |slot| match slot.into_inner().expect("pool slot poisoned") {
                Slot::Done(t) => t,
                _ => unreachable!("task not run"),
            },
        )
        .collect()
}

/// A sensible default worker count: the host's available parallelism.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        // Tasks deliberately finish out of order (later tasks are cheaper).
        let tasks: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    let mut acc = 0u64;
                    for k in 0..(32 - i) * 1000 {
                        acc = acc.wrapping_add(k ^ i);
                    }
                    (i, acc)
                }
            })
            .collect();
        let serial: Vec<_> = (0..32u64)
            .map(|i| {
                let mut acc = 0u64;
                for k in 0..(32 - i) * 1000 {
                    acc = acc.wrapping_add(k ^ i);
                }
                (i, acc)
            })
            .collect();
        let parallel = run_ordered(tasks, 4);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn serial_path_matches_parallel_path() {
        let mk = || (0..8).map(|i| move || i * i).collect::<Vec<_>>();
        assert_eq!(run_ordered(mk(), 1), run_ordered(mk(), 8));
    }

    #[test]
    fn empty_and_oversubscribed() {
        let empty: Vec<fn() -> u32> = vec![];
        assert!(run_ordered(empty, 4).is_empty());
        // More workers than tasks: the pool clamps.
        let out = run_ordered(vec![|| 1, || 2], 64);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
