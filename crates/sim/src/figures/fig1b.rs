//! Fig. 1b — motivation: parameter reduction vs actual speedup.
//!
//! Sweeping the Double-Sparsity keep ratio from 1x (dense window) to 16x,
//! the paper observes that a 16x parameter reduction yields only ~5x actual
//! speedup on the in-order NPU: cache misses on the surviving irregular
//! gathers eat the algorithmic gain.

use std::fmt;

use nvr_mem::MemoryConfig;
use nvr_workloads::double_sparsity;
use nvr_workloads::{Scale, TileOrder, WorkloadSpec};

use crate::report::{fmt3, Table};
use crate::runner::{run_system, SystemKind};
use crate::sweep::run_batch;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Parameter-reduction factor (keep 1 in `ratio`).
    pub ratio: usize,
    /// Total cycles on the in-order NPU.
    pub cycles: u64,
    /// Speedup relative to the dense (ratio = 1) run.
    pub speedup: f64,
    /// Off-chip demand lines fetched.
    pub offchip_lines: u64,
}

/// The Fig. 1b data set.
#[derive(Debug, Clone)]
pub struct Fig1b {
    /// Sweep points in increasing ratio order.
    pub points: Vec<Point>,
}

impl Fig1b {
    /// The paper's headline observation: speedup at 16x reduction.
    #[must_use]
    pub fn speedup_at_16x(&self) -> f64 {
        self.points
            .iter()
            .find(|p| p.ratio == 16)
            .map_or(0.0, |p| p.speedup)
    }
}

/// Runs the ratio sweep at the given scale and seed on `jobs` workers.
/// Each ratio is one independent sweep job (its own program build + run).
#[must_use]
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Fig1b {
    let ratios = [1usize, 2, 4, 8, 16];
    let tasks: Vec<_> = ratios
        .iter()
        .map(|&ratio| {
            move || {
                let spec = WorkloadSpec {
                    width: nvr_common::DataWidth::Fp16,
                    seed,
                    scale,
                    order: TileOrder::Natural,
                };
                let program = double_sparsity::build_with_ratio(&spec, ratio);
                run_system(&program, &MemoryConfig::default(), SystemKind::InOrder)
            }
        })
        .collect();
    let outcomes = run_batch(tasks, jobs);
    let dense = outcomes[0].result.total_cycles;
    let points = ratios
        .iter()
        .zip(&outcomes)
        .map(|(&ratio, outcome)| {
            let cycles = outcome.result.total_cycles;
            Point {
                ratio,
                cycles,
                speedup: dense as f64 / cycles.max(1) as f64,
                offchip_lines: outcome.result.mem.demand_offchip_lines(),
            }
        })
        .collect();
    Fig1b { points }
}

/// Runs the sweep single-threaded.
#[must_use]
pub fn run(scale: Scale, seed: u64) -> Fig1b {
    run_jobs(scale, seed, 1)
}

impl fmt::Display for Fig1b {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 1b — sparse KV-cache: parameter reduction vs actual speedup (InO NPU)"
        )?;
        let mut t = Table::new(vec![
            "reduction".into(),
            "cycles".into(),
            "speedup".into(),
            "off-chip lines".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                format!("{}x", p.ratio),
                p.cycles.to_string(),
                format!("{}x", fmt3(p.speedup)),
                p.offchip_lines.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_saturates_below_reduction() {
        let data = run(Scale::Tiny, 3);
        assert_eq!(data.points.len(), 5);
        let p16 = data.speedup_at_16x();
        assert!(p16 > 1.5, "sparsity should speed things up ({p16})");
        assert!(
            p16 < 12.0,
            "misses should keep speedup well below 16x ({p16})"
        );
        // Beyond the latency-serialisation break-even (2x), rising sparsity
        // must keep paying off. (At 2x, scattered latency-bound gathers can
        // cost as much as the bandwidth-bound dense window — the break-even
        // the paper's Fig. 1b starts from.)
        for w in data.points.windows(2).skip(1) {
            assert!(
                w[1].cycles <= w[0].cycles,
                "{}x -> {}x should not slow down",
                w[0].ratio,
                w[1].ratio
            );
        }
    }
}
