//! Fig. 6 — prefetcher accuracy (a), coverage (b) and data-movement
//! optimisation (c).
//!
//! Accuracy and coverage per workload for the four prefetchers; panel (c)
//! reports off-chip demand traffic during actual load execution for InO,
//! NVR and NVR+NSB (the paper's 30x / further 5x reductions).

use std::fmt;

use nvr_common::DataWidth;
use nvr_workloads::{Scale, TileOrder, WorkloadId};

use crate::metrics::{coverage, pollution};
use crate::report::{fmt3, Table};
use crate::runner::SystemKind;
use crate::sweep::{run_sweep, SweepSpec};

/// Accuracy/coverage of one (workload, prefetcher) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct AccCov {
    /// Workload short name.
    pub workload: &'static str,
    /// Prefetcher label.
    pub system: &'static str,
    /// Prefetch accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Miss coverage in `[0, 1]` (clamped — see [`coverage`]).
    pub coverage: f64,
    /// Signed miss delta vs no prefetching: positive means the prefetcher
    /// *added* misses (see [`pollution`]) — the case the clamped coverage
    /// column cannot distinguish from "did nothing".
    pub pollution: f64,
    /// Measured late fraction of used prefetches (issue→use slack ran past
    /// the fill), for systems that track prefetch lifetimes (NVR). The
    /// full slack distribution is the fig. 6b′ driver's subject.
    pub late_fraction: Option<f64>,
    /// Busiest DRAM channel's utilisation of the run — the saturation
    /// signal behind the residual-gap analysis (GCN runs near 0.9).
    pub channel_util: f64,
}

/// Panel (c): data-movement split of one system.
#[derive(Debug, Clone, PartialEq)]
pub struct Movement {
    /// System label ("InO", "NVR", "NVR+NSB").
    pub system: String,
    /// Off-chip demand lines during actual loads.
    pub offchip_lines: u64,
    /// On-chip (cache-hit) demand accesses.
    pub onchip_hits: u64,
}

/// The Fig. 6 data set.
#[derive(Debug, Clone, Default)]
pub struct Fig6 {
    /// Accuracy/coverage cells (a, b).
    pub cells: Vec<AccCov>,
    /// Data movement panel (c).
    pub movement: Vec<Movement>,
}

impl Fig6 {
    /// Average accuracy of one prefetcher across workloads.
    #[must_use]
    pub fn avg_accuracy(&self, system: &str) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.system == system)
            .map(|c| c.accuracy)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Average coverage of one prefetcher across workloads.
    #[must_use]
    pub fn avg_coverage(&self, system: &str) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.system == system)
            .map(|c| c.coverage)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Average busiest-channel utilisation of one prefetcher across
    /// workloads.
    #[must_use]
    pub fn avg_channel_util(&self, system: &str) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.system == system)
            .map(|c| c.channel_util)
            .collect();
        nvr_common::mean(&vals)
    }

    /// Off-chip reduction factor of NVR vs InO (panel c).
    #[must_use]
    pub fn nvr_offchip_reduction(&self) -> f64 {
        let find = |name: &str| {
            self.movement
                .iter()
                .find(|m| m.system == name)
                .map_or(0, |m| m.offchip_lines)
        };
        let ino = find("InO");
        let nvr = find("NVR").max(1);
        ino as f64 / nvr as f64
    }

    /// Additional off-chip reduction of the NSB on top of NVR (panel c).
    #[must_use]
    pub fn nsb_extra_reduction(&self) -> f64 {
        let find = |name: &str| {
            self.movement
                .iter()
                .find(|m| m.system == name)
                .map_or(0, |m| m.offchip_lines)
        };
        let nvr = find("NVR");
        let nsb = find("NVR+NSB").max(1);
        nvr as f64 / nsb as f64
    }
}

/// Runs accuracy/coverage for every workload and prefetcher, plus the
/// movement panel on the DS workload, over `jobs` workers.
#[must_use]
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Fig6 {
    run_jobs_with_workloads(scale, seed, jobs, &WorkloadId::ALL)
}

/// Single-threaded convenience wrapper over [`run_jobs`].
#[must_use]
pub fn run(scale: Scale, seed: u64) -> Fig6 {
    run_jobs(scale, seed, 1)
}

/// Single-threaded variant of [`run_jobs_with_workloads`].
#[must_use]
pub fn run_with_workloads(scale: Scale, seed: u64, workloads: &[WorkloadId]) -> Fig6 {
    run_jobs_with_workloads(scale, seed, 1, workloads)
}

/// Runs with a workload subset (tests use fewer) on `jobs` workers.
#[must_use]
pub fn run_jobs_with_workloads(
    scale: Scale,
    seed: u64,
    jobs: usize,
    workloads: &[WorkloadId],
) -> Fig6 {
    let width = DataWidth::Fp16;
    // Panels (a)/(b): the workloads x (InO + prefetchers) grid.
    let grid = run_sweep(
        &SweepSpec {
            workloads: workloads.to_vec(),
            systems: std::iter::once(SystemKind::InOrder)
                .chain(SystemKind::PREFETCHERS)
                .collect(),
            scales: vec![scale],
            widths: vec![width],
            seeds: vec![seed],
            ..SweepSpec::default()
        },
        jobs,
    );
    let mut cells = Vec::new();
    for &w in workloads {
        let base_misses = grid
            .get(
                w,
                SystemKind::InOrder,
                scale,
                TileOrder::Natural,
                width,
                seed,
            )
            .expect("InO baseline in sweep")
            .outcome
            .result
            .mem
            .l2
            .demand_misses
            .get();
        for system in SystemKind::PREFETCHERS {
            let o = &grid
                .get(w, system, scale, TileOrder::Natural, width, seed)
                .expect("sweep covers the full grid")
                .outcome;
            let misses = o.result.mem.l2.demand_misses.get();
            cells.push(AccCov {
                workload: w.short(),
                system: system.label(),
                accuracy: o.result.mem.prefetch_accuracy(),
                coverage: coverage(base_misses, misses),
                pollution: pollution(base_misses, misses),
                late_fraction: o.timeliness.as_ref().map(|t| t.late_fraction()),
                channel_util: o.result.max_channel_utilisation(),
            });
        }
    }

    // Panel (c): DS-class data movement, InO vs NVR vs NVR+NSB. A full
    // run already has every DS cell in `grid` (NVR+NSB is a first-class
    // system); only subset runs (tests) need the mini-sweep.
    let mini;
    let plain = if workloads.contains(&WorkloadId::Ds) {
        &grid
    } else {
        mini = run_sweep(
            &SweepSpec {
                workloads: vec![WorkloadId::Ds],
                systems: vec![SystemKind::InOrder, SystemKind::Nvr, SystemKind::NvrNsb],
                scales: vec![scale],
                widths: vec![width],
                seeds: vec![seed],
                ..SweepSpec::default()
            },
            jobs,
        );
        &mini
    };
    let mut movement = Vec::new();
    for system in [SystemKind::InOrder, SystemKind::Nvr, SystemKind::NvrNsb] {
        let o = &plain
            .get(
                WorkloadId::Ds,
                system,
                scale,
                TileOrder::Natural,
                width,
                seed,
            )
            .expect("cell present")
            .outcome;
        let nsb_hits = o.result.mem.nsb.as_ref().map_or(0, |s| s.demand_hits.get());
        movement.push(Movement {
            system: system.label().into(),
            offchip_lines: o.result.mem.demand_offchip_lines(),
            onchip_hits: o.result.mem.l2.demand_hits.get() + nsb_hits,
        });
    }

    Fig6 { cells, movement }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 6a/b — prefetcher accuracy, coverage and signed pollution"
        )?;
        let mut t = Table::new(vec![
            "workload".into(),
            "system".into(),
            "accuracy".into(),
            "coverage".into(),
            "pollution".into(),
            "late frac".into(),
            "ch util".into(),
        ]);
        for c in &self.cells {
            t.row(vec![
                c.workload.into(),
                c.system.into(),
                fmt3(c.accuracy),
                fmt3(c.coverage),
                format!(
                    "{}{}",
                    if c.pollution > 0.0 { "+" } else { "" },
                    fmt3(c.pollution)
                ),
                c.late_fraction.map_or_else(|| "-".into(), fmt3),
                fmt3(c.channel_util),
            ]);
        }
        writeln!(f, "{t}")?;
        for s in ["Stream", "IMP", "DVR", "NVR", "NVR+NSB"] {
            writeln!(
                f,
                "  {s}: avg accuracy {:.2}, avg coverage {:.2}",
                self.avg_accuracy(s),
                self.avg_coverage(s)
            )?;
        }
        writeln!(
            f,
            "channel_util (busiest channel, mean across workloads): {}",
            ["Stream", "IMP", "DVR", "NVR", "NVR+NSB"]
                .map(|s| format!("{s} {:.2}", self.avg_channel_util(s)))
                .join(", ")
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "Fig. 6c — off-chip demand traffic during actual loads (DS)"
        )?;
        let mut t = Table::new(vec![
            "system".into(),
            "off-chip lines".into(),
            "on-chip hits".into(),
        ]);
        for m in &self.movement {
            t.row(vec![
                m.system.clone(),
                m.offchip_lines.to_string(),
                m.onchip_hits.to_string(),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "NVR off-chip reduction vs InO: {:.1}x; NSB further: {:.1}x",
            self.nvr_offchip_reduction(),
            self.nsb_extra_reduction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvr_leads_accuracy_and_coverage() {
        // Two contrasting workloads keep the test fast: affine DS and
        // two-level MK.
        let fig = run_with_workloads(Scale::Tiny, 5, &[WorkloadId::Ds, WorkloadId::Mk]);
        let nvr_cov = fig.avg_coverage("NVR");
        for s in ["Stream", "IMP", "DVR"] {
            assert!(
                nvr_cov >= fig.avg_coverage(s),
                "NVR coverage {nvr_cov} vs {s} {}",
                fig.avg_coverage(s)
            );
        }
        assert!(nvr_cov > 0.6, "NVR coverage should be high ({nvr_cov})");
        assert!(
            fig.avg_accuracy("NVR") > 0.7,
            "NVR accuracy {}",
            fig.avg_accuracy("NVR")
        );
    }

    #[test]
    fn pollution_is_the_unclamped_coverage() {
        let fig = run_with_workloads(Scale::Tiny, 5, &[WorkloadId::Ds, WorkloadId::Mk]);
        for c in &fig.cells {
            // coverage == clamp(-pollution, 0, 1) by construction; a
            // positive pollution must coincide with zero coverage.
            assert!(
                (c.coverage - (-c.pollution).clamp(0.0, 1.0)).abs() < 1e-9,
                "{}/{}: coverage {} vs pollution {}",
                c.workload,
                c.system,
                c.coverage,
                c.pollution
            );
            if c.pollution > 0.0 {
                assert_eq!(c.coverage, 0.0);
            }
        }
    }

    #[test]
    fn movement_panel_shows_offchip_collapse() {
        let fig = run_with_workloads(Scale::Tiny, 6, &[WorkloadId::Ds]);
        assert_eq!(fig.movement.len(), 3);
        assert!(
            fig.nvr_offchip_reduction() > 3.0,
            "NVR should slash demand off-chip traffic ({}x)",
            fig.nvr_offchip_reduction()
        );
        // The NSB's job is NPU-side latency/traffic, not L2 miss count;
        // allow timing noise either way but no large regression.
        assert!(
            fig.nsb_extra_reduction() >= 0.8,
            "NSB should not regress off-chip traffic materially ({}x)",
            fig.nsb_extra_reduction()
        );
    }
}
