//! Headline claims — the abstract's numbers, recomputed.
//!
//! * ~90% cache-miss reduction vs SOTA general-purpose prefetching;
//! * ~4x average speedup on sparse workloads vs no prefetching;
//! * ~75% off-chip memory access reduction during NPU execution.

use std::fmt;

use nvr_common::DataWidth;
use nvr_workloads::{Scale, WorkloadId};

use crate::metrics::geometric_mean;
use crate::runner::SystemKind;
use crate::sweep::{run_sweep, SweepSpec};

/// Recomputed headline aggregates.
#[derive(Debug, Clone, Default)]
pub struct Headline {
    /// Geometric-mean speedup of NVR over InO (no prefetch).
    pub speedup_vs_no_prefetch: f64,
    /// Mean reduction of L2 demand misses vs the best GPP prefetcher
    /// (stream/IMP), in `[0, 1]`.
    pub miss_reduction_vs_gpp: f64,
    /// Mean reduction of off-chip demand lines vs InO, in `[0, 1]`.
    pub offchip_reduction: f64,
    /// Per-workload speedups, for inspection.
    pub speedups: Vec<(&'static str, f64)>,
}

/// Recomputes the claims over a workload set, fanning the
/// workloads x {InO, Stream, IMP, NVR} grid out over `jobs` workers.
#[must_use]
pub fn run_jobs_with_workloads(
    scale: Scale,
    seed: u64,
    jobs: usize,
    workloads: &[WorkloadId],
) -> Headline {
    let spec = SweepSpec {
        workloads: workloads.to_vec(),
        systems: vec![
            SystemKind::InOrder,
            SystemKind::Stream,
            SystemKind::Imp,
            SystemKind::Nvr,
        ],
        scales: vec![scale],
        widths: vec![DataWidth::Fp16],
        seeds: vec![seed],
        ..SweepSpec::default()
    };
    let results = run_sweep(&spec, jobs);
    let cell = |w, s| {
        &results
            .get(w, s, scale, DataWidth::Fp16, seed)
            .expect("sweep covers the full grid")
            .outcome
    };

    let mut speedups = Vec::new();
    let mut miss_reductions = Vec::new();
    let mut offchip_reductions = Vec::new();
    for &w in workloads {
        let ino = cell(w, SystemKind::InOrder);
        let stream = cell(w, SystemKind::Stream);
        let imp = cell(w, SystemKind::Imp);
        let nvr = cell(w, SystemKind::Nvr);

        speedups.push((
            w.short(),
            ino.result.total_cycles as f64 / nvr.result.total_cycles.max(1) as f64,
        ));
        let best_gpp = stream
            .result
            .mem
            .l2
            .demand_misses
            .get()
            .min(imp.result.mem.l2.demand_misses.get());
        if best_gpp > 0 {
            miss_reductions
                .push(1.0 - nvr.result.mem.l2.demand_misses.get() as f64 / best_gpp as f64);
        }
        let ino_off = ino.result.mem.demand_offchip_lines();
        if ino_off > 0 {
            offchip_reductions
                .push(1.0 - nvr.result.mem.demand_offchip_lines() as f64 / ino_off as f64);
        }
    }
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    Headline {
        speedup_vs_no_prefetch: geometric_mean(
            &speedups.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
        ),
        miss_reduction_vs_gpp: avg(&miss_reductions),
        offchip_reduction: avg(&offchip_reductions),
        speedups,
    }
}

/// Single-threaded variant of [`run_jobs_with_workloads`].
#[must_use]
pub fn run_with_workloads(scale: Scale, seed: u64, workloads: &[WorkloadId]) -> Headline {
    run_jobs_with_workloads(scale, seed, 1, workloads)
}

/// Recomputes the claims over all eight workloads on `jobs` workers.
#[must_use]
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Headline {
    run_jobs_with_workloads(scale, seed, jobs, &WorkloadId::ALL)
}

/// Recomputes the claims over all eight workloads, single-threaded.
#[must_use]
pub fn run(scale: Scale, seed: u64) -> Headline {
    run_jobs(scale, seed, 1)
}

impl fmt::Display for Headline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Headline claims (paper -> measured)")?;
        writeln!(
            f,
            "  speedup vs no prefetching: paper ~4x -> {:.2}x (geomean)",
            self.speedup_vs_no_prefetch
        )?;
        writeln!(
            f,
            "  L2 miss reduction vs GPP prefetching: paper ~90% -> {:.0}%",
            100.0 * self.miss_reduction_vs_gpp
        )?;
        writeln!(
            f,
            "  off-chip access reduction vs InO: paper ~75% -> {:.0}%",
            100.0 * self.offchip_reduction
        )?;
        for (w, s) in &self.speedups {
            writeln!(f, "    {w}: {s:.2}x")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold_in_shape_on_subset() {
        let h = run_with_workloads(Scale::Tiny, 9, &[WorkloadId::Ds, WorkloadId::Gcn]);
        assert!(
            h.speedup_vs_no_prefetch > 1.5,
            "speedup {}",
            h.speedup_vs_no_prefetch
        );
        assert!(
            h.miss_reduction_vs_gpp > 0.3,
            "miss reduction {}",
            h.miss_reduction_vs_gpp
        );
        assert!(
            h.offchip_reduction > 0.3,
            "off-chip reduction {}",
            h.offchip_reduction
        );
    }
}
