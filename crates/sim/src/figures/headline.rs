//! Headline claims — the abstract's numbers, recomputed.
//!
//! * ~90% cache-miss reduction vs SOTA general-purpose prefetching;
//! * ~4x average speedup on sparse workloads vs no prefetching;
//! * ~75% off-chip memory access reduction during NPU execution.
//!
//! The primary row keeps the historical configuration (plain NVR, one
//! DRAM channel) for continuity; the driver additionally evaluates the
//! paper's own NSB-backed system (§IV-G) and a two-channel memory
//! system — each against the in-order baseline *on the same memory
//! system* — and reports the best (NSB, channel-count) configuration.

use std::fmt;

use nvr_common::DataWidth;
use nvr_mem::MemoryConfig;
use nvr_workloads::{Scale, TileOrder, WorkloadId};

use crate::metrics::geometric_mean;
use crate::runner::SystemKind;
use crate::sweep::{run_sweep, SweepSpec};

/// One evaluated headline configuration.
#[derive(Debug, Clone, Default)]
pub struct HeadlineConfig {
    /// Configuration label ("NVR", "NVR+NSB", "NVR+NSB 2ch").
    pub label: &'static str,
    /// Geometric-mean speedup over InO on the same memory system.
    pub geomean: f64,
    /// Per-workload speedups, for inspection.
    pub speedups: Vec<(&'static str, f64)>,
}

/// Recomputed headline aggregates.
#[derive(Debug, Clone, Default)]
pub struct Headline {
    /// Geometric-mean speedup of plain NVR over InO (no prefetch), one
    /// channel — the historical primary row.
    pub speedup_vs_no_prefetch: f64,
    /// Mean reduction of L2 demand misses vs the best GPP prefetcher
    /// (stream/IMP), in `[0, 1]`.
    pub miss_reduction_vs_gpp: f64,
    /// Mean reduction of off-chip demand lines vs InO, in `[0, 1]`.
    pub offchip_reduction: f64,
    /// Per-workload speedups of the primary row, for inspection.
    pub speedups: Vec<(&'static str, f64)>,
    /// Every evaluated (NSB, channel-count) configuration.
    pub configs: Vec<HeadlineConfig>,
}

impl Headline {
    /// The best evaluated configuration by geometric-mean speedup.
    #[must_use]
    pub fn best_config(&self) -> Option<&HeadlineConfig> {
        self.configs
            .iter()
            .max_by(|a, b| a.geomean.total_cmp(&b.geomean))
    }
}

/// Computes per-workload speedups of `system` over InO within `results`.
fn config_speedups(
    results: &crate::sweep::SweepResults,
    system: SystemKind,
    scale: Scale,
    seed: u64,
    workloads: &[WorkloadId],
) -> Vec<(&'static str, f64)> {
    workloads
        .iter()
        .map(|&w| {
            let ino = results
                .get(
                    w,
                    SystemKind::InOrder,
                    scale,
                    TileOrder::Natural,
                    DataWidth::Fp16,
                    seed,
                )
                .expect("InO baseline in sweep");
            let sys = results
                .get(w, system, scale, TileOrder::Natural, DataWidth::Fp16, seed)
                .expect("system cell in sweep");
            (
                w.short(),
                ino.outcome.result.total_cycles as f64
                    / sys.outcome.result.total_cycles.max(1) as f64,
            )
        })
        .collect()
}

/// Recomputes the claims over a workload set, fanning the grids out over
/// `jobs` workers.
#[must_use]
pub fn run_jobs_with_workloads(
    scale: Scale,
    seed: u64,
    jobs: usize,
    workloads: &[WorkloadId],
) -> Headline {
    let spec = SweepSpec {
        workloads: workloads.to_vec(),
        systems: vec![
            SystemKind::InOrder,
            SystemKind::Stream,
            SystemKind::Imp,
            SystemKind::Nvr,
            SystemKind::NvrNsb,
        ],
        scales: vec![scale],
        widths: vec![DataWidth::Fp16],
        seeds: vec![seed],
        ..SweepSpec::default()
    };
    let results = run_sweep(&spec, jobs);
    let cell = |w, s| {
        &results
            .get(w, s, scale, TileOrder::Natural, DataWidth::Fp16, seed)
            .expect("sweep covers the full grid")
            .outcome
    };

    let mut miss_reductions = Vec::new();
    let mut offchip_reductions = Vec::new();
    for &w in workloads {
        let ino = cell(w, SystemKind::InOrder);
        let stream = cell(w, SystemKind::Stream);
        let imp = cell(w, SystemKind::Imp);
        let nvr = cell(w, SystemKind::Nvr);

        let best_gpp = stream
            .result
            .mem
            .l2
            .demand_misses
            .get()
            .min(imp.result.mem.l2.demand_misses.get());
        if best_gpp > 0 {
            miss_reductions
                .push(1.0 - nvr.result.mem.l2.demand_misses.get() as f64 / best_gpp as f64);
        }
        let ino_off = ino.result.mem.demand_offchip_lines();
        if ino_off > 0 {
            offchip_reductions
                .push(1.0 - nvr.result.mem.demand_offchip_lines() as f64 / ino_off as f64);
        }
    }
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };

    // The best-configuration search: NVR and NVR+NSB on one channel come
    // from the primary grid; the two-channel row pairs InO and NVR+NSB on
    // the same two-channel memory system (fair comparison).
    let two_ch = run_sweep(
        &SweepSpec {
            systems: vec![SystemKind::InOrder, SystemKind::NvrNsb],
            mem_cfg: MemoryConfig {
                dram: nvr_mem::DramConfig::default().with_channels(2),
                ..MemoryConfig::default()
            },
            ..spec.clone()
        },
        jobs,
    );
    let mut configs = Vec::new();
    for (label, sweep, system) in [
        ("NVR", &results, SystemKind::Nvr),
        ("NVR+NSB", &results, SystemKind::NvrNsb),
        ("NVR+NSB 2ch", &two_ch, SystemKind::NvrNsb),
    ] {
        let speedups = config_speedups(sweep, system, scale, seed, workloads);
        configs.push(HeadlineConfig {
            label,
            geomean: geometric_mean(&speedups.iter().map(|(_, s)| *s).collect::<Vec<_>>()),
            speedups,
        });
    }

    let speedups = configs[0].speedups.clone();
    Headline {
        speedup_vs_no_prefetch: configs[0].geomean,
        miss_reduction_vs_gpp: avg(&miss_reductions),
        offchip_reduction: avg(&offchip_reductions),
        speedups,
        configs,
    }
}

/// Single-threaded variant of [`run_jobs_with_workloads`].
#[must_use]
pub fn run_with_workloads(scale: Scale, seed: u64, workloads: &[WorkloadId]) -> Headline {
    run_jobs_with_workloads(scale, seed, 1, workloads)
}

/// Recomputes the claims over all eight workloads on `jobs` workers.
#[must_use]
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Headline {
    run_jobs_with_workloads(scale, seed, jobs, &WorkloadId::ALL)
}

/// Recomputes the claims over all eight workloads, single-threaded.
#[must_use]
pub fn run(scale: Scale, seed: u64) -> Headline {
    run_jobs(scale, seed, 1)
}

impl fmt::Display for Headline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Headline claims (paper -> measured)")?;
        writeln!(
            f,
            "  speedup vs no prefetching: paper ~4x -> {:.2}x (geomean, plain NVR)",
            self.speedup_vs_no_prefetch
        )?;
        writeln!(
            f,
            "  L2 miss reduction vs GPP prefetching: paper ~90% -> {:.0}%",
            100.0 * self.miss_reduction_vs_gpp
        )?;
        writeln!(
            f,
            "  off-chip access reduction vs InO: paper ~75% -> {:.0}%",
            100.0 * self.offchip_reduction
        )?;
        for (w, s) in &self.speedups {
            writeln!(f, "    {w}: {s:.2}x")?;
        }
        writeln!(
            f,
            "\nConfiguration search (geomean speedup vs InO, same memory system)"
        )?;
        for c in &self.configs {
            writeln!(f, "  {:<12} {:.2}x", c.label, c.geomean)?;
        }
        if let Some(best) = self.best_config() {
            writeln!(f, "best: {} at {:.2}x", best.label, best.geomean)?;
            for (w, s) in &best.speedups {
                writeln!(f, "    {w}: {s:.2}x")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold_in_shape_on_subset() {
        let h = run_with_workloads(Scale::Tiny, 9, &[WorkloadId::Ds, WorkloadId::Gcn]);
        assert!(
            h.speedup_vs_no_prefetch > 1.5,
            "speedup {}",
            h.speedup_vs_no_prefetch
        );
        assert!(
            h.miss_reduction_vs_gpp > 0.3,
            "miss reduction {}",
            h.miss_reduction_vs_gpp
        );
        assert!(
            h.offchip_reduction > 0.3,
            "off-chip reduction {}",
            h.offchip_reduction
        );
        // The configuration search covers the (NSB, channel-count) plane
        // and the best configuration never loses to the primary row.
        assert_eq!(h.configs.len(), 3);
        let best = h.best_config().expect("configs present");
        assert!(
            best.geomean >= h.speedup_vs_no_prefetch - 1e-9,
            "best {} vs primary {}",
            best.geomean,
            h.speedup_vs_no_prefetch
        );
    }
}
