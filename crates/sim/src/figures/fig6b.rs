//! Fig. 6b′ — prefetch *timeliness* breakdown (companion to Fig. 6).
//!
//! Fig. 6's accuracy/coverage panels say how much of the miss stream NVR
//! covers; this driver says how much of that coverage arrived *on time*.
//! For every workload it runs three NVR variants — a `lookahead_tiles =
//! 1` configuration that degenerates to the old one-window-at-a-time
//! episode loop, the pipelined cross-tile lookahead at the default depth
//! ([`nvr_core::NvrConfig::lookahead_tiles`]), and the pipelined engine
//! filling the paper's NSB (the NVR+NSB system) — and reports the
//! measured per-prefetch outcomes from the lifetime log: timely / late /
//! evicted-unused counts, the issue→first-use slack distribution
//! (cycles between a prefetch entering the cache and its first demand
//! touch), and the mean DRAM-channel queue delay (how much of the
//! lateness is arbitration rather than prediction distance). "Late"
//! prefetches are the paper's residual-stall culprit on GCN/GSA-BT-class
//! workloads: the line was predicted correctly but the demand arrived
//! mid-fill.

use std::fmt;

use nvr_common::DataWidth;
use nvr_core::{nsb_config, NvrConfig, NvrPrefetcher};
use nvr_mem::{MemoryConfig, MemorySystem};
use nvr_npu::{NpuConfig, NpuEngine};
use nvr_prefetch::{NullPrefetcher, Prefetcher, TimelinessReport};
use nvr_workloads::{Scale, TileOrder, WorkloadId, WorkloadSpec};

use crate::report::{fmt3, Table};
use crate::sweep::run_batch;

/// Timeliness of one (workload, lookahead-variant) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinessCell {
    /// Workload short name.
    pub workload: &'static str,
    /// Variant label ("pipelined" or "single-window").
    pub variant: &'static str,
    /// Lookahead depth the variant ran with.
    pub depth: usize,
    /// Total cycles of the run.
    pub cycles: u64,
    /// Speedup over the no-prefetch in-order baseline.
    pub speedup: f64,
    /// L2 `prefetch_late` counter (aggregate view of the same events).
    pub prefetch_late: u64,
    /// Measured per-prefetch outcomes.
    pub timeliness: TimelinessReport,
}

/// The Fig. 6b′ data set.
#[derive(Debug, Clone, Default)]
pub struct Fig6b {
    /// Three cells (single-window, pipelined, pipelined+NSB) per workload.
    pub cells: Vec<TimelinessCell>,
}

impl Fig6b {
    /// The cell of one (workload, variant) pair.
    #[must_use]
    pub fn get(&self, workload: &str, variant: &str) -> Option<&TimelinessCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.variant == variant)
    }
}

/// The compared variants: the pre-pipelining single-window episode loop,
/// the pipelined cross-tile default, and the pipelined engine filling the
/// paper's 16 KB NSB (§IV-G) — the NVR+NSB system's timeliness bar.
fn variants() -> [(&'static str, NvrConfig, MemoryConfig); 3] {
    let single = NvrConfig {
        lookahead_tiles: 1,
        ..NvrConfig::default()
    };
    [
        ("single-window", single, MemoryConfig::default()),
        ("pipelined", NvrConfig::default(), MemoryConfig::default()),
        (
            "pipelined+NSB",
            NvrConfig::with_nsb(),
            MemoryConfig::default().with_nsb(nsb_config(16)),
        ),
    ]
}

/// Runs the timeliness comparison over every workload on `jobs` workers.
#[must_use]
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Fig6b {
    run_jobs_with_workloads(scale, seed, jobs, &WorkloadId::ALL)
}

/// Single-threaded convenience wrapper over [`run_jobs`].
#[must_use]
pub fn run(scale: Scale, seed: u64) -> Fig6b {
    run_jobs(scale, seed, 1)
}

/// Runs with a workload subset (tests use fewer) on `jobs` workers.
#[must_use]
pub fn run_jobs_with_workloads(
    scale: Scale,
    seed: u64,
    jobs: usize,
    workloads: &[WorkloadId],
) -> Fig6b {
    let mut tasks: Vec<Box<dyn FnOnce() -> Vec<TimelinessCell> + Send>> = Vec::new();
    for &w in workloads {
        tasks.push(Box::new(move || {
            let spec = WorkloadSpec {
                width: DataWidth::Fp16,
                seed,
                scale,
                order: TileOrder::Natural,
            };
            let program = w.build(&spec);
            let engine = NpuEngine::new(NpuConfig::default());
            let mut mem_base = MemorySystem::new(MemoryConfig::default());
            let base = engine.run(&program, &mut mem_base, &mut NullPrefetcher::new());
            variants()
                .into_iter()
                .map(|(variant, cfg, mem_cfg)| {
                    let depth = cfg.lookahead_tiles;
                    let mut mem = MemorySystem::new(mem_cfg);
                    let mut nvr = NvrPrefetcher::new(cfg);
                    let r = engine.run(&program, &mut mem, &mut nvr);
                    nvr.finalize_run(&mut mem);
                    TimelinessCell {
                        workload: w.short(),
                        variant,
                        depth,
                        cycles: r.total_cycles,
                        speedup: base.total_cycles as f64 / r.total_cycles.max(1) as f64,
                        prefetch_late: r.mem.l2.prefetch_late.get(),
                        timeliness: nvr.timeliness().unwrap_or_default(),
                    }
                })
                .collect()
        }));
    }
    Fig6b {
        cells: run_batch(tasks, jobs).into_iter().flatten().collect(),
    }
}

impl fmt::Display for Fig6b {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 6b' — prefetch timeliness: single-window episode loop vs \
             pipelined cross-tile lookahead"
        )?;
        let mut t = Table::new(vec![
            "workload".into(),
            "variant".into(),
            "depth".into(),
            "speedup".into(),
            "timely".into(),
            "late".into(),
            "evicted".into(),
            "late frac".into(),
            "slack mean".into(),
            "qd mean".into(),
        ]);
        for c in &self.cells {
            t.row(vec![
                c.workload.into(),
                c.variant.into(),
                c.depth.to_string(),
                format!("{}x", fmt3(c.speedup)),
                c.timeliness.timely.to_string(),
                c.timeliness.late.to_string(),
                c.timeliness.evicted_unused.to_string(),
                fmt3(c.timeliness.late_fraction()),
                format!("{:.0}", c.timeliness.slack.mean()),
                format!("{:.0}", c.timeliness.queue_delay.mean()),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "issue→use slack distribution (cycles, pipelined NVR):")?;
        for c in self.cells.iter().filter(|c| c.variant == "pipelined") {
            write!(f, "  {:>6}:", c.workload)?;
            for (lo, hi, n) in c.timeliness.slack.nonzero_buckets() {
                write!(f, " [{lo},{hi}):{n}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeliness_cells_have_measured_outcomes() {
        let fig = run_jobs_with_workloads(Scale::Tiny, 3, 1, &[WorkloadId::Ds]);
        assert_eq!(fig.cells.len(), 3);
        for c in &fig.cells {
            assert!(
                c.timeliness.used() > 0,
                "{}/{}: no used prefetches measured",
                c.workload,
                c.variant
            );
            assert!(c.timeliness.slack.count() == c.timeliness.used());
        }
    }

    #[test]
    fn rendition_includes_slack_histogram() {
        let fig = run_jobs_with_workloads(Scale::Tiny, 3, 2, &[WorkloadId::Ds]);
        let text = fig.to_string();
        assert!(text.contains("slack"));
        assert!(text.contains("pipelined"));
    }
}
