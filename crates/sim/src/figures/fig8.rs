//! Fig. 8 — system-level LLM evaluation.
//!
//! (a) per-attention-layer batch vs element miss rates, InO vs NVR;
//! (b) prefill throughput vs bandwidth for three prompt lengths;
//! (c) decode throughput vs bandwidth for three output lengths.
//!
//! The sparse-gather cycles feeding the roofline model are *measured* by
//! running the `nvr-llm` layer programs through the cache simulator at each
//! bandwidth point.

use std::fmt;

use nvr_llm::{
    av_program, decode_throughput, prefill_throughput, qkt_program, qkv_program, LlmConfig,
};
use nvr_mem::{DramConfig, MemoryConfig};

use crate::report::{fmt3, Table};
use crate::runner::{run_system, SystemKind};
use crate::sweep::run_batch;

/// Panel (a): one layer's miss rates under one system.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerMiss {
    /// Layer name (QKV / QKT / AV).
    pub layer: &'static str,
    /// System label.
    pub system: &'static str,
    /// Fraction of vector batches with at least one missing element.
    pub batch_miss_rate: f64,
    /// Fraction of elements whose line missed.
    pub element_miss_rate: f64,
}

/// Panels (b)/(c): one throughput curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Sequence length the curve was measured at.
    pub seq_len: usize,
    /// Whether NVR was enabled (dashed lines in the paper).
    pub nvr: bool,
    /// `(bytes_per_cycle, tokens_per_mcycle)` points.
    pub points: Vec<(u64, f64)>,
}

/// The Fig. 8 data set.
#[derive(Debug, Clone, Default)]
pub struct Fig8 {
    /// Panel (a).
    pub layer_misses: Vec<LayerMiss>,
    /// Panel (b): prefill curves.
    pub prefill: Vec<Curve>,
    /// Panel (c): decode curves.
    pub decode: Vec<Curve>,
}

impl Fig8 {
    /// Average decode-throughput gain of NVR over baseline across a curve
    /// pair at `seq_len` (the paper's "average 50% throughput improvement").
    #[must_use]
    pub fn decode_gain(&self, seq_len: usize) -> f64 {
        let find = |nvr: bool| {
            self.decode
                .iter()
                .find(|c| c.seq_len == seq_len && c.nvr == nvr)
        };
        let (Some(base), Some(nvr)) = (find(false), find(true)) else {
            return 0.0;
        };
        let gains: Vec<f64> = base
            .points
            .iter()
            .zip(&nvr.points)
            .filter(|((_, b), _)| *b > 0.0)
            .map(|((_, b), (_, n))| n / b)
            .collect();
        if gains.is_empty() {
            0.0
        } else {
            gains.iter().sum::<f64>() / gains.len() as f64
        }
    }
}

/// Measures the sparse-attention gather cycles of one decode step at one
/// bandwidth, for baseline or NVR.
fn sparse_step_cycles(
    cfg: &LlmConfig,
    l: usize,
    bytes_per_cycle: u64,
    nvr: bool,
    seed: u64,
) -> f64 {
    let mem_cfg = MemoryConfig::default().with_dram(DramConfig {
        bytes_per_cycle,
        ..DramConfig::default()
    });
    let system = if nvr {
        SystemKind::Nvr
    } else {
        SystemKind::InOrder
    };
    let qkt = run_system(&qkt_program(cfg, l, seed), &mem_cfg, system);
    let av = run_system(&av_program(cfg, l, seed), &mem_cfg, system);
    // The programs simulate 48 decode steps of one head; scale to the
    // whole stack (heads x layers serialise through the gather unit).
    let sim_steps = 48.0;
    let per_step = (qkt.result.total_cycles + av.result.total_cycles) as f64 / sim_steps;
    per_step * cfg.heads as f64 * cfg.layers as f64
}

/// Bandwidth sweep points (bytes/cycle ~ GB/s at 1 GHz).
const BANDWIDTHS: [u64; 6] = [4, 8, 16, 32, 64, 128];

/// Curve family of one panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PanelKind {
    Prefill,
    Decode,
}

/// Runs all three panels on `jobs` workers. `fast` trims the sweep for
/// tests. Every (layer, system) cell and every (panel, length, system,
/// bandwidth) point is one independent sweep job.
#[must_use]
pub fn run_jobs(seed: u64, fast: bool, jobs: usize) -> Fig8 {
    let cfg = LlmConfig::default();
    let mut fig = Fig8::default();

    // Panel (a): layer miss rates at l = 2048.
    let l = 2048;
    let layer_tasks: Vec<_> = ["QKV", "QKT", "AV"]
        .into_iter()
        .flat_map(|layer| {
            [SystemKind::InOrder, SystemKind::Nvr].map(|system| {
                move || {
                    let program = match layer {
                        "QKV" => qkv_program(&cfg, l),
                        "QKT" => qkt_program(&cfg, l, seed),
                        _ => av_program(&cfg, l, seed),
                    };
                    let o = run_system(&program, &MemoryConfig::default(), system);
                    LayerMiss {
                        layer,
                        system: system.label(),
                        batch_miss_rate: o.result.batch_miss_rate(),
                        element_miss_rate: o.result.element_miss_rate(),
                    }
                }
            })
        })
        .collect();
    fig.layer_misses = run_batch(layer_tasks, jobs);

    let bandwidths: &[u64] = if fast { &BANDWIDTHS[..3] } else { &BANDWIDTHS };
    let prefill_lens: &[usize] = if fast { &[1024] } else { &[1024, 2048, 4096] };
    let decode_lens: &[usize] = if fast { &[512] } else { &[512, 1024, 2048] };

    // Panels (b)/(c): one job per curve point, flattened so the pool
    // load-balances across the whole grid at once.
    let mut meta = Vec::new();
    for (kind, lens) in [
        (PanelKind::Prefill, prefill_lens),
        (PanelKind::Decode, decode_lens),
    ] {
        for &l in lens {
            for nvr in [false, true] {
                for &b in bandwidths {
                    meta.push((kind, l, nvr, b));
                }
            }
        }
    }
    let point_tasks: Vec<_> = meta
        .iter()
        .map(|&(kind, l, nvr, b)| {
            move || match kind {
                PanelKind::Prefill => {
                    // Prefill processes queries in blocks sharing gathers;
                    // the sparse share is ~1/64 of a per-token decode pass.
                    let sparse = sparse_step_cycles(&cfg, l, b, nvr, seed) * l as f64 / 64.0;
                    prefill_throughput(&cfg, l, b, sparse).tokens_per_mcycle
                }
                PanelKind::Decode => {
                    let sparse = sparse_step_cycles(&cfg, l, b, nvr, seed);
                    decode_throughput(&cfg, l, b, sparse).tokens_per_mcycle
                }
            }
        })
        .collect();
    let throughputs = run_batch(point_tasks, jobs);

    for ((kind, l, nvr, b), tput) in meta.into_iter().zip(throughputs) {
        let curves = match kind {
            PanelKind::Prefill => &mut fig.prefill,
            PanelKind::Decode => &mut fig.decode,
        };
        match curves.iter_mut().find(|c| c.seq_len == l && c.nvr == nvr) {
            Some(curve) => curve.points.push((b, tput)),
            None => curves.push(Curve {
                seq_len: l,
                nvr,
                points: vec![(b, tput)],
            }),
        }
    }
    fig
}

/// Runs all three panels, single-threaded.
#[must_use]
pub fn run(seed: u64, fast: bool) -> Fig8 {
    run_jobs(seed, fast, 1)
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 8a — per-layer miss rates (InO vs NVR)")?;
        let mut t = Table::new(vec![
            "layer".into(),
            "system".into(),
            "batch miss".into(),
            "element miss".into(),
        ]);
        for m in &self.layer_misses {
            t.row(vec![
                m.layer.into(),
                m.system.into(),
                fmt3(m.batch_miss_rate),
                fmt3(m.element_miss_rate),
            ]);
        }
        writeln!(f, "{t}")?;
        for (name, curves) in [
            ("Fig. 8b — prefill", &self.prefill),
            ("Fig. 8c — decode", &self.decode),
        ] {
            writeln!(f, "{name} throughput vs bandwidth (tokens/Mcycle)")?;
            let mut t = Table::new(vec![
                "l".into(),
                "system".into(),
                "points (B/cyc -> tput)".into(),
            ]);
            for c in curves {
                let pts = c
                    .points
                    .iter()
                    .map(|(b, v)| format!("{b}->{}", fmt3(*v)))
                    .collect::<Vec<_>>()
                    .join(", ");
                t.row(vec![
                    c.seq_len.to_string(),
                    if c.nvr { "NVR" } else { "base" }.into(),
                    pts,
                ]);
            }
            writeln!(f, "{t}")?;
        }
        if let Some(c) = self.decode.first() {
            writeln!(
                f,
                "decode NVR gain at l={}: {:.0}%",
                c.seq_len,
                100.0 * (self.decode_gain(c.seq_len) - 1.0)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvr_improves_decode_and_batch_misses() {
        let fig = run(3, true);
        // Panel (a): NVR shrinks both miss metrics on the gather layers;
        // batch misses stay >= element misses.
        for layer in ["QKT", "AV"] {
            let get = |sys: &str| {
                fig.layer_misses
                    .iter()
                    .find(|m| m.layer == layer && m.system == sys)
                    .expect("cell")
            };
            let ino = get("InO");
            let nvr = get("NVR");
            assert!(ino.batch_miss_rate >= ino.element_miss_rate);
            assert!(
                nvr.element_miss_rate < ino.element_miss_rate,
                "{layer}: NVR {} vs InO {}",
                nvr.element_miss_rate,
                ino.element_miss_rate
            );
        }
        // Panel (c): NVR gains throughput on the IO-bound decode.
        let gain = fig.decode_gain(512);
        assert!(gain > 1.05, "decode gain {gain} should exceed 5%");
    }
}
