//! Fig. 5 — normalised wall-clock latency per workload and system.
//!
//! Four panels: INT8, FP16, INT32, and INT32 with the NSB enabled. Within a
//! workload every bar is normalised to the in-order no-prefetch (InO) run of
//! the same width without NSB; each bar splits into base execution time and
//! cache-miss stall.

use std::fmt;

use nvr_common::DataWidth;
use nvr_core::nsb_config;
use nvr_mem::MemoryConfig;
use nvr_workloads::{Scale, TileOrder, WorkloadId};

use crate::report::{fmt3, Table};
use crate::runner::SystemKind;
use crate::sweep::{run_sweep, SweepSpec};

/// One bar of one panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Workload short name.
    pub workload: &'static str,
    /// System label.
    pub system: &'static str,
    /// Operand width.
    pub width: DataWidth,
    /// Whether the NSB panel produced this bar.
    pub nsb: bool,
    /// Normalised total latency (InO same width, no NSB = 1.0).
    pub norm_total: f64,
    /// Normalised base-execution segment.
    pub norm_base: f64,
    /// Normalised miss-stall segment.
    pub norm_stall: f64,
}

/// The full Fig. 5 data set.
#[derive(Debug, Clone, Default)]
pub struct Fig5 {
    /// All bars across panels.
    pub bars: Vec<Bar>,
}

impl Fig5 {
    /// Bars of one panel.
    #[must_use]
    pub fn panel(&self, width: DataWidth, nsb: bool) -> Vec<&Bar> {
        self.bars
            .iter()
            .filter(|b| b.width == width && b.nsb == nsb)
            .collect()
    }

    /// Average stall reduction of NVR relative to InO within a panel
    /// (the paper reports 98.3% / 99.2% / 97.3% for INT8/FP16/INT32).
    #[must_use]
    pub fn nvr_stall_reduction(&self, width: DataWidth, nsb: bool) -> f64 {
        let panel = self.panel(width, nsb);
        let mut reductions = Vec::new();
        for w in WorkloadId::ALL {
            let ino = panel
                .iter()
                .find(|b| b.workload == w.short() && b.system == "InO");
            let nvr = panel
                .iter()
                .find(|b| b.workload == w.short() && b.system == "NVR");
            if let (Some(i), Some(n)) = (ino, nvr) {
                if i.norm_stall > 0.0 {
                    reductions.push(1.0 - n.norm_stall / i.norm_stall);
                }
            }
        }
        if reductions.is_empty() {
            0.0
        } else {
            reductions.iter().sum::<f64>() / reductions.len() as f64
        }
    }
}

/// Runs one panel as a sweep over `jobs` workers.
fn run_panel(
    scale: Scale,
    seed: u64,
    width: DataWidth,
    nsb: bool,
    jobs: usize,
    bars: &mut Vec<Bar>,
) {
    let mem_cfg = if nsb {
        MemoryConfig::default().with_nsb(nsb_config(16))
    } else {
        MemoryConfig::default()
    };
    let panel = run_sweep(
        &SweepSpec {
            scales: vec![scale],
            widths: vec![width],
            seeds: vec![seed],
            mem_cfg,
            ..SweepSpec::default()
        },
        jobs,
    );
    // The normalisation denominator: InO, same width, no NSB. For the NSB
    // panel that baseline is not in the panel's own grid, so run it as a
    // second (InO-only) sweep.
    let plain_ino;
    let denom_sweep = if nsb {
        plain_ino = run_sweep(
            &SweepSpec {
                systems: vec![SystemKind::InOrder],
                scales: vec![scale],
                widths: vec![width],
                seeds: vec![seed],
                ..SweepSpec::default()
            },
            jobs,
        );
        &plain_ino
    } else {
        &panel
    };
    for w in WorkloadId::ALL {
        let denom = denom_sweep
            .get(
                w,
                SystemKind::InOrder,
                scale,
                TileOrder::Natural,
                width,
                seed,
            )
            .expect("InO baseline in sweep")
            .outcome
            .result
            .total_cycles;
        for system in SystemKind::ALL {
            let o = &panel
                .get(w, system, scale, TileOrder::Natural, width, seed)
                .expect("sweep covers the full grid")
                .outcome;
            bars.push(Bar {
                workload: w.short(),
                system: system.label(),
                width,
                nsb,
                norm_total: o.normalised_total(denom),
                norm_base: o.base_cycles as f64 / denom.max(1) as f64,
                norm_stall: o.normalised_stall(denom),
            });
        }
    }
}

/// Runs all four panels on `jobs` workers.
#[must_use]
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Fig5 {
    let mut bars = Vec::new();
    for width in DataWidth::ALL {
        run_panel(scale, seed, width, false, jobs, &mut bars);
    }
    run_panel(scale, seed, DataWidth::Int32, true, jobs, &mut bars);
    Fig5 { bars }
}

/// Runs all four panels, single-threaded.
#[must_use]
pub fn run(scale: Scale, seed: u64) -> Fig5 {
    run_jobs(scale, seed, 1)
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (width, nsb) in [
            (DataWidth::Int8, false),
            (DataWidth::Fp16, false),
            (DataWidth::Int32, false),
            (DataWidth::Int32, true),
        ] {
            let suffix = if nsb { "+NSB" } else { "" };
            writeln!(
                f,
                "Fig. 5 panel — {width}{suffix} (normalised to InO, lower is better)"
            )?;
            let mut t = Table::new(vec![
                "workload".into(),
                "system".into(),
                "total".into(),
                "base".into(),
                "stall".into(),
            ]);
            for b in self.panel(width, nsb) {
                t.row(vec![
                    b.workload.into(),
                    b.system.into(),
                    fmt3(b.norm_total),
                    fmt3(b.norm_base),
                    fmt3(b.norm_stall),
                ]);
            }
            writeln!(f, "{t}")?;
            writeln!(
                f,
                "NVR average stall reduction vs InO: {:.1}%",
                100.0 * self.nvr_stall_reduction(width, nsb)
            )?;
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-panel smoke test at tiny scale (the full figure is exercised by
    /// the bench harness).
    #[test]
    fn int8_panel_shape_holds() {
        let mut bars = Vec::new();
        run_panel(Scale::Tiny, 11, DataWidth::Int8, false, 2, &mut bars);
        let fig = Fig5 { bars };
        let panel = fig.panel(DataWidth::Int8, false);
        assert_eq!(panel.len(), 8 * 7);
        for w in WorkloadId::ALL {
            let get = |sys: &str| {
                panel
                    .iter()
                    .find(|b| b.workload == w.short() && b.system == sys)
                    .copied()
                    .expect("bar present")
            };
            let ino = get("InO");
            let nvr = get("NVR");
            assert!((ino.norm_total - 1.0).abs() < 1e-9, "InO normalises to 1");
            assert!(
                nvr.norm_total <= ino.norm_total + 1e-9,
                "{}: NVR {} vs InO {}",
                w.short(),
                nvr.norm_total,
                ino.norm_total
            );
        }
        let red = fig.nvr_stall_reduction(DataWidth::Int8, false);
        assert!(red > 0.5, "NVR should remove most stall ({red})");
    }
}
