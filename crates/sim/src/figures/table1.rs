//! Table I — NVR hardware storage overhead.

use std::fmt;

use nvr_core::{overhead_report, OverheadReport};

use crate::report::Table;

/// The Table I data: our component-sum model beside the paper's printed
/// per-structure totals.
#[derive(Debug, Clone, Copy)]
pub struct Table1 {
    /// Computed report at the configured width.
    pub report: OverheadReport,
}

/// Computes the table at the paper's default width (N=16, 16 KB NSB).
#[must_use]
pub fn run() -> Table1 {
    Table1 {
        report: overhead_report(16, 16),
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I — NVR storage overhead (N = {})", self.report.n)?;
        let printed = OverheadReport::paper_printed_totals();
        let ours = [
            ("SD", self.report.sd_bits),
            ("SCD", self.report.scd_bits),
            ("LBD", self.report.lbd_bits),
            ("VMIG", self.report.vmig_bits),
            ("Snooper", self.report.snooper_bits),
        ];
        let mut t = Table::new(vec![
            "structure".into(),
            "bits (model)".into(),
            "bits (paper)".into(),
        ]);
        for ((name, mine), (_, paper)) in ours.iter().zip(printed.iter()) {
            t.row(vec![(*name).into(), mine.to_string(), paper.to_string()]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "total: {} bits = {:.2} KiB (+ optional NSB {} KiB)",
            self.report.total_bits(),
            self.report.total_kib(),
            self.report.nsb_bytes / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_within_tolerance() {
        let t = run();
        let printed = OverheadReport::paper_printed_totals();
        let ours = [
            t.report.sd_bits,
            t.report.scd_bits,
            t.report.lbd_bits,
            t.report.vmig_bits,
            t.report.snooper_bits,
        ];
        for ((name, paper), mine) in printed.iter().zip(ours.iter()) {
            let rel = (*mine as f64 - *paper as f64).abs() / *paper as f64;
            assert!(rel < 0.05, "{name}: {mine} vs paper {paper}");
        }
    }
}
