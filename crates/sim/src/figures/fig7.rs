//! Fig. 7 — normalised bandwidth allocation with and without the NSB.
//!
//! Where the bytes flow: NPU↔L2 demand traffic, prefetch fills, dense DMA
//! streams and stores, and what fraction of it reaches DRAM. The paper's
//! sankey shows ~75% off-chip reduction vs InO in both configurations, with
//! the NSB absorbing most NPU-side reads.

use std::fmt;

use nvr_common::{DataWidth, LINE_BYTES};
use nvr_core::nsb_config;
use nvr_mem::MemoryConfig;
use nvr_workloads::{Scale, TileOrder, WorkloadId};

use crate::report::{fmt3, Table};
use crate::runner::SystemKind;
use crate::sweep::{run_sweep, SweepResults, SweepSpec};

/// Byte flows of one configuration, aggregated over workloads.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Flows {
    /// Configuration label.
    pub label: String,
    /// Demand bytes served to the NPU from the hierarchy.
    pub npu_read_bytes: u64,
    /// Bytes served by the NSB (0 without one).
    pub nsb_served_bytes: u64,
    /// Demand bytes that reached DRAM.
    pub offchip_demand_bytes: u64,
    /// Prefetch bytes that reached DRAM.
    pub offchip_prefetch_bytes: u64,
    /// Dense DMA + store bytes over the channel.
    pub offchip_stream_bytes: u64,
}

impl Flows {
    /// Total bytes crossing the off-chip channel.
    #[must_use]
    pub fn offchip_total(&self) -> u64 {
        self.offchip_demand_bytes + self.offchip_prefetch_bytes + self.offchip_stream_bytes
    }
}

/// The Fig. 7 data set.
#[derive(Debug, Clone, Default)]
pub struct Fig7 {
    /// InO baseline, NVR, and NVR+NSB flows.
    pub flows: Vec<Flows>,
}

impl Fig7 {
    /// Off-chip *demand* reduction of configuration `label` vs InO.
    #[must_use]
    pub fn offchip_demand_reduction(&self, label: &str) -> f64 {
        let find = |l: &str| {
            self.flows
                .iter()
                .find(|x| x.label == l)
                .map_or(0, |x| x.offchip_demand_bytes)
        };
        find("InO") as f64 / find(label).max(1) as f64
    }
}

/// Aggregates one configuration's byte flows from its sweep cells.
fn collect(
    label: &str,
    results: &SweepResults,
    system: SystemKind,
    scale: Scale,
    seed: u64,
) -> Flows {
    let mut fl = Flows {
        label: label.to_owned(),
        ..Flows::default()
    };
    for w in WorkloadId::ALL {
        let o = &results
            .get(w, system, scale, TileOrder::Natural, DataWidth::Fp16, seed)
            .expect("sweep covers the full grid")
            .outcome;
        let m = &o.result.mem;
        fl.npu_read_bytes += m.l2.demand_accesses() * LINE_BYTES
            + m.nsb
                .as_ref()
                .map_or(0, |n| n.demand_hits.get() * LINE_BYTES);
        fl.nsb_served_bytes += m
            .nsb
            .as_ref()
            .map_or(0, |n| n.demand_hits.get() * LINE_BYTES);
        fl.offchip_demand_bytes += m.dram.demand_lines.get() * LINE_BYTES;
        fl.offchip_prefetch_bytes += m.dram.prefetch_lines.get() * LINE_BYTES;
        fl.offchip_stream_bytes += m.dram.dma_bytes.get() + m.dram.write_bytes.get();
    }
    fl
}

/// Runs the three configurations over all workloads on `jobs` workers.
#[must_use]
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Fig7 {
    let base = SweepSpec {
        systems: vec![SystemKind::InOrder, SystemKind::Nvr],
        scales: vec![scale],
        widths: vec![DataWidth::Fp16],
        seeds: vec![seed],
        ..SweepSpec::default()
    };
    let plain = run_sweep(&base, jobs);
    let with_nsb = run_sweep(
        &SweepSpec {
            systems: vec![SystemKind::Nvr],
            mem_cfg: MemoryConfig::default().with_nsb(nsb_config(16)),
            ..base
        },
        jobs,
    );
    Fig7 {
        flows: vec![
            collect("InO", &plain, SystemKind::InOrder, scale, seed),
            collect("NVR", &plain, SystemKind::Nvr, scale, seed),
            collect("NVR+NSB", &with_nsb, SystemKind::Nvr, scale, seed),
        ],
    }
}

/// Runs the three configurations, single-threaded.
#[must_use]
pub fn run(scale: Scale, seed: u64) -> Fig7 {
    run_jobs(scale, seed, 1)
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 7 — bandwidth allocation (bytes, all workloads)")?;
        let mut t = Table::new(vec![
            "config".into(),
            "NPU reads".into(),
            "NSB served".into(),
            "DRAM demand".into(),
            "DRAM prefetch".into(),
            "DRAM stream".into(),
            "DRAM total".into(),
        ]);
        for fl in &self.flows {
            t.row(vec![
                fl.label.clone(),
                fl.npu_read_bytes.to_string(),
                fl.nsb_served_bytes.to_string(),
                fl.offchip_demand_bytes.to_string(),
                fl.offchip_prefetch_bytes.to_string(),
                fl.offchip_stream_bytes.to_string(),
                fl.offchip_total().to_string(),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "off-chip demand reduction: NVR {}x, NVR+NSB {}x vs InO",
            fmt3(self.offchip_demand_reduction("NVR")),
            fmt3(self.offchip_demand_reduction("NVR+NSB")),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvr_shifts_traffic_from_demand_to_prefetch() {
        let fig = run_jobs(Scale::Tiny, 7, 2);
        let find = |label: &str| {
            fig.flows
                .iter()
                .find(|fl| fl.label == label)
                .expect("config present")
        };
        let ino = find("InO");
        let nvr = find("NVR");
        assert!(nvr.offchip_demand_bytes * 2 < ino.offchip_demand_bytes);
        assert!(nvr.offchip_prefetch_bytes > 0);
        assert_eq!(ino.offchip_prefetch_bytes, 0);
    }
}
