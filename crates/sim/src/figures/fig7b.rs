//! Fig. 7b′ — DRAM channel scaling (companion to Fig. 7).
//!
//! Sweeps the multi-channel DRAM backend over 1/2/4 line-interleaved
//! channels for every workload, comparing InO, NVR and NVR+NSB *on the
//! same memory system* per channel count. The questions it answers:
//!
//! * how much of the residual headline gap is a saturated channel
//!   (GCN runs its single channel near 0.9 utilisation — does a second
//!   channel convert that into speedup?);
//! * whether NVR's speedup *grows* with channel count (prefetching is
//!   bandwidth-hungry: more channels mean more overlap to exploit) or
//!   the workload was latency-bound all along;
//! * what the demand/prefetch arbitration costs speculation per channel
//!   count — the queue-delay percentiles fall as channels are added.

use std::fmt;

use nvr_common::DataWidth;
use nvr_mem::{DramConfig, MemoryConfig};
use nvr_workloads::{Scale, TileOrder, WorkloadId};

use crate::metrics::geometric_mean;
use crate::report::{fmt3, Table};
use crate::runner::SystemKind;
use crate::sweep::{run_sweep, SweepSpec};

/// The swept channel counts.
pub const CHANNELS: [usize; 3] = [1, 2, 4];

/// One (channels, workload, system) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelCell {
    /// DRAM channel count of this cell's memory system.
    pub channels: usize,
    /// Workload short name.
    pub workload: &'static str,
    /// System label.
    pub system: &'static str,
    /// Total cycles of the run.
    pub cycles: u64,
    /// Speedup over InO on the *same* channel count.
    pub speedup: f64,
    /// Busiest channel's utilisation.
    pub channel_util_max: f64,
    /// Mean per-channel utilisation.
    pub channel_util_mean: f64,
    /// Median speculative-fill queue delay (cycles), merged channels.
    pub qd_p50: u64,
    /// 95th-percentile speculative-fill queue delay (cycles).
    pub qd_p95: u64,
}

/// The channel-scaling data set.
#[derive(Debug, Clone, Default)]
pub struct Fig7b {
    /// All cells, channels-major then workload then system.
    pub cells: Vec<ChannelCell>,
}

impl Fig7b {
    /// The cell of one (channels, workload, system) coordinate.
    #[must_use]
    pub fn get(&self, channels: usize, workload: &str, system: &str) -> Option<&ChannelCell> {
        self.cells
            .iter()
            .find(|c| c.channels == channels && c.workload == workload && c.system == system)
    }

    /// Geometric-mean speedup of `system` across workloads at one channel
    /// count (0 when absent).
    #[must_use]
    pub fn geomean(&self, channels: usize, system: &str) -> f64 {
        let speedups: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.channels == channels && c.system == system)
            .map(|c| c.speedup)
            .collect();
        geometric_mean(&speedups)
    }
}

/// The compared systems, in bar order.
const SYSTEMS: [SystemKind; 3] = [SystemKind::InOrder, SystemKind::Nvr, SystemKind::NvrNsb];

/// Runs the channel-scaling sweep over a workload subset on `jobs`
/// workers.
#[must_use]
pub fn run_jobs_with_workloads(
    scale: Scale,
    seed: u64,
    jobs: usize,
    workloads: &[WorkloadId],
) -> Fig7b {
    let width = DataWidth::Fp16;
    let mut cells = Vec::new();
    for channels in CHANNELS {
        let results = run_sweep(
            &SweepSpec {
                workloads: workloads.to_vec(),
                systems: SYSTEMS.to_vec(),
                scales: vec![scale],
                widths: vec![width],
                seeds: vec![seed],
                mem_cfg: MemoryConfig {
                    dram: DramConfig::default().with_channels(channels),
                    ..MemoryConfig::default()
                },
                ..SweepSpec::default()
            },
            jobs,
        );
        for &w in workloads {
            for system in SYSTEMS {
                let cell = results
                    .get(w, system, scale, TileOrder::Natural, width, seed)
                    .expect("sweep covers the full grid");
                let o = &cell.outcome;
                let util = o.channel_utilisation();
                cells.push(ChannelCell {
                    channels,
                    workload: w.short(),
                    system: system.label(),
                    cycles: o.result.total_cycles,
                    speedup: results.speedup_vs_inorder(cell).unwrap_or(0.0),
                    channel_util_max: o.result.max_channel_utilisation(),
                    channel_util_mean: nvr_common::mean(util),
                    qd_p50: o.queue_delay_percentile(0.5),
                    qd_p95: o.queue_delay_percentile(0.95),
                });
            }
        }
    }
    Fig7b { cells }
}

/// Runs the full sweep (all workloads) on `jobs` workers.
#[must_use]
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Fig7b {
    run_jobs_with_workloads(scale, seed, jobs, &WorkloadId::ALL)
}

/// Single-threaded convenience wrapper over [`run_jobs`].
#[must_use]
pub fn run(scale: Scale, seed: u64) -> Fig7b {
    run_jobs(scale, seed, 1)
}

impl fmt::Display for Fig7b {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 7b' — DRAM channel scaling (speedup vs InO at the same \
             channel count; qd = prefetch queue delay)"
        )?;
        let mut t = Table::new(vec![
            "channels".into(),
            "workload".into(),
            "system".into(),
            "cycles".into(),
            "speedup".into(),
            "ch util max".into(),
            "ch util mean".into(),
            "qd p50".into(),
            "qd p95".into(),
        ]);
        for c in &self.cells {
            t.row(vec![
                c.channels.to_string(),
                c.workload.into(),
                c.system.into(),
                c.cycles.to_string(),
                format!("{}x", fmt3(c.speedup)),
                fmt3(c.channel_util_max),
                fmt3(c.channel_util_mean),
                c.qd_p50.to_string(),
                c.qd_p95.to_string(),
            ]);
        }
        writeln!(f, "{t}")?;
        for channels in CHANNELS {
            if self.cells.iter().any(|c| c.channels == channels) {
                writeln!(
                    f,
                    "  {channels}ch geomean: NVR {}x, NVR+NSB {}x",
                    fmt3(self.geomean(channels, "NVR")),
                    fmt3(self.geomean(channels, "NVR+NSB")),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_scaling_shape_holds() {
        let fig = run_jobs_with_workloads(Scale::Tiny, 7, 2, &[WorkloadId::Gcn]);
        assert_eq!(fig.cells.len(), CHANNELS.len() * SYSTEMS.len());
        for channels in CHANNELS {
            let ino = fig.get(channels, "GCN", "InO").expect("InO cell");
            assert!((ino.speedup - 1.0).abs() < 1e-9, "InO normalises to 1");
            let nvr = fig.get(channels, "GCN", "NVR").expect("NVR cell");
            assert!(
                nvr.speedup >= 1.0,
                "{channels}ch: NVR speedup {}",
                nvr.speedup
            );
            // The utilisation vector matches the configured channel count.
            assert!(nvr.channel_util_max <= 1.0 + 1e-9);
            assert!(nvr.channel_util_mean <= nvr.channel_util_max + 1e-9);
        }
        // More channels never slow the in-order baseline down.
        let one = fig.get(1, "GCN", "InO").expect("cell").cycles;
        let four = fig.get(4, "GCN", "InO").expect("cell").cycles;
        assert!(four <= one, "4ch InO {four} vs 1ch {one}");
        let text = fig.to_string();
        assert!(text.contains("geomean"));
    }
}
