//! Fig. 9 — NSB vs L2 sizing sensitivity, plus the NSB retention-policy
//! study.
//!
//! Sweeps NSB capacity {4..32 KB} against L2 capacity {64..1024 KB} under
//! NVR+NSB on the reuse-heavy H2O workload (whose heavy-hitter set is in
//! the NSB's capacity range), reporting a transparent performance metric:
//! the inverse of latency x area, with area the summed SRAM capacity. The
//! paper's own metric definition ("the product of NSB and L2 Cache
//! dimensions") is not numerically recoverable from its garbled Fig. 9
//! cells; EXPERIMENTS.md records the deviation.
//!
//! The retention-policy companion study sweeps the *policy* axis the
//! sizing grid holds fixed: NSB capacity x {pure-LRU, scored fill/shrink}
//! x admission threshold on GCN under the clustered tile order — the
//! workload and schedule whose hub reuse the scored policy exists to
//! capture. Exported as a CSV (`sweep --figure fig9 --csv`) so CI can
//! archive the full surface.

use std::fmt;

use nvr_common::{DataWidth, LINE_BYTES};
use nvr_core::{nsb_config, nsb_scored, NvrConfig, NvrPrefetcher};
use nvr_mem::{CacheConfig, MemoryConfig, MemorySystem, RetentionPolicy};
use nvr_npu::{NpuConfig, NpuEngine};
use nvr_workloads::minkowski::{self, PointcloudParams, VoxelOrder};
use nvr_workloads::{Scale, TileOrder, WorkloadId, WorkloadSpec};

use crate::report::{fmt3, Table};
use crate::runner::{run_system, run_system_tuned, SystemKind};
use crate::sweep::run_batch;

/// One cell of the sensitivity grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// NSB capacity in KB.
    pub nsb_kb: u64,
    /// L2 capacity in KB.
    pub l2_kb: u64,
    /// Total cycles of the NVR+NSB run.
    pub cycles: u64,
    /// The paper's metric: `1e9 / (latency x area_kb)`, higher is better.
    pub perf: f64,
}

/// One cell of the point-cloud density/order sensitivity sweep — the
/// workload-side axes [`PointcloudParams`] opens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityCell {
    /// Occupied voxels in the scene.
    pub points: usize,
    /// Output-voxel traversal order.
    pub order: VoxelOrder,
    /// NVR total cycles.
    pub nvr_cycles: u64,
    /// NVR speedup over the in-order no-prefetch run of the same scene.
    pub speedup: f64,
}

/// One cell of the NSB retention-policy study: GCN (clustered tile
/// order) under NVR+NSB with one (capacity, policy, admission) point.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCell {
    /// NSB capacity in KB.
    pub nsb_kb: u64,
    /// Retention policy label (`lru` or `scored`).
    pub policy: &'static str,
    /// Admission threshold ([`NvrConfig::nsb_admit_min_reuse`]); always 0
    /// for the `lru` rows.
    pub admit: u32,
    /// Total cycles of the NVR+NSB run.
    pub cycles: u64,
    /// Speedup over the in-order no-prefetch run of the same tile order.
    pub speedup: f64,
}

/// The Fig. 9 grid.
#[derive(Debug, Clone, Default)]
pub struct Fig9 {
    /// All grid cells, row-major by NSB size.
    pub cells: Vec<Cell>,
    /// The point-cloud density/order sensitivity companion sweep (empty
    /// for subset runs).
    pub density: Vec<DensityCell>,
    /// The NSB retention-policy study (empty for subset runs).
    pub policy: Vec<PolicyCell>,
}

/// NSB sweep points (KB).
pub const NSB_SIZES: [u64; 4] = [4, 8, 16, 32];
/// L2 sweep points (KB).
pub const L2_SIZES: [u64; 7] = [64, 128, 192, 256, 384, 512, 1024];

impl Fig9 {
    /// The cell at the given sizes.
    #[must_use]
    pub fn cell(&self, nsb_kb: u64, l2_kb: u64) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.nsb_kb == nsb_kb && c.l2_kb == l2_kb)
    }

    /// The paper's comparison at (256 KB L2, 4 KB NSB): perf deltas from
    /// quadrupling the NSB vs growing the L2 to 1024 KB.
    /// Returns `(nsb_gain, l2_gain)`.
    #[must_use]
    pub fn nsb_vs_l2_benefit(&self) -> Option<(f64, f64)> {
        let base = self.cell(4, 256)?.perf;
        let nsb_up = self.cell(16, 256)?.perf;
        let l2_up = self.cell(4, 1024)?.perf;
        Some((nsb_up - base, l2_up - base))
    }
}

/// Runs the sizing grid (optionally restricted for tests) on `jobs`
/// workers — each (NSB, L2) cell is one independent sweep job.
#[must_use]
pub fn run_subset_jobs(
    scale: Scale,
    seed: u64,
    nsb_sizes: &[u64],
    l2_sizes: &[u64],
    jobs: usize,
) -> Fig9 {
    let mut grid = Vec::with_capacity(nsb_sizes.len() * l2_sizes.len());
    for &nsb_kb in nsb_sizes {
        for &l2_kb in l2_sizes {
            grid.push((nsb_kb, l2_kb));
        }
    }
    let tasks: Vec<_> = grid
        .into_iter()
        .map(|(nsb_kb, l2_kb)| {
            move || {
                let spec = WorkloadSpec {
                    width: DataWidth::Fp16,
                    seed,
                    scale,
                    order: TileOrder::Natural,
                };
                let program = WorkloadId::H2o.build(&spec);
                let engine = NpuEngine::new(NpuConfig::default());
                let mem_cfg = MemoryConfig::default()
                    .with_l2(CacheConfig::l2_default().with_size(l2_kb * 1024))
                    .with_nsb(nsb_config(nsb_kb));
                // Co-design: the NSB is the speculative buffer, so it bounds
                // how much speculative state NVR may keep in flight (§IV-G) —
                // half its lines, leaving the rest for resident reuse.
                let lookahead = ((nsb_kb * 1024 / LINE_BYTES) / 2).max(16) as usize;
                let nvr_cfg = NvrConfig {
                    fill_nsb: true,
                    lookahead_lines: lookahead,
                    ..NvrConfig::default()
                };
                let mut mem = MemorySystem::new(mem_cfg);
                let mut nvr = NvrPrefetcher::new(nvr_cfg);
                let result = engine.run(&program, &mut mem, &mut nvr);
                let area_kb = (nsb_kb + l2_kb) as f64;
                Cell {
                    nsb_kb,
                    l2_kb,
                    cycles: result.total_cycles,
                    perf: 1.0e9 / (result.total_cycles as f64 * area_kb),
                }
            }
        })
        .collect();
    Fig9 {
        cells: run_batch(tasks, jobs),
        density: Vec::new(),
        policy: Vec::new(),
    }
}

/// Single-threaded subset runner (tests).
#[must_use]
pub fn run_subset(scale: Scale, seed: u64, nsb_sizes: &[u64], l2_sizes: &[u64]) -> Fig9 {
    run_subset_jobs(scale, seed, nsb_sizes, l2_sizes, 1)
}

/// Density sweep points (occupied voxels of the MK-shaped scene).
pub const DENSITY_POINTS: [usize; 3] = [2048, 8192, 16384];

/// Runs the point-cloud density/order companion sweep: the workload-side
/// sensitivity the [`PointcloudParams`] knobs open. Each (density, order)
/// scene runs InO and NVR; the cell reports NVR's speedup.
#[must_use]
pub fn density_sweep_jobs(scale: Scale, seed: u64, jobs: usize) -> Vec<DensityCell> {
    let mut axes = Vec::new();
    for &points in &DENSITY_POINTS {
        for order in [VoxelOrder::Random, VoxelOrder::Sorted] {
            axes.push((points, order));
        }
    }
    let tasks: Vec<_> = axes
        .into_iter()
        .map(|(points, order)| {
            move || {
                let spec = WorkloadSpec {
                    width: DataWidth::Fp16,
                    seed,
                    scale,
                    order: TileOrder::Natural,
                };
                let params = PointcloudParams::mk_default()
                    .with_points(points)
                    .with_order(order);
                let program = minkowski::build_with_params(&spec, &params);
                let mem_cfg = MemoryConfig::default();
                let ino = run_system(&program, &mem_cfg, SystemKind::InOrder);
                let nvr = run_system(&program, &mem_cfg, SystemKind::Nvr);
                DensityCell {
                    points,
                    order,
                    nvr_cycles: nvr.result.total_cycles,
                    speedup: ino.result.total_cycles as f64 / nvr.result.total_cycles.max(1) as f64,
                }
            }
        })
        .collect();
    run_batch(tasks, jobs)
}

/// NSB capacities of the retention-policy study (KB).
pub const POLICY_NSB_SIZES: [u64; 3] = [8, 16, 32];
/// Admission thresholds swept for the scored rows of the policy study.
pub const POLICY_ADMITS: [u32; 3] = [2, 4, 8];

/// Runs the NSB retention-policy study: GCN under the clustered tile
/// order, NVR+NSB, over NSB capacity x {pure-LRU, scored fill/shrink} x
/// admission threshold. The `lru` rows run the plain-LRU buffer exactly
/// as the pre-policy seed did; the `scored` rows run the shipped
/// configuration — scored NSB plus score-weighted-eviction L2
/// ([`RetentionPolicy::ScoredEvict`]) — at each threshold, so the study
/// reads as "what did the policy buy at this capacity, and how sharp is
/// the admission knob".
#[must_use]
pub fn policy_sweep_jobs(scale: Scale, seed: u64, jobs: usize) -> Vec<PolicyCell> {
    let mut axes: Vec<(u64, &'static str, u32)> = Vec::new();
    for &nsb_kb in &POLICY_NSB_SIZES {
        axes.push((nsb_kb, "lru", 0));
        for &admit in &POLICY_ADMITS {
            axes.push((nsb_kb, "scored", admit));
        }
    }
    let tasks: Vec<_> = axes
        .into_iter()
        .map(|(nsb_kb, policy, admit)| {
            move || {
                let spec = WorkloadSpec {
                    width: DataWidth::Fp16,
                    seed,
                    scale,
                    order: TileOrder::Clustered,
                };
                let program = WorkloadId::Gcn.build(&spec);
                let mem_cfg = if policy == "lru" {
                    MemoryConfig::default().with_nsb(nsb_config(nsb_kb))
                } else {
                    let mut cfg = MemoryConfig::default().with_nsb(nsb_scored(nsb_kb));
                    cfg.l2.policy = RetentionPolicy::ScoredEvict;
                    cfg
                };
                let ino = run_system(&program, &mem_cfg, SystemKind::InOrder);
                let nsb = run_system_tuned(&program, &mem_cfg, SystemKind::NvrNsb, Some(admit));
                PolicyCell {
                    nsb_kb,
                    policy,
                    admit,
                    cycles: nsb.result.total_cycles,
                    speedup: ino.result.total_cycles as f64 / nsb.result.total_cycles.max(1) as f64,
                }
            }
        })
        .collect();
    run_batch(tasks, jobs)
}

/// Renders the policy study as a deterministic CSV (the CI artifact).
#[must_use]
pub fn policy_csv(cells: &[PolicyCell]) -> String {
    let mut out = String::from("workload,order,nsb_kb,policy,admit,cycles,speedup\n");
    for c in cells {
        out.push_str(&format!(
            "GCN,clustered,{},{},{},{},{}\n",
            c.nsb_kb,
            c.policy,
            c.admit,
            c.cycles,
            fmt3(c.speedup)
        ));
    }
    out
}

/// Runs the full paper grid plus the density/order and retention-policy
/// companion sweeps on `jobs` workers.
#[must_use]
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Fig9 {
    let mut fig = run_subset_jobs(scale, seed, &NSB_SIZES, &L2_SIZES, jobs);
    fig.density = density_sweep_jobs(scale, seed, jobs);
    fig.policy = policy_sweep_jobs(scale, seed, jobs);
    fig
}

/// Runs the full paper grid, single-threaded.
#[must_use]
pub fn run(scale: Scale, seed: u64) -> Fig9 {
    run_jobs(scale, seed, 1)
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 9 — perf = 1e9 / (latency x area); higher is better"
        )?;
        let l2s: Vec<u64> = {
            let mut v: Vec<u64> = self.cells.iter().map(|c| c.l2_kb).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let nsbs: Vec<u64> = {
            let mut v: Vec<u64> = self.cells.iter().map(|c| c.nsb_kb).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut headers = vec!["NSB\\L2 (KB)".to_owned()];
        headers.extend(l2s.iter().map(u64::to_string));
        let mut t = Table::new(headers);
        for &n in &nsbs {
            let mut row = vec![n.to_string()];
            for &l in &l2s {
                row.push(self.cell(n, l).map_or("-".into(), |c| fmt3(c.perf)));
            }
            t.row(row);
        }
        writeln!(f, "{t}")?;
        if let Some((nsb_gain, l2_gain)) = self.nsb_vs_l2_benefit() {
            writeln!(
                f,
                "4x NSB (4->16 KB @ 256 KB L2): perf {}{}; 4x L2 (256->1024 KB @ 4 KB NSB): perf {}{}",
                if nsb_gain >= 0.0 { "+" } else { "" },
                fmt3(nsb_gain),
                if l2_gain >= 0.0 { "+" } else { "" },
                fmt3(l2_gain),
            )?;
            if l2_gain > 0.0 {
                writeln!(
                    f,
                    "NSB scaling delivers {}x the benefit",
                    fmt3(nsb_gain / l2_gain)
                )?;
            } else {
                writeln!(
                    f,
                    "NSB scaling wins outright: the same silicon spent on L2 loses perf/area"
                )?;
            }
        }
        if !self.density.is_empty() {
            writeln!(f)?;
            writeln!(
                f,
                "Fig. 9 companion — point-cloud density/order sensitivity (MK-shaped scene)"
            )?;
            let mut t = Table::new(vec![
                "points".into(),
                "order".into(),
                "NVR cycles".into(),
                "speedup vs InO".into(),
            ]);
            for c in &self.density {
                t.row(vec![
                    c.points.to_string(),
                    format!("{:?}", c.order),
                    c.nvr_cycles.to_string(),
                    format!("{}x", fmt3(c.speedup)),
                ]);
            }
            writeln!(f, "{t}")?;
        }
        if !self.policy.is_empty() {
            writeln!(f)?;
            writeln!(
                f,
                "Fig. 9 companion — NSB retention-policy study (GCN, clustered order, NVR+NSB)"
            )?;
            let mut t = Table::new(vec![
                "NSB KB".into(),
                "policy".into(),
                "admit".into(),
                "cycles".into(),
                "speedup vs InO".into(),
            ]);
            for c in &self.policy {
                t.row(vec![
                    c.nsb_kb.to_string(),
                    c.policy.to_owned(),
                    c.admit.to_string(),
                    c.cycles.to_string(),
                    format!("{}x", fmt3(c.speedup)),
                ]);
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_caches_do_not_hurt_latency() {
        let fig = run_subset(Scale::Tiny, 4, &[4, 16], &[64, 256]);
        assert_eq!(fig.cells.len(), 4);
        let small = fig.cell(4, 64).expect("cell").cycles;
        let big = fig.cell(16, 256).expect("cell").cycles;
        assert!(big <= small, "bigger caches {big} vs {small}");
    }

    #[test]
    fn nsb_growth_beats_area_penalty_at_large_l2() {
        // The paper's Fig. 9 claim in shape: at a 256 KB L2, quadrupling
        // the (tiny) NSB raises perf/area.
        let fig = run_subset(Scale::Tiny, 4, &[4, 16], &[256]);
        let small = fig.cell(4, 256).expect("cell").perf;
        let big = fig.cell(16, 256).expect("cell").perf;
        assert!(big > small, "NSB 16 KB {big} should beat 4 KB {small}");
    }

    #[test]
    fn density_sweep_speedups_positive() {
        let cells = density_sweep_jobs(Scale::Tiny, 4, 2);
        assert_eq!(cells.len(), DENSITY_POINTS.len() * 2);
        for c in &cells {
            assert!(
                c.speedup >= 1.0,
                "{} pts {:?}: NVR should not lose ({}x)",
                c.points,
                c.order,
                c.speedup
            );
        }
    }

    #[test]
    fn policy_study_covers_axes_and_exports_csv() {
        let cells = policy_sweep_jobs(Scale::Tiny, 4, 2);
        assert_eq!(
            cells.len(),
            POLICY_NSB_SIZES.len() * (1 + POLICY_ADMITS.len())
        );
        for c in &cells {
            assert!(c.speedup > 1.0, "{c:?}: NVR+NSB should beat InO");
            assert_eq!(c.policy == "lru", c.admit == 0);
        }
        let csv = policy_csv(&cells);
        assert!(csv.starts_with("workload,order,nsb_kb,policy,admit,cycles,speedup\n"));
        assert_eq!(csv.lines().count(), cells.len() + 1);
    }

    #[test]
    fn scored_nsb_at_admit_zero_degenerates_to_lru() {
        // System-level LRU-equivalence invariant: a scored NSB with the
        // admission knob at 0 must reproduce the plain-LRU buffer's run
        // cycle for cycle (the policy only diverges once scores flow).
        let spec = WorkloadSpec::tiny(DataWidth::Fp16, 4);
        let program = WorkloadId::Gcn.build(&spec);
        let lru_cfg = MemoryConfig::default().with_nsb(nsb_config(16));
        let scored_cfg = MemoryConfig::default().with_nsb(nsb_scored(16));
        let lru = run_system_tuned(&program, &lru_cfg, SystemKind::NvrNsb, Some(0));
        let scored = run_system_tuned(&program, &scored_cfg, SystemKind::NvrNsb, Some(0));
        assert_eq!(lru.result.total_cycles, scored.result.total_cycles);
    }

    #[test]
    fn perf_metric_penalises_area() {
        let fig = run_subset(Scale::Tiny, 4, &[4], &[64, 1024]);
        let small = fig.cell(4, 64).expect("cell");
        let big = fig.cell(4, 1024).expect("cell");
        // Unless the big L2 is dramatically faster, its perf/area is lower.
        if big.cycles * 4 > small.cycles {
            assert!(small.perf > big.perf);
        }
    }
}
