//! Table II — the sparse computation workload inventory.

use std::fmt;

use nvr_workloads::WorkloadId;

use crate::report::Table;

/// The Table II data (static inventory).
#[derive(Debug, Clone, Copy, Default)]
pub struct Table2;

/// Produces the table.
#[must_use]
pub fn run() -> Table2 {
    Table2
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table II — sparse computation workloads")?;
        let mut t = Table::new(vec!["workload".into(), "short".into(), "domain".into()]);
        for w in WorkloadId::ALL {
            t.row(vec![w.name().into(), w.short().into(), w.domain().into()]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_eight() {
        let out = run().to_string();
        for w in WorkloadId::ALL {
            assert!(out.contains(w.short()), "missing {}", w.short());
        }
    }
}
