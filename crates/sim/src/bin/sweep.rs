//! `sweep` — parallel regeneration of the paper's evaluation.
//!
//! Two modes:
//!
//! * **figures** (default): regenerate every table and figure (or a
//!   `--figure` subset) on `--jobs` workers. The numeric renditions go to
//!   stdout; wall-clock timings go to stderr (and `--timings CSV`), so
//!   stdout is byte-identical across worker counts:
//!
//!   ```sh
//!   cargo run --release -p nvr_sim --bin sweep -- --jobs 4
//!   cargo run --release -p nvr_sim --bin sweep -- --figure fig5 --figure headline
//!   ```
//!
//! * **grid** (`--grid`): a raw workloads x systems x scales x orders x
//!   widths x seeds cartesian sweep with repeatable axis filters and CSV
//!   output:
//!
//!   ```sh
//!   cargo run --release -p nvr_sim --bin sweep -- --grid --workload DS --system NVR \
//!       --scale tiny --scale default --seed 1 --seed 2 --csv -
//!   ```

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use nvr_common::DataWidth;
use nvr_sim::figures::FigureId;
use nvr_sim::sweep::{pool, run_sweep, SweepSpec, DEFAULT_SEED};
use nvr_sim::SystemKind;
use nvr_workloads::{Scale, TileOrder, WorkloadId};

const USAGE: &str = "\
sweep — regenerate the paper's evaluation in parallel

USAGE (figures mode, default):
  sweep [--jobs N] [--scale SCALE] [--seed S] [--figure NAME]... [--timings PATH]

USAGE (grid mode):
  sweep --grid [--jobs N] [--workload W]... [--system S]... [--scale SCALE]...
        [--order O]... [--width X]... [--seed S]... [--nsb-admit T] [--channels N]
        [--csv PATH|-] [--timings PATH]

OPTIONS:
  --jobs N        worker threads (default: available parallelism)
  --figure NAME   fig1b|fig5|fig6|fig6b|fig7|fig7b|fig8|fig9|headline|table1|table2 (repeatable)
  --workload W    DS|GAT|GCN|GSABT|H2O|MK|SCN|ST (repeatable; grid mode)
  --system S      InO|OoO|Stream|IMP|DVR|NVR|NVR+NSB (repeatable; grid mode)
  --scale SCALE   tiny|default|large (repeatable in grid mode)
  --order O       natural|degree|clustered tile order (repeatable; grid mode)
  --width X       int8|fp16|int32 (repeatable; grid mode)
  --seed S        u64 seed (repeatable in grid mode)
  --nsb-admit T   NSB admission threshold override for NVR systems (0 = LRU NSB; grid mode)
  --channels N    DRAM channel count of the grid's memory system (grid mode)
  --csv PATH      grid mode: write the deterministic result CSV (`-` = stdout);
                  figures mode with fig9: write the retention-policy study CSV
  --timings PATH  write wall-clock CSV (figures: per figure; grid: per cell)
  --help          this text

Numeric output is identical for every --jobs value; timings go to stderr.";

struct Args {
    jobs: usize,
    grid: bool,
    figures: Vec<FigureId>,
    workloads: Vec<WorkloadId>,
    systems: Vec<SystemKind>,
    scales: Vec<Scale>,
    orders: Vec<TileOrder>,
    widths: Vec<DataWidth>,
    seeds: Vec<u64>,
    nsb_admit: Option<u32>,
    channels: Option<usize>,
    csv: Option<String>,
    timings: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: pool::default_workers(),
        grid: false,
        figures: Vec::new(),
        workloads: Vec::new(),
        systems: Vec::new(),
        scales: Vec::new(),
        orders: Vec::new(),
        widths: Vec::new(),
        seeds: Vec::new(),
        nsb_admit: None,
        channels: None,
        csv: None,
        timings: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--grid" => args.grid = true,
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--figure" => {
                let v = value("--figure")?;
                args.figures
                    .push(FigureId::from_name(&v).ok_or_else(|| format!("unknown figure `{v}`"))?);
            }
            "--workload" => {
                let v = value("--workload")?;
                args.workloads.push(
                    WorkloadId::from_short(&v).ok_or_else(|| format!("unknown workload `{v}`"))?,
                );
            }
            "--system" => {
                let v = value("--system")?;
                args.systems.push(
                    SystemKind::from_label(&v).ok_or_else(|| format!("unknown system `{v}`"))?,
                );
            }
            "--scale" => args
                .scales
                .push(value("--scale")?.parse().map_err(|e| format!("{e}"))?),
            "--order" => args
                .orders
                .push(value("--order")?.parse().map_err(|e| format!("{e}"))?),
            "--width" => args
                .widths
                .push(value("--width")?.parse().map_err(|e| format!("{e}"))?),
            "--seed" => {
                args.seeds.push(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            "--nsb-admit" => {
                args.nsb_admit = Some(
                    value("--nsb-admit")?
                        .parse()
                        .map_err(|e| format!("--nsb-admit: {e}"))?,
                );
            }
            "--channels" => {
                let n: usize = value("--channels")?
                    .parse()
                    .map_err(|e| format!("--channels: {e}"))?;
                if n == 0 {
                    return Err("--channels must be at least 1".into());
                }
                args.channels = Some(n);
            }
            "--csv" => args.csv = Some(value("--csv")?),
            "--timings" => args.timings = Some(value("--timings")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    // Reject flags that the selected mode would silently ignore.
    if args.grid {
        if !args.figures.is_empty() {
            return Err("--figure only applies to figures mode (drop --grid)".into());
        }
    } else {
        if !args.workloads.is_empty()
            || !args.systems.is_empty()
            || !args.widths.is_empty()
            || !args.orders.is_empty()
        {
            return Err(
                "--workload/--system/--width/--order only apply to grid mode (add --grid)".into(),
            );
        }
        if args.nsb_admit.is_some() {
            return Err("--nsb-admit only applies to grid mode (add --grid)".into());
        }
        if args.csv.is_some()
            && !(args.figures.contains(&FigureId::Fig9) || args.figures.is_empty())
        {
            return Err(
                "--csv in figures mode writes the fig9 policy-study CSV; include --figure fig9"
                    .into(),
            );
        }
        if args.channels.is_some() {
            return Err(
                "--channels only applies to grid mode (the fig7b driver sweeps channels)".into(),
            );
        }
        if args.scales.len() > 1 || args.seeds.len() > 1 {
            return Err(
                "figures mode takes a single --scale and --seed (repeat them in --grid mode)"
                    .into(),
            );
        }
    }
    Ok(args)
}

fn write_file(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("writing {path}: {e}"))
}

fn run_figures(args: &Args) -> Result<(), String> {
    let figures = if args.figures.is_empty() {
        FigureId::ALL.to_vec()
    } else {
        args.figures.clone()
    };
    let scale = args.scales.first().copied().unwrap_or_default();
    let seed = args.seeds.first().copied().unwrap_or(DEFAULT_SEED);
    let mut timing_csv = String::from("figure,wall_ms\n");
    // nvr-lint: allow(determinism/wall-clock) reason="end-to-end timing goes to stderr and --timings CSV only; stdout stays byte-identical"
    let t0 = Instant::now();
    for fig in &figures {
        // nvr-lint: allow(determinism/wall-clock) reason="per-figure timing goes to stderr and --timings CSV only; stdout stays byte-identical"
        let fig_t0 = Instant::now();
        let rendition = fig.regenerate(scale, seed, args.jobs);
        let wall = fig_t0.elapsed();
        println!("{rendition}");
        eprintln!(
            "[sweep] {:<8} {:>8.1} ms",
            fig.name(),
            wall.as_secs_f64() * 1e3
        );
        timing_csv.push_str(&format!("{},{:.3}\n", fig.name(), wall.as_secs_f64() * 1e3));
    }
    let total = t0.elapsed();
    eprintln!(
        "[sweep] total    {:>8.1} ms ({} figures, {} jobs, scale {scale})",
        total.as_secs_f64() * 1e3,
        figures.len(),
        args.jobs
    );
    timing_csv.push_str(&format!("total,{:.3}\n", total.as_secs_f64() * 1e3));
    if let Some(path) = &args.timings {
        write_file(path, &timing_csv)?;
    }
    if let Some(path) = &args.csv {
        // The fig9 retention-policy study as a deterministic CSV (the CI
        // artifact). Recomputed from the same (scale, seed), so the file
        // matches the rendition printed above for any --jobs.
        let cells = nvr_sim::figures::fig9::policy_sweep_jobs(scale, seed, args.jobs);
        let csv = nvr_sim::figures::fig9::policy_csv(&cells);
        match path.as_str() {
            "-" => print!("{csv}"),
            _ => write_file(path, &csv)?,
        }
    }
    Ok(())
}

fn run_grid(args: &Args) -> Result<(), String> {
    fn pick<T: Clone>(chosen: &[T], default: Vec<T>) -> Vec<T> {
        if chosen.is_empty() {
            default
        } else {
            chosen.to_vec()
        }
    }
    let defaults = SweepSpec::default();
    let mut mem_cfg = defaults.mem_cfg;
    if let Some(channels) = args.channels {
        mem_cfg.dram.channels = channels;
    }
    let spec = SweepSpec {
        workloads: pick(&args.workloads, defaults.workloads),
        systems: pick(&args.systems, defaults.systems),
        scales: pick(&args.scales, defaults.scales),
        orders: pick(&args.orders, defaults.orders),
        widths: pick(&args.widths, defaults.widths),
        seeds: pick(&args.seeds, defaults.seeds),
        nsb_admit: args.nsb_admit,
        mem_cfg,
    };
    let results = run_sweep(&spec, args.jobs);
    match args.csv.as_deref() {
        Some("-") => print!("{}", results.to_csv()),
        Some(path) => {
            write_file(path, &results.to_csv())?;
            println!("{results}");
        }
        None => println!("{results}"),
    }
    eprintln!(
        "[sweep] {} cells in {:.1} ms ({} jobs)",
        results.cells.len(),
        results.wall.as_secs_f64() * 1e3,
        args.jobs
    );
    if let Some(path) = &args.timings {
        write_file(path, &results.timing_csv())?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            let mut err = std::io::stderr().lock();
            if msg.is_empty() {
                let _ = writeln!(err, "{USAGE}");
                return ExitCode::SUCCESS;
            }
            let _ = writeln!(err, "error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = if args.grid {
        run_grid(&args)
    } else {
        run_figures(&args)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
