//! `diag` — one-screen coverage/accuracy summary of NVR vs the in-order
//! baseline across all eight workloads at `Scale::Tiny`, for quick eyeball
//! checks while hacking on the controller (`cargo run -p nvr_sim --bin diag`).

use nvr_common::DataWidth;
use nvr_mem::MemoryConfig;
use nvr_sim::{coverage, run_system, SystemKind};
use nvr_workloads::{Scale, TileOrder, WorkloadId, WorkloadSpec};

fn main() {
    let cfg = MemoryConfig::default();
    println!(
        "{:>6} {:>10} {:>10} {:>7} {:>6} {:>6} {:>9} {:>9} {:>9}",
        "wl", "InO", "NVR", "speed", "cov", "acc", "issued", "useful", "misses"
    );
    for w in WorkloadId::ALL {
        let spec = WorkloadSpec {
            width: DataWidth::Fp16,
            seed: 9,
            scale: Scale::Tiny,
            order: TileOrder::Natural,
        };
        let p = w.build(&spec);
        let ino = run_system(&p, &cfg, SystemKind::InOrder);
        let nvr = run_system(&p, &cfg, SystemKind::Nvr);
        let cov = coverage(
            ino.result.mem.l2.demand_misses.get(),
            nvr.result.mem.l2.demand_misses.get(),
        );
        println!(
            "{:>6} {:>10} {:>10} {:>7.2} {:>6.2} {:>6.2} {:>9} {:>9} {:>9}",
            w.short(),
            ino.result.total_cycles,
            nvr.result.total_cycles,
            ino.result.total_cycles as f64 / nvr.result.total_cycles as f64,
            cov,
            nvr.result.mem.prefetch_accuracy(),
            nvr.result.mem.l2.prefetch_issued.get(),
            nvr.result.mem.l2.prefetch_useful.get(),
            nvr.result.mem.l2.demand_misses.get(),
        );
    }
}
