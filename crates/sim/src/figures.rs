//! One driver per table/figure of the paper's evaluation (§V).
//!
//! Every driver exposes `run(...) -> Data` returning structured results and
//! a `Display` implementation printing the paper-style rendition; the
//! `nvr-bench` binaries and Criterion benches are thin wrappers over these.

pub mod fig1b;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod headline;
pub mod table1;
pub mod table2;
