//! One driver per table/figure of the paper's evaluation (§V).
//!
//! Every driver exposes `run(...) -> Data` returning structured results and
//! a `Display` implementation printing the paper-style rendition; the
//! `nvr-bench` binaries and Criterion benches are thin wrappers over these.

pub mod fig1b;
pub mod fig5;
pub mod fig6;
pub mod fig6b;
pub mod fig7;
pub mod fig7b;
pub mod fig8;
pub mod fig9;
pub mod headline;
pub mod table1;
pub mod table2;

use nvr_workloads::Scale;

/// Identifier of one regenerable evaluation artifact — the uniform handle
/// the sweep binary and CI fan out over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FigureId {
    /// Fig. 1b — motivation sweep.
    Fig1b,
    /// Fig. 5 — normalised latency panels.
    Fig5,
    /// Fig. 6 — accuracy / coverage / pollution + data movement.
    Fig6,
    /// Fig. 6b′ — prefetch timeliness breakdown (issue→use slack).
    Fig6b,
    /// Fig. 7 — bandwidth allocation.
    Fig7,
    /// Fig. 7b′ — DRAM channel scaling (1/2/4 channels x workloads).
    Fig7b,
    /// Fig. 8 — LLM system evaluation.
    Fig8,
    /// Fig. 9 — NSB/L2 sizing + point-cloud density sensitivity.
    Fig9,
    /// The abstract's headline claims.
    Headline,
    /// Table I — hardware overhead.
    Table1,
    /// Table II — workload inventory.
    Table2,
}

impl FigureId {
    /// Every artifact, in the paper's order of appearance.
    pub const ALL: [FigureId; 11] = [
        FigureId::Fig1b,
        FigureId::Fig5,
        FigureId::Fig6,
        FigureId::Fig6b,
        FigureId::Fig7,
        FigureId::Fig7b,
        FigureId::Fig8,
        FigureId::Fig9,
        FigureId::Headline,
        FigureId::Table1,
        FigureId::Table2,
    ];

    /// CLI/report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FigureId::Fig1b => "fig1b",
            FigureId::Fig5 => "fig5",
            FigureId::Fig6 => "fig6",
            FigureId::Fig6b => "fig6b",
            FigureId::Fig7 => "fig7",
            FigureId::Fig7b => "fig7b",
            FigureId::Fig8 => "fig8",
            FigureId::Fig9 => "fig9",
            FigureId::Headline => "headline",
            FigureId::Table1 => "table1",
            FigureId::Table2 => "table2",
        }
    }

    /// Looks an artifact up by name, case-insensitively.
    #[must_use]
    pub fn from_name(s: &str) -> Option<FigureId> {
        FigureId::ALL
            .into_iter()
            .find(|f| f.name().eq_ignore_ascii_case(s))
    }

    /// Regenerates the artifact's data on `jobs` workers and returns the
    /// paper-style text rendition. Deterministic in (scale, seed) — the
    /// worker count never changes the bytes.
    #[must_use]
    pub fn regenerate(self, scale: Scale, seed: u64, jobs: usize) -> String {
        match self {
            FigureId::Fig1b => fig1b::run_jobs(scale, seed, jobs).to_string(),
            FigureId::Fig5 => fig5::run_jobs(scale, seed, jobs).to_string(),
            FigureId::Fig6 => fig6::run_jobs(scale, seed, jobs).to_string(),
            FigureId::Fig6b => fig6b::run_jobs(scale, seed, jobs).to_string(),
            FigureId::Fig7 => fig7::run_jobs(scale, seed, jobs).to_string(),
            FigureId::Fig7b => fig7b::run_jobs(scale, seed, jobs).to_string(),
            FigureId::Fig8 => fig8::run_jobs(seed, scale == Scale::Tiny, jobs).to_string(),
            FigureId::Fig9 => fig9::run_jobs(scale, seed, jobs).to_string(),
            FigureId::Headline => headline::run_jobs(scale, seed, jobs).to_string(),
            FigureId::Table1 => table1::run().to_string(),
            FigureId::Table2 => table2::run().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for f in FigureId::ALL {
            assert_eq!(FigureId::from_name(f.name()), Some(f));
            assert_eq!(FigureId::from_name(&f.name().to_uppercase()), Some(f));
        }
        assert_eq!(FigureId::from_name("fig2"), None);
    }

    #[test]
    fn static_tables_regenerate_instantly() {
        let t1 = FigureId::Table1.regenerate(Scale::Tiny, 0, 1);
        assert!(t1.contains("Table I"));
        let t2 = FigureId::Table2.regenerate(Scale::Tiny, 0, 4);
        assert!(t2.contains("Table II"));
    }
}
