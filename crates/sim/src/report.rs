//! Minimal aligned-column text tables for paper-style output.

use std::fmt;

/// A fixed-schema text table.
///
/// # Examples
///
/// ```
/// use nvr_sim::Table;
///
/// let mut t = Table::new(vec!["workload".into(), "latency".into()]);
/// t.row(vec!["DS".into(), "1.00".into()]);
/// let s = t.to_string();
/// assert!(s.contains("workload"));
/// assert!(s.contains("DS"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        let total = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with 3 significant digits, for table cells.
#[must_use]
pub fn fmt3(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert!(lines[2].contains("xxxxx"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fmt3_ranges() {
        assert_eq!(fmt3(0.0), "0");
        assert_eq!(fmt3(0.1234), "0.12");
        assert_eq!(fmt3(12.34), "12.3");
        assert_eq!(fmt3(1234.0), "1234");
    }
}
