//! Top-level simulator harness and per-figure experiment drivers.
//!
//! Wires the NPU engine, the memory hierarchy, the baseline prefetchers and
//! NVR into comparable runs, and regenerates every table and figure of the
//! paper's evaluation (§V). Each `figures::fig*` module returns structured
//! data *and* prints a paper-style text rendition, so the same code backs
//! the Criterion benches, the CLI binaries and the integration tests.
//!
//! # Examples
//!
//! ```
//! use nvr_sim::{run_system, SystemKind};
//! use nvr_workloads::{WorkloadId, WorkloadSpec};
//! use nvr_mem::MemoryConfig;
//! use nvr_common::DataWidth;
//!
//! let program = WorkloadId::St.build(&WorkloadSpec::tiny(DataWidth::Int8, 1));
//! let base = run_system(&program, &MemoryConfig::default(), SystemKind::InOrder);
//! let nvr = run_system(&program, &MemoryConfig::default(), SystemKind::Nvr);
//! assert!(nvr.result.total_cycles <= base.result.total_cycles);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod figures;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod sweep;

pub use metrics::{coverage, geometric_mean, pollution, timeliness_split};
pub use report::Table;
pub use runner::{run_system, RunOutcome, SystemKind};
pub use sweep::{run_sweep, SweepJob, SweepResults, SweepSpec};
