//! Comparable single runs of one program under one system configuration.

use nvr_common::Cycle;
use nvr_core::{nsb_scored, NvrConfig, NvrPrefetcher};
use nvr_mem::{MemoryConfig, MemorySystem};
use nvr_npu::{NpuConfig, NpuEngine, RunResult};
use nvr_prefetch::{
    DvrPrefetcher, ImpPrefetcher, NullPrefetcher, Prefetcher, StreamPrefetcher, TimelinessReport,
};
use nvr_trace::NpuProgram;

/// The compared systems: the six of Fig. 5 (§V-A "Comparison") plus the
/// paper's own NSB-backed configuration (§IV-G) as a first-class seventh
/// system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// In-order Gemmini, no prefetching.
    InOrder,
    /// Ideal out-of-order Gemmini, no prefetching.
    OutOfOrder,
    /// In-order + adaptive stream prefetcher.
    Stream,
    /// In-order + Indirect Memory Prefetcher.
    Imp,
    /// In-order + Decoupled Vector Runahead.
    Dvr,
    /// In-order + NPU Vector Runahead (the paper's contribution).
    Nvr,
    /// In-order + NVR filling a 16 KB NSB in front of the L2 (§IV-G).
    /// Self-contained: when the sweep's memory configuration has no NSB,
    /// this system adds the paper's default one itself, so it rides every
    /// grid axis unchanged.
    NvrNsb,
}

impl SystemKind {
    /// All systems in the paper's bar order (NVR+NSB appended).
    pub const ALL: [SystemKind; 7] = [
        SystemKind::InOrder,
        SystemKind::OutOfOrder,
        SystemKind::Stream,
        SystemKind::Imp,
        SystemKind::Dvr,
        SystemKind::Nvr,
        SystemKind::NvrNsb,
    ];

    /// The prefetcher-bearing systems of Fig. 6.
    pub const PREFETCHERS: [SystemKind; 5] = [
        SystemKind::Stream,
        SystemKind::Imp,
        SystemKind::Dvr,
        SystemKind::Nvr,
        SystemKind::NvrNsb,
    ];

    /// Looks a system up by its paper label, case-insensitively.
    #[must_use]
    pub fn from_label(s: &str) -> Option<SystemKind> {
        SystemKind::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(s))
    }

    /// Display label matching the paper's legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::InOrder => "InO",
            SystemKind::OutOfOrder => "OoO",
            SystemKind::Stream => "Stream",
            SystemKind::Imp => "IMP",
            SystemKind::Dvr => "DVR",
            SystemKind::Nvr => "NVR",
            SystemKind::NvrNsb => "NVR+NSB",
        }
    }

    /// The memory configuration this system actually runs against:
    /// [`SystemKind::NvrNsb`] adds the paper's default NSB — under the
    /// scored retention policy, which degenerates to LRU bit-for-bit when
    /// admission scoring is off — when the given configuration has none,
    /// and runs the L2 under score-weighted eviction
    /// ([`nvr_mem::RetentionPolicy::ScoredEvict`], always-admit) so
    /// predicted-reuse scores pin hub lines at both levels; every other
    /// system uses the configuration as-is.
    #[must_use]
    pub fn effective_mem_cfg(self, mem_cfg: &MemoryConfig) -> MemoryConfig {
        match self {
            SystemKind::NvrNsb if mem_cfg.nsb.is_none() => {
                let mut cfg = mem_cfg.clone().with_nsb(nsb_scored(16));
                cfg.l2.policy = nvr_mem::RetentionPolicy::ScoredEvict;
                cfg
            }
            SystemKind::InOrder
            | SystemKind::OutOfOrder
            | SystemKind::Stream
            | SystemKind::Imp
            | SystemKind::Dvr
            | SystemKind::Nvr
            | SystemKind::NvrNsb => mem_cfg.clone(),
        }
    }

    fn npu_config(self) -> NpuConfig {
        match self {
            SystemKind::OutOfOrder => NpuConfig::out_of_order(),
            SystemKind::InOrder
            | SystemKind::Stream
            | SystemKind::Imp
            | SystemKind::Dvr
            | SystemKind::Nvr
            | SystemKind::NvrNsb => NpuConfig::default(),
        }
    }

    fn prefetcher(self, mem_cfg: &MemoryConfig, nsb_admit: Option<u32>) -> Box<dyn Prefetcher> {
        let tune = |mut cfg: NvrConfig| {
            if let Some(admit) = nsb_admit {
                cfg.nsb_admit_min_reuse = admit;
            }
            cfg
        };
        match self {
            SystemKind::InOrder | SystemKind::OutOfOrder => Box::new(NullPrefetcher::new()),
            SystemKind::Stream => Box::new(StreamPrefetcher::default()),
            SystemKind::Imp => Box::new(ImpPrefetcher::default()),
            SystemKind::Dvr => Box::new(DvrPrefetcher::default()),
            SystemKind::NvrNsb => Box::new(NvrPrefetcher::new(tune(NvrConfig::with_nsb()))),
            SystemKind::Nvr => {
                let cfg = if mem_cfg.nsb.is_some() {
                    NvrConfig::with_nsb()
                } else {
                    NvrConfig::default()
                };
                Box::new(NvrPrefetcher::new(tune(cfg)))
            }
        }
    }
}

/// Result of one comparable run: the timed result plus the same program's
/// ideal-memory base time (Fig. 5's lower bar segment).
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Which system ran.
    pub system: SystemKind,
    /// Timed result against the real memory system.
    pub result: RunResult,
    /// Wall clock against an all-hit memory system.
    pub base_cycles: Cycle,
    /// Measured per-prefetch timeliness, for systems that track prefetch
    /// lifetimes (NVR); `None` for the rest.
    pub timeliness: Option<TimelinessReport>,
}

impl RunOutcome {
    /// Cycles attributable to cache-miss stalls.
    #[must_use]
    pub fn stall_cycles(&self) -> Cycle {
        self.result.total_cycles.saturating_sub(self.base_cycles)
    }

    /// Per-channel DRAM utilisation of the timed run, in channel order.
    #[must_use]
    pub fn channel_utilisation(&self) -> &[f64] {
        &self.result.channel_utilisation
    }

    /// Approximate `q`-quantile of the speculative-fill queue delay
    /// (cycles a prefetch waited for a bus slot), merged across channels.
    #[must_use]
    pub fn queue_delay_percentile(&self, q: f64) -> u64 {
        self.result.mem.dram.queue_delay_merged().percentile(q)
    }

    /// Total latency normalised to `denom` cycles.
    #[must_use]
    pub fn normalised_total(&self, denom: Cycle) -> f64 {
        self.result.total_cycles as f64 / denom.max(1) as f64
    }

    /// Stall latency normalised to `denom` cycles.
    #[must_use]
    pub fn normalised_stall(&self, denom: Cycle) -> f64 {
        self.stall_cycles() as f64 / denom.max(1) as f64
    }
}

/// Runs `program` under `system` against `mem_cfg` (as adjusted by
/// [`SystemKind::effective_mem_cfg`]), plus the paired ideal-memory run
/// for the base/stall split.
#[must_use]
pub fn run_system(program: &NpuProgram, mem_cfg: &MemoryConfig, system: SystemKind) -> RunOutcome {
    run_system_tuned(program, mem_cfg, system, None)
}

/// [`run_system`] with an NSB-admission override: `Some(t)` forces
/// `NvrConfig::nsb_admit_min_reuse = t` on the NVR-family systems (0
/// disables admission scoring, reverting the NSB to pure LRU); `None`
/// keeps each system's calibrated default. Non-NVR systems ignore it.
#[must_use]
pub fn run_system_tuned(
    program: &NpuProgram,
    mem_cfg: &MemoryConfig,
    system: SystemKind,
    nsb_admit: Option<u32>,
) -> RunOutcome {
    let engine = NpuEngine::new(system.npu_config());
    let mem_cfg = system.effective_mem_cfg(mem_cfg);

    let mut mem = MemorySystem::new(mem_cfg.clone());
    let mut prefetcher = system.prefetcher(&mem_cfg, nsb_admit);
    let result = engine.run(program, &mut mem, prefetcher.as_mut());
    prefetcher.finalize_run(&mut mem);
    let timeliness = prefetcher.timeliness();

    let mut ideal = MemorySystem::ideal(mem_cfg);
    let base = engine.run(program, &mut ideal, &mut NullPrefetcher::new());

    RunOutcome {
        system,
        result,
        base_cycles: base.total_cycles,
        timeliness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::DataWidth;
    use nvr_workloads::{WorkloadId, WorkloadSpec};

    fn program() -> NpuProgram {
        WorkloadId::Ds.build(&WorkloadSpec::tiny(DataWidth::Int8, 2))
    }

    #[test]
    fn base_never_exceeds_total() {
        let p = program();
        for system in SystemKind::ALL {
            let o = run_system(&p, &MemoryConfig::default(), system);
            assert!(
                o.base_cycles <= o.result.total_cycles,
                "{}: base {} > total {}",
                system.label(),
                o.base_cycles,
                o.result.total_cycles
            );
        }
    }

    #[test]
    fn runahead_systems_lead_on_ds() {
        let p = program();
        let cfg = MemoryConfig::default();
        let totals: Vec<(SystemKind, u64)> = SystemKind::ALL
            .iter()
            .map(|&s| (s, run_system(&p, &cfg, s).result.total_cycles))
            .collect();
        let of = |k: SystemKind| totals.iter().find(|(s, _)| *s == k).expect("present").1;
        let nvr = of(SystemKind::Nvr);
        for (s, t) in totals.iter().filter(|(s, _)| *s != SystemKind::NvrNsb) {
            assert!(nvr <= *t, "NVR {nvr} should not lose to {} {t}", s.label());
        }
        // The NSB configuration must stay competitive with plain NVR (its
        // win shows on reuse-heavy workloads; DS is coverage-bound).
        let nsb = of(SystemKind::NvrNsb);
        assert!(
            nsb as f64 <= nvr as f64 * 1.02,
            "NVR+NSB {nsb} regressed past NVR {nvr}"
        );
    }

    #[test]
    fn nvr_nsb_configures_its_own_buffer() {
        let p = program();
        let o = run_system(&p, &MemoryConfig::default(), SystemKind::NvrNsb);
        let nsb = o.result.mem.nsb.as_ref().expect("NSB stats present");
        assert!(nsb.demand_accesses() > 0, "demands go through the NSB");
        // An explicitly NSB-bearing config is used unchanged.
        let cfg = MemoryConfig::default().with_nsb(nvr_core::nsb_config(8));
        assert_eq!(
            SystemKind::NvrNsb.effective_mem_cfg(&cfg).nsb,
            Some(nvr_core::nsb_config(8))
        );
    }

    #[test]
    fn timeliness_present_only_for_nvr() {
        let p = program();
        let cfg = MemoryConfig::default();
        let nvr = run_system(&p, &cfg, SystemKind::Nvr);
        let t = nvr.timeliness.expect("NVR tracks prefetch lifetimes");
        assert!(t.used() > 0, "NVR prefetches should be used");
        assert_eq!(t.slack.count(), t.used(), "one slack sample per use");
        assert!(
            t.queue_delay.count() > 0,
            "issued prefetches record their channel queue delay"
        );
        let ino = run_system(&p, &cfg, SystemKind::InOrder);
        assert!(ino.timeliness.is_none());
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = SystemKind::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            ["InO", "OoO", "Stream", "IMP", "DVR", "NVR", "NVR+NSB"]
        );
        assert_eq!(
            SystemKind::from_label("nvr+nsb"),
            Some(SystemKind::NvrNsb),
            "grid filters accept the NSB label"
        );
    }
}
