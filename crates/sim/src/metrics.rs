//! Derived comparison metrics.

use nvr_prefetch::TimelinessReport;

/// Splits a measured [`TimelinessReport`] into `(timely, late,
/// evicted-unused)` fractions of all *resolved* prefetches — the fig. 6b′
/// timeliness breakdown. All zeros when nothing resolved.
///
/// # Examples
///
/// ```
/// use nvr_prefetch::TimelinessReport;
///
/// let r = TimelinessReport {
///     timely: 6,
///     late: 3,
///     evicted_unused: 1,
///     ..TimelinessReport::default()
/// };
/// let (t, l, w) = nvr_sim::timeliness_split(&r);
/// assert!((t - 0.6).abs() < 1e-12);
/// assert!((l - 0.3).abs() < 1e-12);
/// assert!((w - 0.1).abs() < 1e-12);
/// ```
#[must_use]
pub fn timeliness_split(report: &TimelinessReport) -> (f64, f64, f64) {
    let resolved = report.timely + report.late + report.evicted_unused;
    if resolved == 0 {
        return (0.0, 0.0, 0.0);
    }
    let n = resolved as f64;
    (
        report.timely as f64 / n,
        report.late as f64 / n,
        report.evicted_unused as f64 / n,
    )
}

/// Prefetch coverage: the fraction of baseline misses a prefetcher
/// eliminated (`1 - with/without`), clamped to `[0, 1]`.
///
/// The clamp is deliberate and part of this function's contract: coverage
/// answers "how many of the baseline's misses went away", so a prefetcher
/// that *adds* misses reads as 0 coverage here, never negative. Use
/// [`pollution`] for the signed view — the clamp would otherwise hide a
/// polluting prefetcher behind the same 0.0 an inert one gets.
///
/// # Examples
///
/// ```
/// assert_eq!(nvr_sim::coverage(100, 10), 0.9);
/// assert_eq!(nvr_sim::coverage(0, 5), 0.0);
/// assert_eq!(nvr_sim::coverage(100, 130), 0.0); // pollution clamped away
/// ```
#[must_use]
pub fn coverage(baseline_misses: u64, with_prefetch_misses: u64) -> f64 {
    if baseline_misses == 0 {
        return 0.0;
    }
    (1.0 - with_prefetch_misses as f64 / baseline_misses as f64).clamp(0.0, 1.0)
}

/// Signed miss delta relative to the baseline: `with/without - 1`.
///
/// Positive values are pollution — the prefetcher's fills evicted useful
/// lines and the run saw *more* demand misses than no prefetching at all
/// (`0.3` = 30% extra misses). Negative values mirror [`coverage`]
/// (`-0.9` = 90% of misses eliminated). Returns 0 when the baseline had
/// no misses.
///
/// # Examples
///
/// ```
/// assert!((nvr_sim::pollution(100, 130) - 0.3).abs() < 1e-12);
/// assert!((nvr_sim::pollution(100, 10) + 0.9).abs() < 1e-12);
/// assert_eq!(nvr_sim::pollution(0, 5), 0.0);
/// ```
#[must_use]
pub fn pollution(baseline_misses: u64, with_prefetch_misses: u64) -> f64 {
    if baseline_misses == 0 {
        return 0.0;
    }
    with_prefetch_misses as f64 / baseline_misses as f64 - 1.0
}

/// Geometric mean of a slice of positive values (0 when empty).
///
/// Speedup ratios are averaged geometrically, as in the paper's "average
/// 4x speedup" style claims.
///
/// # Examples
///
/// ```
/// let g = nvr_sim::geometric_mean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_bounds() {
        assert_eq!(coverage(10, 0), 1.0);
        assert_eq!(coverage(10, 10), 0.0);
        // Pollution can raise misses; coverage clamps at zero.
        assert_eq!(coverage(10, 15), 0.0);
        assert!((coverage(200, 50) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pollution_is_signed() {
        assert!((pollution(10, 15) - 0.5).abs() < 1e-12);
        assert!((pollution(10, 5) + 0.5).abs() < 1e-12);
        assert_eq!(pollution(10, 10), 0.0);
        assert_eq!(pollution(0, 10), 0.0);
        // Where coverage clamps, pollution keeps the sign.
        assert_eq!(coverage(10, 15), 0.0);
        assert!(pollution(10, 15) > 0.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }
}
