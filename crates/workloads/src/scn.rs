//! SCN: SparseConvNet — submanifold sparse convolution.
//!
//! Same two-level voxel-hash chain as [`crate::minkowski`], but the point
//! cloud is *clustered* (surfaces / objects rather than uniform scatter):
//! neighbourhoods resolve more hits, and consecutive output voxels share
//! neighbours, yielding more feature-row reuse than MK — SCN sits between
//! MK and the attention workloads in miss behaviour.

use nvr_common::Pcg32;
use nvr_sparse::{VoxelHashTable, VoxelKey};
use nvr_trace::NpuProgram;

use crate::minkowski::{build_pointcloud, PointcloudParams, VoxelOrder};
use crate::spec::WorkloadSpec;

/// Occupied voxels.
const POINTS: usize = 8192;
/// Voxel grid extent per axis.
const EXTENT: u32 = 96;
/// Number of surface clusters.
const CLUSTERS: usize = 24;
/// Cluster radius (voxels).
const RADIUS: u32 = 6;
/// Hash-table buckets.
const BUCKETS: usize = 32_768;
/// Feature channels (wider than MK).
const FEAT_DIM: usize = 64;
/// Tiles per tile factor.
const TILES: usize = 32;

/// Generates clustered voxels and inserts them into a hash table.
fn clustered_cloud(rng: &mut Pcg32) -> (VoxelHashTable, Vec<VoxelKey>) {
    let mut table = VoxelHashTable::with_capacity(BUCKETS);
    let mut keys = Vec::with_capacity(POINTS);
    let centres: Vec<(i64, i64, i64)> = (0..CLUSTERS)
        .map(|_| {
            (
                rng.gen_range(u64::from(EXTENT)) as i64,
                rng.gen_range(u64::from(EXTENT)) as i64,
                rng.gen_range(u64::from(EXTENT)) as i64,
            )
        })
        .collect();
    let spread = u64::from(2 * RADIUS + 1);
    while keys.len() < POINTS {
        let (cx, cy, cz) = centres[rng.gen_index(CLUSTERS)];
        let key = VoxelKey::new(
            (cx + rng.gen_range(spread) as i64 - i64::from(RADIUS)) as i32,
            (cy + rng.gen_range(spread) as i64 - i64::from(RADIUS)) as i32,
            (cz + rng.gen_range(spread) as i64 - i64::from(RADIUS)) as i32,
        );
        if table.lookup(key).is_none() {
            table.insert(key, keys.len() as u32);
            keys.push(key);
        }
    }
    (table, keys)
}

/// Builds the SCN program.
#[must_use]
pub fn build(spec: &WorkloadSpec) -> NpuProgram {
    let mut rng = Pcg32::seed_with_stream(spec.seed, 0x5C2);
    let (table, keys) = clustered_cloud(&mut rng);
    let params = PointcloudParams {
        points: POINTS,
        extent: EXTENT,
        buckets: BUCKETS,
        feat_dim: FEAT_DIM,
        tiles: TILES,
        order: VoxelOrder::Sorted,
    };
    build_pointcloud("SCN", spec, &table, &keys, &params, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::DataWidth;

    #[test]
    fn clustering_raises_neighbour_yield_over_mk() {
        let spec = WorkloadSpec::tiny(DataWidth::Int8, 18);
        let scn = build(&spec);
        let mk = crate::minkowski::build(&spec);
        let yield_of = |p: &NpuProgram| {
            let s = p.stats();
            s.gather_elems as f64 / s.tiles as f64
        };
        assert!(
            yield_of(&scn) > yield_of(&mk),
            "clustered SCN {} should out-yield uniform MK {}",
            yield_of(&scn),
            yield_of(&mk)
        );
    }

    #[test]
    fn reuse_within_tiles_exists() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 19));
        // Dense clusters mean some buckets repeat across a tile sequence.
        let mut seen = std::collections::BTreeSet::new();
        let mut repeats = 0usize;
        let mut total = 0usize;
        for t in p.tiles.iter().take(8) {
            for v in t.index_values(&p.image) {
                total += 1;
                if !seen.insert(v) {
                    repeats += 1;
                }
            }
        }
        assert!(
            repeats * 10 > total,
            "clusters should produce >10% repeated buckets ({repeats}/{total})"
        );
    }
}
