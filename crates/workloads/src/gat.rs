//! GAT: Graph Attention Networks (Veličković et al.).
//!
//! Aggregation gathers neighbour feature rows through the adjacency's
//! column indices — the canonical one-side-sparsity SpMM of Fig. 2, with
//! *variable* per-row loop bounds (node degree) that exercise the LBD's
//! window prediction. Per-edge attention coefficients double the compute
//! relative to GCN.

use nvr_common::Pcg32;
use nvr_trace::{NpuProgram, SparseFunc};

use crate::graph::Graph;
use crate::spec::{assemble, TileSketch, WorkloadSpec, IA_BASE};

/// Graph size (feature-table rows). Calibrated to the citation-graph scale
/// GAT is benchmarked on (Cora 2.7 k / Citeseer 3.3 k nodes): at 4096
/// nodes the feature table matches the paper's Table II configuration in
/// which the aggregation working set is L2-capacity-resident, so the
/// misses NVR must cover are the cold/reuse-distance ones the paper
/// reports, not artificial capacity thrash. (At 8192 nodes the table is
/// 2x the 256 KB L2 and every prefetch fights eviction — the pre-
/// calibration state that pinned GAT at 1.4x.)
const NODES: usize = 4096;
/// Average out-degree.
const AVG_DEGREE: f64 = 12.0;
/// Feature dimension (per-head hidden width; 4096 rows x 32 x FP16 =
/// 256 KB, the L2-resident footprint the calibration above assumes).
const FEAT_DIM: usize = 32;
/// Nodes aggregated per tile.
const NODES_PER_TILE: usize = 8;
/// Tiles per tile factor.
const TILES: usize = 48;

/// Builds the GAT program.
#[must_use]
pub fn build(spec: &WorkloadSpec) -> NpuProgram {
    let mut rng = Pcg32::seed_with_stream(spec.seed, 0x6A7);
    let graph = Graph::rmat(NODES, AVG_DEGREE, &mut rng);
    build_gnn(spec, &graph, FEAT_DIM, 2, "GAT", TILES)
}

/// Edge budget per hardware tile: aggregation is *edge-blocked*, the
/// tiling strategy of §II-A — a hub node's adjacency splits across several
/// tiles rather than blowing up one tile's loop bounds.
const EDGE_CAP: usize = 128;

/// Shared GNN aggregation builder (GAT and GCN differ in feature width and
/// per-edge compute).
pub(crate) fn build_gnn(
    spec: &WorkloadSpec,
    graph: &Graph,
    feat_dim: usize,
    compute_scale: u64,
    name: &str,
    tiles: usize,
) -> NpuProgram {
    let sa = spec.systolic();
    let row_bytes = feat_dim as u64 * spec.width.bytes();
    let n_tiles = tiles * spec.scale.tile_factor();

    // Edge-blocked traversal: walk nodes in `spec.order`'s permutation
    // (identity under Natural), cutting a tile whenever the edge budget
    // fills. Tile lengths still vary (tiles close at node boundaries'
    // remainders), exercising the LBD's window prediction.
    let perm = graph.permutation(spec.order);
    let mut sketches = Vec::with_capacity(n_tiles);
    let mut current: Vec<u32> = Vec::with_capacity(EDGE_CAP);
    let mut node = 0usize;
    while sketches.len() < n_tiles {
        let neighbours = graph.neighbours(perm[node % graph.nodes()] as usize);
        for chunk in neighbours.chunks(EDGE_CAP) {
            if current.len() + chunk.len() > EDGE_CAP && !current.is_empty() {
                sketches.push(make_tile(spec, &sa, &mut current, feat_dim, compute_scale));
                if sketches.len() == n_tiles {
                    break;
                }
            }
            current.extend_from_slice(chunk);
            if current.len() >= EDGE_CAP {
                sketches.push(make_tile(spec, &sa, &mut current, feat_dim, compute_scale));
                if sketches.len() == n_tiles {
                    break;
                }
            }
        }
        node += 1;
    }

    assemble(
        name,
        spec,
        sketches,
        SparseFunc::Affine {
            ia_base: IA_BASE,
            row_bytes,
        },
        16,
        vec![],
    )
}

/// Closes the current edge block into a tile sketch.
fn make_tile(
    spec: &WorkloadSpec,
    sa: &nvr_npu::SystolicArray,
    current: &mut Vec<u32>,
    feat_dim: usize,
    compute_scale: u64,
) -> TileSketch {
    let indices = std::mem::take(current);
    let edges = indices.len();
    TileSketch {
        indices,
        compute_cycles: compute_scale * sa.sparse_mac_cycles(edges.max(1), feat_dim),
        dma_bytes: (NODES_PER_TILE * feat_dim) as u64 * spec.width.bytes(),
        store_bytes: (NODES_PER_TILE * feat_dim) as u64 * spec.width.bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::DataWidth;

    #[test]
    fn variable_tile_lengths() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 4));
        let lens: Vec<usize> = p.tiles.iter().map(|t| t.index_count()).collect();
        let min = lens.iter().min().copied().unwrap_or(0);
        let max = lens.iter().max().copied().unwrap_or(0);
        assert!(max > min, "degree variance should vary tile lengths");
    }

    #[test]
    fn indices_reference_feature_table() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 5));
        for t in &p.tiles {
            for v in t.index_values(&p.image) {
                assert!((v as usize) < NODES);
            }
        }
    }

    #[test]
    fn compute_tracks_edges() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 6));
        for t in &p.tiles {
            assert!(t.compute_cycles >= t.index_count() as u64);
        }
    }
}
