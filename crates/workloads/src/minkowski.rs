//! MK: MinkowskiNet — sparse 3-D convolution over voxelised point clouds.
//!
//! The kernel map resolves each output voxel's 3³ neighbourhood through a
//! voxel hash table (§II-A: "hash-table indexing and sampling operation in
//! point cloud networks"). The gather chain is therefore **two-level**:
//! bucket probe → feature row. Affine-pattern prefetchers cannot learn it;
//! runahead executes it.

use nvr_common::Pcg32;
use nvr_sparse::{VoxelHashTable, VoxelKey};
use nvr_trace::{NpuProgram, SparseFunc};

use crate::spec::{assemble, TileSketch, WorkloadSpec, IA_BASE, TABLE_BASE};

/// Occupied voxels (feature rows).
const POINTS: usize = 8192;
/// Voxel grid extent per axis.
const EXTENT: u32 = 64;
/// Hash-table buckets.
const BUCKETS: usize = 32_768;
/// Feature channels.
const FEAT_DIM: usize = 32;
/// Output voxels resolved per tile.
const VOXELS_PER_TILE: usize = 8;
/// Tiles per tile factor.
const TILES: usize = 32;

/// The 3x3x3 kernel offsets.
fn kernel_offsets() -> Vec<(i32, i32, i32)> {
    let mut out = Vec::with_capacity(27);
    for dx in -1..=1 {
        for dy in -1..=1 {
            for dz in -1..=1 {
                out.push((dx, dy, dz));
            }
        }
    }
    out
}

/// Exports the hash table's bucket array as the `u32` slot table the
/// hardware probes (empty buckets read as 0).
pub(crate) fn export_bucket_table(table: &VoxelHashTable, keys: &[VoxelKey]) -> Vec<u32> {
    let mut out = vec![0u32; table.bucket_count()];
    for &key in keys {
        let bucket = *table.probe_path(key).last().expect("probe path non-empty");
        out[bucket] = table.lookup(key).expect("inserted key resolves");
    }
    out
}

/// How output voxels are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VoxelOrder {
    /// Random sampling across the scene (scattered LiDAR-style scenes).
    #[default]
    Random,
    /// Coordinate-sorted traversal (submanifold convolution order), which
    /// makes consecutive tiles share neighbourhoods.
    Sorted,
}

/// Tunable shape of a point-cloud kernel-map program — the density and
/// traversal-order knobs the Fig. 9 sensitivity sweeps vary, plus the
/// static geometry MK and SCN share.
///
/// # Examples
///
/// ```
/// use nvr_workloads::minkowski::PointcloudParams;
///
/// let p = PointcloudParams::mk_default();
/// assert!(p.occupancy() < 0.1, "MK scenes are sparse");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointcloudParams {
    /// Occupied voxels (feature rows) — with `extent`, the scene density.
    pub points: usize,
    /// Voxel grid extent per axis.
    pub extent: u32,
    /// Hash-table buckets.
    pub buckets: usize,
    /// Feature channels.
    pub feat_dim: usize,
    /// Tiles per tile factor.
    pub tiles: usize,
    /// Output-voxel enumeration order.
    pub order: VoxelOrder,
}

impl PointcloudParams {
    /// MK's evaluation shape (uniform scatter, ~3% occupancy).
    #[must_use]
    pub fn mk_default() -> Self {
        PointcloudParams {
            points: POINTS,
            extent: EXTENT,
            buckets: BUCKETS,
            feat_dim: FEAT_DIM,
            tiles: TILES,
            order: VoxelOrder::Random,
        }
    }

    /// Scene occupancy: occupied voxels over grid cells.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.points as f64 / (u64::from(self.extent).pow(3)) as f64
    }

    /// The same shape at a different density (`points` scaled, geometry
    /// fixed) — the Fig. 9 density axis.
    #[must_use]
    pub fn with_points(mut self, points: usize) -> Self {
        self.points = points;
        self
    }

    /// The same shape with a different traversal order — the Fig. 9
    /// locality axis.
    #[must_use]
    pub fn with_order(mut self, order: VoxelOrder) -> Self {
        self.order = order;
        self
    }
}

/// Builds an MK-style program with explicit density/order knobs: a
/// uniformly scattered cloud of `params.points` voxels.
#[must_use]
pub fn build_with_params(spec: &WorkloadSpec, params: &PointcloudParams) -> NpuProgram {
    let mut rng = Pcg32::seed_with_stream(spec.seed, 0x3141);
    let (table, keys) =
        VoxelHashTable::random(params.points, params.extent, params.buckets, &mut rng);
    build_pointcloud("MK", spec, &table, &keys, params, &mut rng)
}

/// Builds a point-cloud kernel-map program from pre-generated voxels.
pub(crate) fn build_pointcloud(
    name: &str,
    spec: &WorkloadSpec,
    table: &VoxelHashTable,
    keys: &[VoxelKey],
    params: &PointcloudParams,
    rng: &mut Pcg32,
) -> NpuProgram {
    let feat_dim = params.feat_dim;
    let order = params.order;
    let sa = spec.systolic();
    let row_bytes = feat_dim as u64 * spec.width.bytes();
    let offsets = kernel_offsets();
    let bucket_table = export_bucket_table(table, keys);
    let n_tiles = params.tiles * spec.scale.tile_factor();
    let mut sorted_keys = keys.to_vec();
    sorted_keys.sort_unstable();

    let sketches = (0..n_tiles)
        .enumerate()
        .map(|(t, _)| {
            let mut indices = Vec::new();
            for v in 0..VOXELS_PER_TILE {
                let centre = match order {
                    VoxelOrder::Random => keys[rng.gen_index(keys.len())],
                    VoxelOrder::Sorted => {
                        sorted_keys[(t * VOXELS_PER_TILE + v) % sorted_keys.len()]
                    }
                };
                for &(dx, dy, dz) in &offsets {
                    let nb = centre.offset(dx, dy, dz);
                    if table.lookup(nb).is_some() {
                        let bucket = *table.probe_path(nb).last().expect("non-empty");
                        indices.push(bucket as u32);
                    }
                }
            }
            if indices.is_empty() {
                // Centre voxel always resolves to itself.
                let centre = keys[0];
                indices.push(*table.probe_path(centre).last().expect("non-empty") as u32);
            }
            let found = indices.len();
            TileSketch {
                indices,
                compute_cycles: sa.sparse_mac_cycles(found, feat_dim),
                dma_bytes: (VOXELS_PER_TILE * feat_dim) as u64 * spec.width.bytes(),
                store_bytes: (VOXELS_PER_TILE * feat_dim) as u64 * spec.width.bytes(),
            }
        })
        .collect();

    assemble(
        name,
        spec,
        sketches,
        SparseFunc::TableLookup {
            table_base: TABLE_BASE,
            ia_base: IA_BASE,
            row_bytes,
        },
        16,
        vec![(TABLE_BASE, bucket_table)],
    )
}

/// Builds the MK program (uniform voxel placement: sparse scenes).
#[must_use]
pub fn build(spec: &WorkloadSpec) -> NpuProgram {
    build_with_params(spec, &PointcloudParams::mk_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::DataWidth;
    use nvr_trace::SparseFunc as SF;

    #[test]
    fn chain_is_two_level() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 15));
        let func = p.tiles[0].gather.expect("gather").func;
        assert!(matches!(func, SF::TableLookup { .. }));
    }

    #[test]
    fn bucket_indices_resolve_to_feature_rows() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 16));
        for t in p.tiles.iter().take(4) {
            for rg in t.resolved_gathers(&p.image) {
                let probe = rg.probe.expect("two-level gathers probe");
                // Probe addresses live inside the bucket table segment.
                assert!(p.image.in_segment(probe), "probe {probe} outside table");
                // Targets land within the feature table's slot range.
                let off = rg.target.start().raw() - IA_BASE.raw();
                let slot = off / rg.target.bytes().max(1);
                assert!((slot as usize) < POINTS, "slot {slot} out of range");
            }
        }
    }

    #[test]
    fn density_knob_raises_neighbour_yield() {
        let spec = WorkloadSpec::tiny(DataWidth::Int8, 23);
        let base = PointcloudParams::mk_default();
        let sparse = build_with_params(&spec, &base.with_points(POINTS / 4));
        let dense = build_with_params(&spec, &base.with_points(POINTS * 2));
        let yield_of = |p: &NpuProgram| {
            let s = p.stats();
            s.gather_elems as f64 / s.tiles as f64
        };
        assert!(
            yield_of(&dense) > yield_of(&sparse),
            "denser scene {} should out-yield sparser {}",
            yield_of(&dense),
            yield_of(&sparse)
        );
    }

    #[test]
    fn sorted_order_raises_reuse() {
        let spec = WorkloadSpec::tiny(DataWidth::Int8, 24);
        let base = PointcloudParams::mk_default();
        let repeats_of = |p: &NpuProgram| {
            let mut seen = std::collections::BTreeSet::new();
            let mut repeats = 0usize;
            for t in &p.tiles {
                for v in t.index_values(&p.image) {
                    if !seen.insert(v) {
                        repeats += 1;
                    }
                }
            }
            repeats
        };
        let random = build_with_params(&spec, &base);
        let sorted = build_with_params(&spec, &base.with_order(VoxelOrder::Sorted));
        assert!(
            repeats_of(&sorted) >= repeats_of(&random),
            "sorted traversal should not lose reuse ({} vs {})",
            repeats_of(&sorted),
            repeats_of(&random)
        );
    }

    #[test]
    fn neighbourhood_yield_is_sparse() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 17));
        let s = p.stats();
        // With 8192 points in 64^3 = 262144 cells, occupancy is ~3%, so
        // far fewer than 27 neighbours resolve per voxel.
        let per_voxel = s.gather_elems as f64 / (s.tiles * VOXELS_PER_TILE) as f64;
        assert!(per_voxel < 8.0, "found {per_voxel} neighbours per voxel");
        assert!(per_voxel >= 1.0 / VOXELS_PER_TILE as f64);
    }
}
