//! MK: MinkowskiNet — sparse 3-D convolution over voxelised point clouds.
//!
//! The kernel map resolves each output voxel's 3³ neighbourhood through a
//! voxel hash table (§II-A: "hash-table indexing and sampling operation in
//! point cloud networks"). The gather chain is therefore **two-level**:
//! bucket probe → feature row. Affine-pattern prefetchers cannot learn it;
//! runahead executes it.

use nvr_common::Pcg32;
use nvr_sparse::{VoxelHashTable, VoxelKey};
use nvr_trace::{NpuProgram, SparseFunc};

use crate::spec::{assemble, TileSketch, WorkloadSpec, IA_BASE, TABLE_BASE};

/// Occupied voxels (feature rows).
const POINTS: usize = 8192;
/// Voxel grid extent per axis.
const EXTENT: u32 = 64;
/// Hash-table buckets.
const BUCKETS: usize = 32_768;
/// Feature channels.
const FEAT_DIM: usize = 32;
/// Output voxels resolved per tile.
const VOXELS_PER_TILE: usize = 8;
/// Tiles per tile factor.
const TILES: usize = 32;

/// The 3x3x3 kernel offsets.
fn kernel_offsets() -> Vec<(i32, i32, i32)> {
    let mut out = Vec::with_capacity(27);
    for dx in -1..=1 {
        for dy in -1..=1 {
            for dz in -1..=1 {
                out.push((dx, dy, dz));
            }
        }
    }
    out
}

/// Exports the hash table's bucket array as the `u32` slot table the
/// hardware probes (empty buckets read as 0).
pub(crate) fn export_bucket_table(table: &VoxelHashTable, keys: &[VoxelKey]) -> Vec<u32> {
    let mut out = vec![0u32; table.bucket_count()];
    for &key in keys {
        let bucket = *table.probe_path(key).last().expect("probe path non-empty");
        out[bucket] = table.lookup(key).expect("inserted key resolves");
    }
    out
}

/// How output voxels are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VoxelOrder {
    /// Random sampling across the scene (scattered LiDAR-style scenes).
    Random,
    /// Coordinate-sorted traversal (submanifold convolution order), which
    /// makes consecutive tiles share neighbourhoods.
    Sorted,
}

/// Builds a point-cloud kernel-map program from pre-generated voxels.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_pointcloud(
    name: &str,
    spec: &WorkloadSpec,
    table: &VoxelHashTable,
    keys: &[VoxelKey],
    feat_dim: usize,
    tiles: usize,
    order: VoxelOrder,
    rng: &mut Pcg32,
) -> NpuProgram {
    let sa = spec.systolic();
    let row_bytes = feat_dim as u64 * spec.width.bytes();
    let offsets = kernel_offsets();
    let bucket_table = export_bucket_table(table, keys);
    let n_tiles = tiles * spec.scale.tile_factor();
    let mut sorted_keys = keys.to_vec();
    sorted_keys.sort_unstable();

    let sketches = (0..n_tiles)
        .enumerate()
        .map(|(t, _)| {
            let mut indices = Vec::new();
            for v in 0..VOXELS_PER_TILE {
                let centre = match order {
                    VoxelOrder::Random => keys[rng.gen_index(keys.len())],
                    VoxelOrder::Sorted => {
                        sorted_keys[(t * VOXELS_PER_TILE + v) % sorted_keys.len()]
                    }
                };
                for &(dx, dy, dz) in &offsets {
                    let nb = centre.offset(dx, dy, dz);
                    if table.lookup(nb).is_some() {
                        let bucket = *table.probe_path(nb).last().expect("non-empty");
                        indices.push(bucket as u32);
                    }
                }
            }
            if indices.is_empty() {
                // Centre voxel always resolves to itself.
                let centre = keys[0];
                indices.push(*table.probe_path(centre).last().expect("non-empty") as u32);
            }
            let found = indices.len();
            TileSketch {
                indices,
                compute_cycles: sa.sparse_mac_cycles(found, feat_dim),
                dma_bytes: (VOXELS_PER_TILE * feat_dim) as u64 * spec.width.bytes(),
                store_bytes: (VOXELS_PER_TILE * feat_dim) as u64 * spec.width.bytes(),
            }
        })
        .collect();

    assemble(
        name,
        spec,
        sketches,
        SparseFunc::TableLookup {
            table_base: TABLE_BASE,
            ia_base: IA_BASE,
            row_bytes,
        },
        16,
        vec![(TABLE_BASE, bucket_table)],
    )
}

/// Builds the MK program (uniform voxel placement: sparse scenes).
#[must_use]
pub fn build(spec: &WorkloadSpec) -> NpuProgram {
    let mut rng = Pcg32::seed_with_stream(spec.seed, 0x3141);
    let (table, keys) = VoxelHashTable::random(POINTS, EXTENT, BUCKETS, &mut rng);
    build_pointcloud(
        "MK",
        spec,
        &table,
        &keys,
        FEAT_DIM,
        TILES,
        VoxelOrder::Random,
        &mut rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::DataWidth;
    use nvr_trace::SparseFunc as SF;

    #[test]
    fn chain_is_two_level() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 15));
        let func = p.tiles[0].gather.expect("gather").func;
        assert!(matches!(func, SF::TableLookup { .. }));
    }

    #[test]
    fn bucket_indices_resolve_to_feature_rows() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 16));
        for t in p.tiles.iter().take(4) {
            for rg in t.resolved_gathers(&p.image) {
                let probe = rg.probe.expect("two-level gathers probe");
                // Probe addresses live inside the bucket table segment.
                assert!(p.image.in_segment(probe), "probe {probe} outside table");
                // Targets land within the feature table's slot range.
                let off = rg.target.start().raw() - IA_BASE.raw();
                let slot = off / rg.target.bytes().max(1);
                assert!((slot as usize) < POINTS, "slot {slot} out of range");
            }
        }
    }

    #[test]
    fn neighbourhood_yield_is_sparse() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 17));
        let s = p.stats();
        // With 8192 points in 64^3 = 262144 cells, occupancy is ~3%, so
        // far fewer than 27 neighbours resolve per voxel.
        let per_voxel = s.gather_elems as f64 / (s.tiles * VOXELS_PER_TILE) as f64;
        assert!(per_voxel < 8.0, "found {per_voxel} neighbours per voxel");
        assert!(per_voxel >= 1.0 / VOXELS_PER_TILE as f64);
    }
}
