//! GSABT: Graph Sparse Attention with block structure (Zhang et al.).
//!
//! Block-sparse attention mixes *local* block windows (sequential token
//! runs — the cache-friendly part a stream prefetcher can catch) with
//! *random global* blocks (the irregular part it cannot). Each block's
//! tokens are contiguous, so misses arrive in short bursts with long random
//! strides between bursts — the "densely packed, long-stride" behaviour of
//! §II-A's data-shuffle discussion.

use nvr_common::Pcg32;
use nvr_trace::{NpuProgram, SparseFunc};

use crate::spec::{assemble, TileSketch, WorkloadSpec, IA_BASE};

/// Sequence length in tokens.
const SEQ_LEN: usize = 4096;
/// Tokens per attention block.
const BLOCK: usize = 32;
/// Local window: preceding blocks attended by every query block.
const LOCAL_BLOCKS: usize = 2;
/// Random global blocks attended per query block.
const GLOBAL_BLOCKS: usize = 4;
/// Head dimension.
const HEAD_DIM: usize = 64;
/// Query blocks processed per tile factor.
const TILES: usize = 32;

/// Builds the GSABT program.
#[must_use]
pub fn build(spec: &WorkloadSpec) -> NpuProgram {
    let mut rng = Pcg32::seed_with_stream(spec.seed, 0x65AB);
    let sa = spec.systolic();
    let row_bytes = HEAD_DIM as u64 * spec.width.bytes();
    let n_blocks = SEQ_LEN / BLOCK;
    let tiles = TILES * spec.scale.tile_factor();

    let sketches = (0..tiles)
        .map(|t| {
            let q_block = t % n_blocks;
            let mut blocks = Vec::new();
            // Own block plus the local window behind it.
            for b in q_block.saturating_sub(LOCAL_BLOCKS)..=q_block {
                blocks.push(b);
            }
            // Random global blocks.
            for _ in 0..GLOBAL_BLOCKS {
                blocks.push(rng.gen_index(n_blocks));
            }
            blocks.sort_unstable();
            blocks.dedup();
            let mut indices = Vec::with_capacity(blocks.len() * BLOCK);
            for b in blocks {
                for tkn in (b * BLOCK)..((b + 1) * BLOCK) {
                    indices.push(tkn as u32);
                }
            }
            let k = indices.len();
            TileSketch {
                indices,
                compute_cycles: sa.sparse_mac_cycles(k, HEAD_DIM),
                dma_bytes: (BLOCK * HEAD_DIM) as u64 * spec.width.bytes(),
                store_bytes: (BLOCK * HEAD_DIM) as u64 * spec.width.bytes(),
            }
        })
        .collect();

    assemble(
        "GSABT",
        spec,
        sketches,
        SparseFunc::Affine {
            ia_base: IA_BASE,
            row_bytes,
        },
        16,
        vec![],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::DataWidth;

    #[test]
    fn indices_are_block_contiguous() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 9));
        for t in &p.tiles {
            let v = t.index_values(&p.image);
            // Within each BLOCK-aligned run, tokens are consecutive.
            let mut contiguous_pairs = 0usize;
            for w in v.windows(2) {
                if w[1] == w[0] + 1 {
                    contiguous_pairs += 1;
                }
            }
            assert!(
                contiguous_pairs * 10 >= v.len() * 8,
                "block structure should be >=80% contiguous pairs"
            );
        }
    }

    #[test]
    fn includes_global_randomness() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 10));
        // Across tiles, the union of touched blocks exceeds the local
        // window alone.
        let mut blocks = std::collections::BTreeSet::new();
        for t in &p.tiles {
            for v in t.index_values(&p.image) {
                blocks.insert(v as usize / BLOCK);
            }
        }
        assert!(
            blocks.len() > TILES + LOCAL_BLOCKS,
            "global blocks should widen the footprint ({})",
            blocks.len()
        );
    }

    #[test]
    fn token_range_valid() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int32, 11));
        for t in &p.tiles {
            assert!(t
                .index_values(&p.image)
                .iter()
                .all(|&v| (v as usize) < SEQ_LEN));
        }
    }
}
