//! Workload specification and the shared program assembler.

use nvr_common::{Addr, DataWidth, Region};
use nvr_npu::SystolicArray;
use nvr_trace::{GatherDesc, MemoryImage, NpuProgram, SparseFunc, TileOp};

/// Base address of the flattened index array every workload walks.
pub const INDEX_BASE: Addr = Addr::new(0x1000_0000);
/// Base address of intermediate lookup tables (voxel-hash buckets).
pub const TABLE_BASE: Addr = Addr::new(0x2000_0000);
/// Base address of the gathered structure (IA / KV cache / features).
pub const IA_BASE: Addr = Addr::new(0x10_0000_0000);

/// Problem size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Unit-test size: seconds of simulation across all prefetchers.
    Tiny,
    /// Evaluation size used by the figure harnesses.
    #[default]
    Default,
    /// Stress size for the parallel sweep runner: long enough per cell
    /// that fan-out wins, too slow for the single-threaded harnesses.
    Large,
}

impl Scale {
    /// All scales, smallest first.
    pub const ALL: [Scale; 3] = [Scale::Tiny, Scale::Default, Scale::Large];

    /// Multiplier applied to tile counts.
    #[must_use]
    pub fn tile_factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Default => 4,
            Scale::Large => 16,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scale::Tiny => "tiny",
            Scale::Default => "default",
            Scale::Large => "large",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Scale {
    type Err = nvr_common::NvrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Ok(Scale::Tiny),
            "default" => Ok(Scale::Default),
            "large" => Ok(Scale::Large),
            other => Err(nvr_common::NvrError::Parse(format!(
                "unknown scale `{other}` (expected tiny|default|large)"
            ))),
        }
    }
}

/// Node-visit order of the graph workloads' tile builders (GCN/GAT) —
/// the reuse-aware tile *scheduling* axis. The aggregation itself is
/// order-insensitive (a sum over neighbours), so reordering the node walk
/// is a legal compiler-level schedule choice; what changes is *which*
/// neighbour rows land in the same lookahead window, and therefore how
/// much implicit line reuse the NSB can capture. Non-graph workloads
/// ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TileOrder {
    /// Natural node-id order — bit-identical to the pre-order-aware
    /// builders.
    #[default]
    Natural,
    /// Descending out-degree (stable, node id tie-break): the heaviest
    /// aggregations run first, so the hub rows their long adjacency lists
    /// keep re-touching are resolved — and NSB-scored — early and often.
    DegreeSorted,
    /// Community-clustered (stable sort by smallest neighbour id): nodes
    /// whose adjacency lists start in the same region of the feature
    /// table aggregate together, so windows share neighbour rows.
    Clustered,
}

impl TileOrder {
    /// All orders, natural first.
    pub const ALL: [TileOrder; 3] = [
        TileOrder::Natural,
        TileOrder::DegreeSorted,
        TileOrder::Clustered,
    ];
}

impl std::fmt::Display for TileOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TileOrder::Natural => "natural",
            TileOrder::DegreeSorted => "degree",
            TileOrder::Clustered => "clustered",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for TileOrder {
    type Err = nvr_common::NvrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "natural" => Ok(TileOrder::Natural),
            "degree" => Ok(TileOrder::DegreeSorted),
            "clustered" => Ok(TileOrder::Clustered),
            other => Err(nvr_common::NvrError::Parse(format!(
                "unknown tile order `{other}` (expected natural|degree|clustered)"
            ))),
        }
    }
}

/// Parameters shared by all workload generators.
///
/// # Examples
///
/// ```
/// use nvr_workloads::WorkloadSpec;
/// use nvr_common::DataWidth;
///
/// let spec = WorkloadSpec::new(DataWidth::Fp16, 42);
/// assert_eq!(spec.width, DataWidth::Fp16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Operand width (Fig. 5 evaluates INT8/FP16/INT32).
    pub width: DataWidth,
    /// RNG seed; identical seeds give identical programs.
    pub seed: u64,
    /// Problem size class.
    pub scale: Scale,
    /// Node-visit order of the graph workloads (ignored by the rest).
    pub order: TileOrder,
}

impl WorkloadSpec {
    /// Evaluation-scale spec.
    #[must_use]
    pub fn new(width: DataWidth, seed: u64) -> Self {
        WorkloadSpec {
            width,
            seed,
            scale: Scale::Default,
            order: TileOrder::Natural,
        }
    }

    /// Unit-test-scale spec.
    #[must_use]
    pub fn tiny(width: DataWidth, seed: u64) -> Self {
        WorkloadSpec {
            width,
            seed,
            scale: Scale::Tiny,
            order: TileOrder::Natural,
        }
    }

    /// This spec with a different tile order.
    #[must_use]
    pub fn with_order(mut self, order: TileOrder) -> Self {
        self.order = order;
        self
    }

    /// The systolic array the compute budgets assume.
    #[must_use]
    pub fn systolic(&self) -> SystolicArray {
        SystolicArray::gemmini_default()
    }
}

/// Ingredients of one tile handed to [`assemble`].
#[derive(Debug, Clone)]
pub struct TileSketch {
    /// Gather indices this tile consumes (in execution order).
    pub indices: Vec<u32>,
    /// Systolic compute cycles once data is ready.
    pub compute_cycles: u64,
    /// Dense operand bytes DMA'd into the scratchpad.
    pub dma_bytes: u64,
    /// Output bytes streamed off chip.
    pub store_bytes: u64,
}

/// Assembles tile sketches into a validated [`NpuProgram`].
///
/// The per-tile index lists are flattened into one contiguous index array
/// at [`INDEX_BASE`] (the CSR `col_indices` layout the engine's snoopers
/// assume); `extra_segments` installs auxiliary structures such as hash
/// bucket tables.
///
/// # Panics
///
/// Panics if `sketches` is empty or the resulting program fails
/// [`NpuProgram::assert_valid`].
#[must_use]
pub fn assemble(
    name: &str,
    spec: &WorkloadSpec,
    sketches: Vec<TileSketch>,
    func: SparseFunc,
    batch: usize,
    extra_segments: Vec<(Addr, Vec<u32>)>,
) -> NpuProgram {
    assert!(!sketches.is_empty(), "workload must produce tiles");
    let mut image = MemoryImage::new();
    let mut flat: Vec<u32> = Vec::new();
    let mut tiles = Vec::with_capacity(sketches.len());
    for (id, sk) in sketches.into_iter().enumerate() {
        let start = INDEX_BASE.offset(flat.len() as u64 * 4);
        let bytes = sk.indices.len() as u64 * 4;
        flat.extend_from_slice(&sk.indices);
        tiles.push(TileOp {
            id,
            index_region: Region::new(start, bytes),
            gather: Some(GatherDesc { func, batch }),
            dma_bytes: sk.dma_bytes,
            compute_cycles: sk.compute_cycles,
            store_bytes: sk.store_bytes,
        });
    }
    image.add_u32_segment(INDEX_BASE, flat);
    for (base, data) in extra_segments {
        image.add_u32_segment(base, data);
    }
    let program = NpuProgram {
        name: name.to_owned(),
        width: spec.width,
        tiles,
        image,
    };
    program.assert_valid();
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_flattens_indices() {
        let spec = WorkloadSpec::tiny(DataWidth::Int8, 0);
        let func = SparseFunc::Affine {
            ia_base: IA_BASE,
            row_bytes: 64,
        };
        let p = assemble(
            "t",
            &spec,
            vec![
                TileSketch {
                    indices: vec![1, 2, 3],
                    compute_cycles: 5,
                    dma_bytes: 0,
                    store_bytes: 0,
                },
                TileSketch {
                    indices: vec![4, 5],
                    compute_cycles: 5,
                    dma_bytes: 0,
                    store_bytes: 0,
                },
            ],
            func,
            16,
            vec![],
        );
        assert_eq!(p.tiles.len(), 2);
        assert_eq!(p.tiles[0].index_values(&p.image), vec![1, 2, 3]);
        assert_eq!(p.tiles[1].index_values(&p.image), vec![4, 5]);
        // Second tile's region follows the first contiguously.
        assert_eq!(
            p.tiles[1].index_region.start(),
            p.tiles[0].index_region.end()
        );
    }

    #[test]
    #[should_panic(expected = "must produce tiles")]
    fn empty_sketches_rejected() {
        let spec = WorkloadSpec::tiny(DataWidth::Int8, 0);
        let func = SparseFunc::Affine {
            ia_base: IA_BASE,
            row_bytes: 64,
        };
        let _ = assemble("t", &spec, vec![], func, 16, vec![]);
    }

    #[test]
    fn scale_factors() {
        assert_eq!(Scale::Tiny.tile_factor(), 1);
        assert_eq!(Scale::Default.tile_factor(), 4);
        assert_eq!(Scale::Large.tile_factor(), 16);
    }

    #[test]
    fn scale_parse_roundtrip() {
        for s in Scale::ALL {
            let parsed: Scale = s.to_string().parse().expect("roundtrip");
            assert_eq!(parsed, s);
        }
        assert!("huge".parse::<Scale>().is_err());
    }
}
