//! GCN: Graph Convolutional Networks (Kipf & Welling).
//!
//! Same aggregation skeleton as [`crate::gat`] but with wider feature rows
//! (more lines per gathered row — heavier bandwidth per edge) and no
//! per-edge attention arithmetic, making it even more IO-bound.

use nvr_common::Pcg32;
use nvr_trace::NpuProgram;

use crate::gat::build_gnn;
use crate::graph::Graph;
use crate::spec::WorkloadSpec;

/// Graph size (feature-table rows).
const NODES: usize = 8192;
/// Average out-degree.
const AVG_DEGREE: f64 = 10.0;
/// Feature dimension (wider than GAT).
const FEAT_DIM: usize = 128;
/// Tiles per tile factor.
const TILES: usize = 48;

/// Builds the GCN program.
#[must_use]
pub fn build(spec: &WorkloadSpec) -> NpuProgram {
    let mut rng = Pcg32::seed_with_stream(spec.seed, 0x6C2);
    let graph = Graph::rmat(NODES, AVG_DEGREE, &mut rng);
    build_gnn(spec, &graph, FEAT_DIM, 1, "GCN", TILES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::DataWidth;

    #[test]
    fn wider_rows_than_gat() {
        let spec = WorkloadSpec::tiny(DataWidth::Fp16, 7);
        let gcn = build(&spec);
        let gat = crate::gat::build(&spec);
        let row = |p: &NpuProgram| p.tiles[0].gather.expect("gather").func.row_bytes();
        // GCN aggregates full 128-wide features; GAT's calibrated per-head
        // width is 32 (see `gat::FEAT_DIM`).
        assert_eq!(row(&gcn), 4 * row(&gat));
    }

    #[test]
    fn io_bound_profile() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 8));
        let s = p.stats();
        // Compute per gathered element is small: < 16 cycles/element.
        assert!(s.compute_cycles < 16 * s.gather_elems);
    }
}
