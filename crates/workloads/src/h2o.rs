//! H2O: Heavy-Hitter Oracle (Zhang et al.) — KV-cache eviction keeping
//! heavy hitters plus a recency window.
//!
//! Attention mass concentrates on a small set of "heavy hitter" tokens that
//! persist across decode steps, giving the *highest temporal reuse* of the
//! LLM workloads — most gathers re-touch recently used rows, with a drift
//! term as new tokens displace old hitters.

use nvr_common::rng::Zipf;
use nvr_common::Pcg32;
use nvr_trace::{NpuProgram, SparseFunc};

use crate::spec::{assemble, TileSketch, WorkloadSpec, IA_BASE};

/// KV-cache rows.
const SEQ_LEN: usize = 4096;
/// Head dimension.
const HEAD_DIM: usize = 64;
/// Rows kept per step (heavy hitters + recency window).
const BUDGET: usize = 96;
/// Persistent heavy-hitter pool size.
const HITTERS: usize = 64;
/// Decode steps per tile factor.
const STEPS: usize = 32;

/// Builds the H2O program.
#[must_use]
pub fn build(spec: &WorkloadSpec) -> NpuProgram {
    let mut rng = Pcg32::seed_with_stream(spec.seed, 0x1120);
    let sa = spec.systolic();
    let row_bytes = HEAD_DIM as u64 * spec.width.bytes();
    let steps = STEPS * spec.scale.tile_factor();
    let zipf = Zipf::new(HITTERS, 1.2);

    // The hitter pool drifts slowly: one membership change per step, with
    // the replacement drawn Zipf-biased toward recent ranks.
    let mut pool: Vec<u32> = (0..HITTERS as u32).collect();
    let sketches = (0..steps)
        .map(|step| {
            if step > 0 {
                let victim = zipf.sample(&mut rng).min(HITTERS - 1);
                pool[HITTERS - 1 - victim] = rng.gen_range(SEQ_LEN as u64) as u32;
            }
            // H2O keeps *all* heavy hitters plus a recency/random window.
            let mut chosen: std::collections::BTreeSet<u32> = pool.iter().copied().collect();
            while chosen.len() < BUDGET {
                chosen.insert(rng.gen_range(SEQ_LEN as u64) as u32);
            }
            let indices: Vec<u32> = chosen.into_iter().collect();
            TileSketch {
                indices,
                compute_cycles: sa.sparse_mac_cycles(BUDGET, HEAD_DIM),
                dma_bytes: row_bytes,
                store_bytes: row_bytes,
            }
        })
        .collect();

    assemble(
        "H2O",
        spec,
        sketches,
        SparseFunc::Affine {
            ia_base: IA_BASE,
            row_bytes,
        },
        16,
        vec![],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::DataWidth;

    #[test]
    fn strong_reuse_across_steps() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 12));
        // Consecutive steps share most of their selections.
        let a: std::collections::BTreeSet<u32> =
            p.tiles[4].index_values(&p.image).into_iter().collect();
        let b: std::collections::BTreeSet<u32> =
            p.tiles[5].index_values(&p.image).into_iter().collect();
        let shared = a.intersection(&b).count();
        assert!(
            shared * 2 > BUDGET,
            "steps should share >50% of rows ({shared}/{BUDGET})"
        );
    }

    #[test]
    fn pool_drift_changes_selections_eventually() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 13));
        let first: std::collections::BTreeSet<u32> =
            p.tiles[0].index_values(&p.image).into_iter().collect();
        let last: std::collections::BTreeSet<u32> = p
            .tiles
            .last()
            .expect("tiles")
            .index_values(&p.image)
            .into_iter()
            .collect();
        assert!(first != last, "drift should change the working set");
    }

    #[test]
    fn budget_fixed_per_step() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Fp16, 14));
        for t in &p.tiles {
            assert_eq!(t.index_count(), BUDGET);
        }
    }
}
