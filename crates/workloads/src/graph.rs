//! R-MAT graph generation for the GNN workloads.
//!
//! GAT/GCN memory behaviour is shaped by the adjacency structure: power-law
//! degree distributions concentrate traffic on hub nodes (which cache well)
//! while the long tail scatters across the feature table (which does not).
//! The recursive-matrix (R-MAT) generator reproduces both properties with
//! four partition probabilities.

use nvr_common::Pcg32;

use crate::spec::TileOrder;

/// A directed graph in CSR-like adjacency form.
///
/// # Examples
///
/// ```
/// use nvr_workloads::Graph;
/// use nvr_common::Pcg32;
///
/// let mut rng = Pcg32::seed_from_u64(1);
/// let g = Graph::rmat(256, 4.0, &mut rng);
/// assert_eq!(g.nodes(), 256);
/// assert!(g.edges() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<u32>,
    neighbours: Vec<u32>,
}

/// Standard R-MAT partition probabilities (a, b, c; d implied).
const RMAT_A: f64 = 0.57;
const RMAT_B: f64 = 0.19;
const RMAT_C: f64 = 0.19;

impl Graph {
    /// Generates an R-MAT graph with `nodes` vertices (rounded up to a
    /// power of two internally) and ~`avg_degree` out-edges per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `avg_degree <= 0`.
    #[must_use]
    pub fn rmat(nodes: usize, avg_degree: f64, rng: &mut Pcg32) -> Self {
        assert!(nodes > 0, "graph must have nodes");
        assert!(avg_degree > 0.0, "average degree must be positive");
        let scale = usize::BITS - (nodes - 1).leading_zeros();
        let n = 1usize << scale;
        let n_edges = (nodes as f64 * avg_degree) as usize;

        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nodes];
        // Duplicate detection: a dense src×dst bit matrix when it fits
        // (the GNN graphs are ≤8192 nodes, so ≤8 MB transient) makes the
        // membership test O(1) and placement a plain push; larger graphs
        // fall back to sorted lists with binary-search insertion. Both
        // paths give identical membership answers, so the rng sequence,
        // placed count, and final CSR are unchanged either way.
        let mut bits = if nodes <= 8192 {
            vec![0u64; (nodes * nodes).div_ceil(64)]
        } else {
            Vec::new()
        };
        let mut placed = 0usize;
        let mut guard = 0usize;
        while placed < n_edges && guard < n_edges * 8 {
            guard += 1;
            let (mut lo_r, mut hi_r) = (0usize, n);
            let (mut lo_c, mut hi_c) = (0usize, n);
            while hi_r - lo_r > 1 {
                let p = rng.gen_f64();
                let (top, left) = if p < RMAT_A {
                    (true, true)
                } else if p < RMAT_A + RMAT_B {
                    (true, false)
                } else if p < RMAT_A + RMAT_B + RMAT_C {
                    (false, true)
                } else {
                    (false, false)
                };
                let mid_r = (lo_r + hi_r) / 2;
                let mid_c = (lo_c + hi_c) / 2;
                if top {
                    hi_r = mid_r;
                } else {
                    lo_r = mid_r;
                }
                if left {
                    hi_c = mid_c;
                } else {
                    lo_c = mid_c;
                }
            }
            let (src, dst) = (lo_r, lo_c);
            if src < nodes && dst < nodes && src != dst {
                if bits.is_empty() {
                    let list = &mut adj[src];
                    if let Err(pos) = list.binary_search(&(dst as u32)) {
                        list.insert(pos, dst as u32);
                        placed += 1;
                    }
                } else {
                    let bit = src * nodes + dst;
                    let mask = 1u64 << (bit % 64);
                    if bits[bit / 64] & mask == 0 {
                        bits[bit / 64] |= mask;
                        adj[src].push(dst as u32);
                        placed += 1;
                    }
                }
            }
        }
        if !bits.is_empty() {
            // Bitset placement appends in sample order; restore the sorted
            // adjacency the binary-search path builds directly.
            for list in &mut adj {
                list.sort_unstable();
            }
        }
        // Ensure no isolated nodes: give each a self-adjacent ring edge.
        for (i, list) in adj.iter_mut().enumerate() {
            if list.is_empty() {
                list.push(((i + 1) % nodes) as u32);
            }
        }

        let mut offsets = Vec::with_capacity(nodes + 1);
        let mut neighbours = Vec::new();
        offsets.push(0u32);
        for list in &adj {
            neighbours.extend_from_slice(list);
            offsets.push(neighbours.len() as u32);
        }
        Graph {
            offsets,
            neighbours,
        }
    }

    /// Number of vertices.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[must_use]
    pub fn edges(&self) -> usize {
        self.neighbours.len()
    }

    /// Out-neighbours of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbours(&self, v: usize) -> &[u32] {
        let a = self.offsets[v] as usize;
        let b = self.offsets[v + 1] as usize;
        &self.neighbours[a..b]
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The *anchor* of `v`: its highest-degree out-neighbour (smallest id
    /// on ties). Nodes sharing an anchor share their hottest gather row,
    /// so visiting them consecutively collapses that row's reuse
    /// distance to the community size.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn anchor(&self, v: usize) -> u32 {
        let ns = self.neighbours(v);
        let mut best = ns[0];
        for &n in &ns[1..] {
            let (bd, nd) = (self.degree(best as usize), self.degree(n as usize));
            if nd > bd || (nd == bd && n < best) {
                best = n;
            }
        }
        best
    }

    /// Node-visit permutation realising `order` (deterministic: stable
    /// sorts with node-id tie-breaks over the already-deterministic
    /// adjacency). [`TileOrder::Natural`] is the identity, so order-aware
    /// builders that index through it stay bit-identical to the
    /// pre-order-aware walk.
    #[must_use]
    pub fn permutation(&self, order: TileOrder) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..self.nodes() as u32).collect();
        match order {
            TileOrder::Natural => {}
            TileOrder::DegreeSorted => {
                perm.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v as usize)), v));
            }
            TileOrder::Clustered => {
                perm.sort_by_key(|&v| (self.anchor(v as usize), v));
            }
        }
        perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_shape_and_determinism() {
        let mut a = Pcg32::seed_from_u64(5);
        let mut b = Pcg32::seed_from_u64(5);
        let ga = Graph::rmat(512, 8.0, &mut a);
        let gb = Graph::rmat(512, 8.0, &mut b);
        assert_eq!(ga.nodes(), 512);
        assert_eq!(ga.edges(), gb.edges());
        assert_eq!(ga.neighbours(10), gb.neighbours(10));
    }

    #[test]
    fn no_isolated_nodes() {
        let mut rng = Pcg32::seed_from_u64(6);
        let g = Graph::rmat(128, 2.0, &mut rng);
        for v in 0..g.nodes() {
            assert!(g.degree(v) >= 1, "node {v} isolated");
        }
    }

    #[test]
    fn neighbours_sorted_unique_in_range() {
        let mut rng = Pcg32::seed_from_u64(7);
        let g = Graph::rmat(256, 6.0, &mut rng);
        for v in 0..g.nodes() {
            let ns = g.neighbours(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "node {v} unsorted");
            assert!(ns.iter().all(|&n| (n as usize) < g.nodes()));
        }
    }

    #[test]
    fn natural_permutation_is_identity() {
        let mut rng = Pcg32::seed_from_u64(9);
        let g = Graph::rmat(64, 4.0, &mut rng);
        let perm = g.permutation(TileOrder::Natural);
        assert_eq!(perm, (0..64u32).collect::<Vec<_>>());
    }

    #[test]
    fn degree_sorted_is_monotone_with_stable_ties() {
        let mut rng = Pcg32::seed_from_u64(10);
        let g = Graph::rmat(256, 6.0, &mut rng);
        let perm = g.permutation(TileOrder::DegreeSorted);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..256u32).collect::<Vec<_>>(), "not a permutation");
        for w in perm.windows(2) {
            let (da, db) = (g.degree(w[0] as usize), g.degree(w[1] as usize));
            assert!(da > db || (da == db && w[0] < w[1]));
        }
    }

    #[test]
    fn clustered_groups_by_anchor() {
        let mut rng = Pcg32::seed_from_u64(11);
        let g = Graph::rmat(256, 6.0, &mut rng);
        let perm = g.permutation(TileOrder::Clustered);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..256u32).collect::<Vec<_>>(), "not a permutation");
        for w in perm.windows(2) {
            let (fa, fb) = (g.anchor(w[0] as usize), g.anchor(w[1] as usize));
            assert!(fa < fb || (fa == fb && w[0] < w[1]));
        }
        // The anchor is the highest-degree out-neighbour, lowest id on ties.
        for v in 0..g.nodes() {
            let a = g.anchor(v);
            for &n in g.neighbours(v) {
                let (da, dn) = (g.degree(a as usize), g.degree(n as usize));
                assert!(da > dn || (da == dn && a <= n), "node {v}: {a} vs {n}");
            }
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = Pcg32::seed_from_u64(8);
        let g = Graph::rmat(1024, 8.0, &mut rng);
        // In-degree skew: count how often each node appears as a target.
        let mut indeg = vec![0usize; g.nodes()];
        for v in 0..g.nodes() {
            for &n in g.neighbours(v) {
                indeg[n as usize] += 1;
            }
        }
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        let top = indeg[..g.nodes() / 20].iter().sum::<usize>();
        let total: usize = indeg.iter().sum();
        assert!(
            top * 4 > total,
            "top-5% nodes should absorb >25% of edges ({top}/{total})"
        );
    }
}
