//! DS: Double Sparsity (Yang et al.) — post-training sparse attention.
//!
//! Each decode step selects the top-k KV-cache rows via the label cache and
//! gathers them for attention (§I, Fig. 1b). The index space spans the full
//! sequence-length KV cache — far beyond the L2 — and selections mix a
//! slowly drifting hot set (attention sinks / recent tokens) with a long
//! random tail, giving mild temporal reuse.

use nvr_common::rng::Zipf;
use nvr_common::Pcg32;
use nvr_trace::{NpuProgram, SparseFunc};

use crate::spec::{assemble, TileSketch, WorkloadSpec, IA_BASE};

/// Sequence length (KV-cache rows).
const SEQ_LEN: usize = 8192;
/// Head dimension (elements per KV row).
const HEAD_DIM: usize = 64;
/// Selected keys per decode step (16x sparsity of SEQ_LEN/8).
const TOP_K: usize = 128;
/// Size of the hot set (attention sinks + recency window).
const HOT_SET: usize = 512;
/// Fraction of selections drawn from the hot set.
const HOT_FRACTION: f64 = 0.7;
/// Decode steps per tile factor.
const STEPS: usize = 32;

/// Builds the DS program at the default 16x sparsity.
#[must_use]
pub fn build(spec: &WorkloadSpec) -> NpuProgram {
    build_with_ratio(spec, SEQ_LEN / (TOP_K * 4))
}

/// Builds a DS program keeping 1 in `keep_ratio` keys per step (Fig. 1b's
/// parameter-reduction sweep). `keep_ratio = 1` is the dense baseline that
/// attends to a full contiguous window.
///
/// # Panics
///
/// Panics if `keep_ratio == 0`.
#[must_use]
pub fn build_with_ratio(spec: &WorkloadSpec, keep_ratio: usize) -> NpuProgram {
    assert!(keep_ratio > 0, "keep ratio must be non-zero");
    let mut rng = Pcg32::seed_with_stream(spec.seed, 0xD5);
    let zipf = Zipf::new(HOT_SET, 1.1);
    let sa = spec.systolic();
    let row_bytes = HEAD_DIM as u64 * spec.width.bytes();
    let steps = STEPS * spec.scale.tile_factor();
    // The attended window is SEQ_LEN/4 keys; keep 1 in keep_ratio of them.
    let window = SEQ_LEN / 4;
    let k = (window / keep_ratio).max(1);

    let sketches = (0..steps)
        .map(|step| {
            let mut chosen = std::collections::BTreeSet::new();
            if keep_ratio == 1 {
                // Dense: the full contiguous window (sequential gathers).
                let base = (step * 64) % (SEQ_LEN - window);
                chosen.extend((base as u32)..(base + window) as u32);
            }
            while chosen.len() < k {
                let key = if rng.gen_bool(HOT_FRACTION) {
                    zipf.sample(&mut rng) as u32
                } else {
                    rng.gen_range(SEQ_LEN as u64) as u32
                };
                chosen.insert(key);
            }
            // Top-k lists are stored sorted (CSR-like index list).
            let indices: Vec<u32> = chosen.into_iter().collect();
            // Attention: QK^T scores pipeline with AV accumulation
            // through the array (one pass over the k gathered rows).
            let compute = sa.sparse_mac_cycles(indices.len(), HEAD_DIM);
            TileSketch {
                indices,
                compute_cycles: compute,
                dma_bytes: row_bytes,   // the query vector
                store_bytes: row_bytes, // the output vector
            }
        })
        .collect();

    assemble(
        "DS",
        spec,
        sketches,
        SparseFunc::Affine {
            ia_base: IA_BASE,
            row_bytes,
        },
        16,
        vec![],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::DataWidth;

    #[test]
    fn topk_indices_sorted_in_range() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 1));
        for t in &p.tiles {
            let v = t.index_values(&p.image);
            assert_eq!(v.len(), TOP_K);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicated");
            assert!(v.iter().all(|&k| (k as usize) < SEQ_LEN));
        }
    }

    #[test]
    fn hot_set_dominates_selections() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 2));
        let mut hot = 0usize;
        let mut total = 0usize;
        for t in &p.tiles {
            for v in t.index_values(&p.image) {
                total += 1;
                if (v as usize) < HOT_SET {
                    hot += 1;
                }
            }
        }
        assert!(hot * 2 > total, "hot set should dominate ({hot}/{total})");
    }

    #[test]
    fn span_exceeds_l2() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 3));
        let row = p.tiles[0].gather.expect("gather").func.row_bytes();
        assert!(SEQ_LEN as u64 * row > 256 * 1024, "KV span must exceed L2");
    }
}
