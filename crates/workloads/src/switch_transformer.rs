//! ST: Switch Transformer — mixture-of-experts routing (Fedus et al.).
//!
//! Each token batch routes to one expert and streams that expert's FFN
//! weight rows — a *block-contiguous* gather. Popular experts recur
//! (Zipf-distributed routing), so the paper observes ST as the outlier with
//! "lower cache miss ratios due to its relatively fixed network
//! architecture and block-like data distribution patterns" (§V-B). The
//! dynamic loop boundaries of MoE routing (§II-A) appear as the per-tile
//! jump to a different expert's row range.

use nvr_common::rng::Zipf;
use nvr_common::Pcg32;
use nvr_trace::{NpuProgram, SparseFunc};

use crate::spec::{assemble, TileSketch, WorkloadSpec, IA_BASE};

/// Number of experts.
const EXPERTS: usize = 32;
/// Weight rows per expert.
const ROWS_PER_EXPERT: usize = 128;
/// Model dimension (row width in elements). Calibrated so an expert row is
/// one cache line at FP16: the paper observes ST as block-contiguous with
/// *low* miss ratios (§V-B), i.e. latency-bound on expert switches rather
/// than bandwidth-bound on row bytes. At 64 elements (two lines per row)
/// the per-tile footprint doubles and the run saturates the DRAM channel,
/// capping every prefetcher at the bandwidth bound — the pre-calibration
/// state that pinned ST at 1.6x.
const MODEL_DIM: usize = 32;
/// Tokens per routed batch.
const TOKENS_PER_TILE: usize = 16;
/// Tiles per tile factor.
const TILES: usize = 32;

/// Builds the ST program.
#[must_use]
pub fn build(spec: &WorkloadSpec) -> NpuProgram {
    let mut rng = Pcg32::seed_with_stream(spec.seed, 0x57);
    let sa = spec.systolic();
    let row_bytes = MODEL_DIM as u64 * spec.width.bytes();
    let zipf = Zipf::new(EXPERTS, 1.0);
    let tiles = TILES * spec.scale.tile_factor();

    let sketches = (0..tiles)
        .map(|_| {
            let expert = zipf.sample(&mut rng);
            let first = (expert * ROWS_PER_EXPERT) as u32;
            // Block-contiguous: the expert's full row range, in order.
            let indices: Vec<u32> = (first..first + ROWS_PER_EXPERT as u32).collect();
            TileSketch {
                indices,
                compute_cycles: sa.gemm_cycles(TOKENS_PER_TILE, MODEL_DIM, MODEL_DIM),
                dma_bytes: (TOKENS_PER_TILE * MODEL_DIM) as u64 * spec.width.bytes(),
                store_bytes: (TOKENS_PER_TILE * MODEL_DIM) as u64 * spec.width.bytes(),
            }
        })
        .collect();

    assemble(
        "ST",
        spec,
        sketches,
        SparseFunc::Affine {
            ia_base: IA_BASE,
            row_bytes,
        },
        16,
        vec![],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::DataWidth;

    #[test]
    fn tiles_are_contiguous_expert_blocks() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 20));
        for t in &p.tiles {
            let v = t.index_values(&p.image);
            assert_eq!(v.len(), ROWS_PER_EXPERT);
            assert!(v.windows(2).all(|w| w[1] == w[0] + 1), "not contiguous");
            assert_eq!(v[0] as usize % ROWS_PER_EXPERT, 0, "not block-aligned");
        }
    }

    #[test]
    fn popular_experts_recur() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 21));
        let mut counts = vec![0usize; EXPERTS];
        for t in &p.tiles {
            let e = t.index_values(&p.image)[0] as usize / ROWS_PER_EXPERT;
            counts[e] += 1;
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        assert!(max >= 3, "routing should favour hot experts (max={max})");
    }

    #[test]
    fn compute_heavier_than_gnn_per_element() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 22));
        let s = p.stats();
        // Dense FFN GEMM: compute per gathered row stays substantial at the
        // calibrated MODEL_DIM (one full array pass per routed batch).
        assert!(s.compute_cycles >= s.gather_elems);
    }
}
