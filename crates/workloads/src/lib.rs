//! The eight sparse DNN workloads of the paper's Table II.
//!
//! Each module synthesises the *linear-layer memory access pattern* of one
//! evaluated workload — which is exactly what the paper extracts ("Table II
//! presents representative workloads extracted from various models' linear
//! layer memory access patterns", §V-A). The generators reproduce the
//! structural properties that drive cache behaviour: indirection depth,
//! index-space span, sparsity level and distribution, reuse locality, and
//! loop-bound variability.
//!
//! | Short | Workload | Domain | Pattern essence |
//! |---|---|---|---|
//! | DS    | Double Sparsity        | LLM            | top-k KV-cache gathers, huge span, mild reuse |
//! | GAT   | Graph Attention        | GNN            | power-law neighbour gathers + per-edge attention |
//! | GCN   | Graph Convolution      | GNN            | power-law neighbour gathers, wide features |
//! | GSABT | Graph Sparse Attention | sparse attention | block-local + random-global mixture |
//! | H2O   | Heavy-Hitter Oracle    | LLM            | Zipf-hot KV gathers, high reuse |
//! | MK    | MinkowskiNet           | point cloud    | two-level voxel-hash gathers |
//! | SCN   | SparseConvNet          | point cloud    | two-level gathers, clustered reuse |
//! | ST    | Switch Transformer     | MoE            | block-contiguous expert weights |
//!
//! # Examples
//!
//! ```
//! use nvr_workloads::{WorkloadId, WorkloadSpec};
//!
//! let spec = WorkloadSpec::tiny(nvr_common::DataWidth::Int8, 1);
//! let program = WorkloadId::Ds.build(&spec);
//! assert!(program.stats().gather_elems > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod double_sparsity;
pub mod gat;
pub mod gcn;
pub mod graph;
pub mod gsabt;
pub mod h2o;
pub mod minkowski;
pub mod scn;
pub mod spec;
pub mod switch_transformer;
pub mod two_sided;

pub use graph::Graph;
pub use minkowski::{PointcloudParams, VoxelOrder};
pub use spec::{Scale, TileOrder, WorkloadSpec};

use nvr_trace::NpuProgram;

/// Identifier of one evaluated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// Double Sparsity (LLM sparse attention).
    Ds,
    /// Graph Attention Networks.
    Gat,
    /// Graph Convolutional Networks.
    Gcn,
    /// Graph Sparse Attention (block + global).
    Gsabt,
    /// Heavy-Hitter Oracle.
    H2o,
    /// MinkowskiNet (point cloud).
    Mk,
    /// SparseConvNet (point cloud).
    Scn,
    /// Switch Transformer (mixture of experts).
    St,
}

impl WorkloadId {
    /// All workloads in the paper's reporting order.
    pub const ALL: [WorkloadId; 8] = [
        WorkloadId::Ds,
        WorkloadId::Gat,
        WorkloadId::Gcn,
        WorkloadId::Gsabt,
        WorkloadId::H2o,
        WorkloadId::Mk,
        WorkloadId::Scn,
        WorkloadId::St,
    ];

    /// The paper's short name.
    #[must_use]
    pub fn short(self) -> &'static str {
        match self {
            WorkloadId::Ds => "DS",
            WorkloadId::Gat => "GAT",
            WorkloadId::Gcn => "GCN",
            WorkloadId::Gsabt => "GSABT",
            WorkloadId::H2o => "H2O",
            WorkloadId::Mk => "MK",
            WorkloadId::Scn => "SCN",
            WorkloadId::St => "ST",
        }
    }

    /// Full name, as in Table II.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::Ds => "Double Sparsity",
            WorkloadId::Gat => "Graph Attention Networks",
            WorkloadId::Gcn => "Graph Convolutional Networks",
            WorkloadId::Gsabt => "Graph Sparse Attention",
            WorkloadId::H2o => "Heavy-Hitter Oracle",
            WorkloadId::Mk => "MinkowskiNet",
            WorkloadId::Scn => "SparseConvNet",
            WorkloadId::St => "Switch Transformer",
        }
    }

    /// Domain column of Table II.
    #[must_use]
    pub fn domain(self) -> &'static str {
        match self {
            WorkloadId::Ds | WorkloadId::H2o => "large language model",
            WorkloadId::Gat | WorkloadId::Gcn => "graph neural networks",
            WorkloadId::Gsabt => "sparse attention",
            WorkloadId::Mk | WorkloadId::Scn => "point cloud",
            WorkloadId::St => "mixture of experts",
        }
    }

    /// Looks a workload up by its short name, case-insensitively.
    #[must_use]
    pub fn from_short(s: &str) -> Option<WorkloadId> {
        WorkloadId::ALL
            .into_iter()
            .find(|w| w.short().eq_ignore_ascii_case(s))
    }

    /// Builds the workload's NPU program.
    #[must_use]
    pub fn build(self, spec: &WorkloadSpec) -> NpuProgram {
        match self {
            WorkloadId::Ds => double_sparsity::build(spec),
            WorkloadId::Gat => gat::build(spec),
            WorkloadId::Gcn => gcn::build(spec),
            WorkloadId::Gsabt => gsabt::build(spec),
            WorkloadId::H2o => h2o::build(spec),
            WorkloadId::Mk => minkowski::build(spec),
            WorkloadId::Scn => scn::build(spec),
            WorkloadId::St => switch_transformer::build(spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::DataWidth;

    #[test]
    fn all_workloads_build_and_validate() {
        let spec = WorkloadSpec::tiny(DataWidth::Int8, 7);
        for id in WorkloadId::ALL {
            let p = id.build(&spec);
            p.assert_valid();
            let s = p.stats();
            assert!(s.tiles > 0, "{} produced no tiles", id.short());
            assert!(s.gather_elems > 0, "{} gathers nothing", id.short());
            assert!(s.compute_cycles > 0, "{} computes nothing", id.short());
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = WorkloadSpec::tiny(DataWidth::Fp16, 3);
        for id in WorkloadId::ALL {
            let a = id.build(&spec);
            let b = id.build(&spec);
            assert_eq!(a.stats(), b.stats(), "{} not deterministic", id.short());
            assert_eq!(
                a.tiles.len(),
                b.tiles.len(),
                "{} tile count differs",
                id.short()
            );
        }
    }

    #[test]
    fn tile_orders_permute_gnn_programs_only() {
        let spec = WorkloadSpec::tiny(DataWidth::Int8, 7);
        for id in WorkloadId::ALL {
            let natural = id.build(&spec);
            for order in [TileOrder::DegreeSorted, TileOrder::Clustered] {
                let reordered = id.build(&spec.with_order(order));
                reordered.assert_valid();
                let graphy = matches!(id, WorkloadId::Gat | WorkloadId::Gcn);
                let same_indices = natural.tiles.iter().zip(&reordered.tiles).all(|(a, b)| {
                    a.index_values(&natural.image) == b.index_values(&reordered.image)
                });
                if graphy {
                    assert!(!same_indices, "{} ignored order {order}", id.short());
                } else {
                    assert_eq!(natural.stats(), reordered.stats());
                    assert!(same_indices, "{} should ignore order", id.short());
                }
            }
        }
    }

    #[test]
    fn width_scales_row_bytes() {
        let narrow = WorkloadId::Ds.build(&WorkloadSpec::tiny(DataWidth::Int8, 1));
        let wide = WorkloadId::Ds.build(&WorkloadSpec::tiny(DataWidth::Int32, 1));
        let row = |p: &NpuProgram| p.tiles[0].gather.expect("DS gathers").func.row_bytes();
        assert_eq!(row(&wide), 4 * row(&narrow));
    }

    #[test]
    fn short_name_lookup() {
        for id in WorkloadId::ALL {
            assert_eq!(WorkloadId::from_short(id.short()), Some(id));
            assert_eq!(
                WorkloadId::from_short(&id.short().to_ascii_lowercase()),
                Some(id)
            );
        }
        assert_eq!(WorkloadId::from_short("nope"), None);
    }

    #[test]
    fn names_and_domains_match_table_two() {
        assert_eq!(WorkloadId::Ds.short(), "DS");
        assert_eq!(WorkloadId::St.domain(), "mixture of experts");
        assert_eq!(WorkloadId::Mk.name(), "MinkowskiNet");
        let shorts: Vec<_> = WorkloadId::ALL.iter().map(|w| w.short()).collect();
        assert_eq!(
            shorts,
            ["DS", "GAT", "GCN", "GSABT", "H2O", "MK", "SCN", "ST"]
        );
    }
}
