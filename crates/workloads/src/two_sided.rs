//! Extension: the two-sides-sparsity SpMM of Fig. 2 (second listing).
//!
//! Both operands are compressed — the weight matrix in CSR, the input
//! activation in CSC — and computation touches only *intersecting* indices
//! (`if (j == k)`). The gather stream is therefore doubly data-dependent:
//! per-tile element counts equal the intersection sizes, which vary far
//! more than one-side-sparsity row lengths and stress the LBD's window
//! prediction hardest. The paper describes this pattern in §II-A but
//! evaluates only one-side workloads; we include it as the natural
//! extension.

use nvr_common::Pcg32;
use nvr_sparse::gen::{random_csr, SparsityPattern};
use nvr_sparse::CscMatrix;
use nvr_trace::{NpuProgram, SparseFunc};

use crate::spec::{assemble, TileSketch, WorkloadSpec, IA_BASE};

/// Weight rows (output rows).
const ROWS: usize = 256;
/// Shared inner dimension.
const INNER: usize = 4096;
/// Activation columns processed per tile factor.
const COLS: usize = 128;
/// Density of each operand.
const DENSITY: f64 = 0.05;

/// Builds the two-sided SpMM program: one tile per (row-block, column)
/// pair, gathering the matched activation values.
#[must_use]
pub fn build(spec: &WorkloadSpec) -> NpuProgram {
    let mut rng = Pcg32::seed_with_stream(spec.seed, 0x2512);
    let sa = spec.systolic();
    let w = random_csr(ROWS, INNER, DENSITY, SparsityPattern::Uniform, &mut rng);
    let ia = random_csr(COLS, INNER, DENSITY, SparsityPattern::Uniform, &mut rng).to_csc();
    // The activation's compressed values live at IA_BASE; a matched entry
    // at value-slot `s` gathers one element row there.
    let row_bytes = 16 * spec.width.bytes(); // a packed value group
    let tiles_n = 32 * spec.scale.tile_factor();

    let sketches = (0..tiles_n)
        .map(|t| {
            let row = t % ROWS;
            let col = (t * 7) % COLS;
            let indices = matched_slots(&w, &ia, row, col);
            let n = indices.len();
            TileSketch {
                indices,
                compute_cycles: sa.sparse_mac_cycles(n.max(1), 16),
                dma_bytes: 64,
                store_bytes: 16 * spec.width.bytes(),
            }
        })
        .collect();

    assemble(
        "2SIDED",
        spec,
        sketches,
        SparseFunc::Affine {
            ia_base: IA_BASE,
            row_bytes,
        },
        16,
        vec![],
    )
}

/// Value-array slots of `ia` column `col` whose inner index also appears in
/// `w` row `row` — the `j == k` matches of Fig. 2's listing. Always returns
/// at least one slot so every tile has a gather phase.
fn matched_slots(w: &nvr_sparse::CsrMatrix, ia: &CscMatrix, row: usize, col: usize) -> Vec<u32> {
    let w_cols = w.row(row);
    let (a, b) = ia.col_range(col);
    let ia_rows = ia.col(col);
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < w_cols.len() && j < ia_rows.len() {
        match w_cols[i].cmp(&ia_rows[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push((a + j) as u32);
                i += 1;
                j += 1;
            }
        }
    }
    let _ = b;
    if out.is_empty() {
        out.push(a as u32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::DataWidth;

    #[test]
    fn intersection_counts_match_reference() {
        let mut rng = Pcg32::seed_with_stream(3, 0x2512);
        let w = random_csr(ROWS, INNER, DENSITY, SparsityPattern::Uniform, &mut rng);
        let ia_csr = random_csr(COLS, INNER, DENSITY, SparsityPattern::Uniform, &mut rng);
        let ia = ia_csr.to_csc();
        for (row, col) in [(0usize, 0usize), (5, 9), (100, 50)] {
            let got = matched_slots(&w, &ia, row, col);
            let want = CscMatrix::intersect_count(w.row(row), ia.col(col));
            assert_eq!(got.len().max(1), want.max(1), "({row},{col})");
        }
    }

    #[test]
    fn tile_lengths_vary_widely() {
        let p = build(&WorkloadSpec::tiny(DataWidth::Int8, 4));
        let lens: Vec<usize> = p.tiles.iter().map(|t| t.index_count()).collect();
        let min = lens.iter().min().copied().unwrap_or(0);
        let max = lens.iter().max().copied().unwrap_or(0);
        assert!(
            max >= min.saturating_mul(2).max(min + 2),
            "intersection sizes should vary ({min}..{max})"
        );
    }

    #[test]
    fn runs_end_to_end_and_nvr_helps() {
        use nvr_mem::{MemoryConfig, MemorySystem};
        use nvr_npu::{NpuConfig, NpuEngine};
        use nvr_prefetch::NullPrefetcher;

        let p = build(&WorkloadSpec::tiny(DataWidth::Fp16, 5));
        p.assert_valid();
        let engine = NpuEngine::new(NpuConfig::default());
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let base = engine.run(&p, &mut mem, &mut NullPrefetcher::new());

        let mut mem2 = MemorySystem::new(MemoryConfig::default());
        let mut nvr = nvr_core::NvrPrefetcher::new(nvr_core::NvrConfig::default());
        let fast = engine.run(&p, &mut mem2, &mut nvr);
        assert!(
            fast.total_cycles <= base.total_cycles,
            "NVR {} vs base {}",
            fast.total_cycles,
            base.total_cycles
        );
    }
}
