//! Property-based tests of the memory hierarchy's timing invariants.

use proptest::prelude::*;

use nvr_common::{LineAddr, Pcg32};
use nvr_mem::{AccessOutcome, MemoryConfig, MemorySystem};

proptest! {
    /// Data is never ready before `now + min latency`, and a second access
    /// to the same line at/after readiness always hits.
    #[test]
    fn ready_time_sane_and_refetch_hits(seed in any::<u64>(), n in 1usize..60) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let min_lat = MemoryConfig::default().min_demand_latency();
        let mut now = 0;
        for _ in 0..n {
            let line = LineAddr::new(rng.gen_range(1 << 20));
            let r = mem.demand_line(line, now);
            prop_assert!(r.ready_at >= now + min_lat);
            let again = mem.demand_line(line, r.ready_at);
            prop_assert!(matches!(again.outcome, AccessOutcome::L2Hit));
            now = r.ready_at + 1;
        }
    }

    /// Prefetching never changes functional behaviour, only timing: after
    /// an arbitrary mix of prefetches, a demand still completes and the
    /// stats identity (hits + merges + misses == accesses) holds.
    #[test]
    fn prefetch_preserves_invariants(seed in any::<u64>(), ops in 1usize..120) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut now = 0u64;
        for _ in 0..ops {
            let line = LineAddr::new(rng.gen_range(1 << 14));
            if rng.gen_bool(0.5) {
                let _ = mem.prefetch_line(line, now, false);
            } else {
                let r = mem.demand_line(line, now);
                prop_assert!(r.ready_at >= now);
            }
            now += rng.gen_range(50) + 1;
        }
        mem.finalize();
        let s = mem.stats();
        prop_assert_eq!(
            s.l2.demand_accesses(),
            s.l2.demand_hits.get() + s.l2.mshr_merges.get() + s.l2.demand_misses.get()
        );
        // Every issued prefetch is eventually useful, redundant-dropped,
        // evicted-unused or resident-unused; accuracy stays in [0, 1].
        let acc = s.prefetch_accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    /// DRAM completions are monotone in request order at a fixed address
    /// stream: later requests never complete before earlier ones.
    #[test]
    fn dram_completions_monotone(seed in any::<u64>(), n in 2usize..50) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut last_ready = 0;
        let mut now = 0;
        for i in 0..n {
            // Distinct lines so every access is a true miss.
            let r = mem.demand_line(LineAddr::new(1 << 30 | i as u64), now);
            prop_assert!(r.ready_at >= last_ready);
            last_ready = r.ready_at;
            now += rng.gen_range(10);
        }
    }
}
