//! Multi-channel, bandwidth-limited DRAM backend with per-channel request
//! queues and demand-over-prefetch arbitration.
//!
//! The backend owns [`DramConfig::channels`] independent channels; cache
//! lines interleave across them by line address (`line % channels`), so
//! the mapping is deterministic and sequential line runs stripe evenly.
//! Each channel models a pipelined bus — one line transfer occupies the
//! bus for [`DramConfig::line_transfer_cycles`] and completes a fixed
//! latency after its slot starts — plus a bounded queue of *speculative*
//! transfers awaiting the bus.
//!
//! # Arbitration
//!
//! Demand fills have absolute priority over queued speculation:
//!
//! * a **demand** takes the earliest bus slot after the transfers that
//!   have already *started* (it cannot preempt data mid-flight), jumping
//!   every queued speculative transfer, which restack behind it;
//! * a **prefetch** is scheduled behind all traffic, and the cycles
//!   between its arrival and its scheduled slot are reported as *queue
//!   delay* (the lifetime log carries them to the timeliness report);
//! * a prefetch arriving at a **full queue** is rejected — the hierarchy
//!   counts it dropped, and queue-aware issuers (the VIGU) read
//!   [`DramBackend::prefetch_ready`] to back-pressure instead.
//!
//! One modelling caveat of the timestamp-forwarded style: a queued
//! prefetch's completion cycle is returned at admission; a demand that
//! preempts it afterwards delays the *channel* (and every later request)
//! but not that already-returned timestamp. The error is bounded by
//! `queue_depth * line_transfer_cycles` and only ever optimistic for
//! speculation — demand timing is exact.
//!
//! # Examples
//!
//! ```
//! use nvr_mem::{DramBackend, DramConfig};
//! use nvr_common::LineAddr;
//!
//! let mut dram = DramBackend::new(DramConfig::default().with_channels(2));
//! // Even/odd lines land on different channels: both start immediately.
//! let a = dram.demand_fetch(LineAddr::new(0), 0);
//! let b = dram.demand_fetch(LineAddr::new(1), 0);
//! assert_eq!(a, b);
//! ```

use std::collections::VecDeque;

use nvr_common::{Cycle, LineAddr, LINE_BYTES};

use crate::config::DramConfig;
use crate::stats::DramStats;

/// Disposition of a speculative fill at its channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelPrefetch {
    /// Accepted and scheduled.
    Scheduled {
        /// Fill-completion cycle.
        fill_done: Cycle,
        /// Cycles between arrival and the scheduled bus slot.
        queue_delay: Cycle,
    },
    /// Rejected: the channel's speculative queue is full.
    QueueFull,
}

/// Per-channel timing state (counters live in [`DramStats::channels`]).
#[derive(Debug, Clone, Default)]
struct Lane {
    /// Cycle the bus is free of demand traffic and of speculative
    /// transfers that have already started.
    busy_free: Cycle,
    /// Scheduled start cycles of queued (not yet started) speculative
    /// transfers, ascending.
    pf_queue: VecDeque<Cycle>,
}

/// The multi-channel DRAM backend (see module docs).
#[derive(Debug, Clone)]
pub struct DramBackend {
    cfg: DramConfig,
    lanes: Vec<Lane>,
    stats: DramStats,
}

impl DramBackend {
    /// Creates a backend with the given timing and channel count.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`].
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        // nvr-lint: allow(panic/hot-loop) reason="init-time config validation in the constructor, outside the tick loop"
        cfg.validate().expect("dram config must be valid");
        let stats = DramStats {
            channels: vec![Default::default(); cfg.channels],
            ..DramStats::default()
        };
        DramBackend {
            lanes: vec![Lane::default(); cfg.channels],
            stats,
            cfg,
        }
    }

    /// The configuration this backend was built with.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics (aggregates plus per-channel counters).
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// The channel `line` interleaves onto.
    #[must_use]
    pub fn channel_of(&self, line: LineAddr) -> usize {
        (line.index() % self.cfg.channels as u64) as usize
    }

    /// Promotes queued speculative transfers whose slot has started by
    /// `now` onto the channel's busy timeline.
    fn promote(&mut self, ch: usize, now: Cycle) {
        let t = self.cfg.line_transfer_cycles();
        let lane = &mut self.lanes[ch];
        while let Some(&start) = lane.pf_queue.front() {
            if start <= now {
                lane.busy_free = lane.busy_free.max(start + t);
                lane.pf_queue.pop_front();
            } else {
                break;
            }
        }
    }

    /// Takes a demand-priority slot of `transfer` cycles on channel `ch`
    /// at `now`, preempting queued speculative transfers (they restack
    /// behind it). Returns the slot start.
    fn demand_slot(&mut self, ch: usize, now: Cycle, transfer: Cycle) -> Cycle {
        self.promote(ch, now);
        let lane = &mut self.lanes[ch];
        let slot = now.max(lane.busy_free);
        lane.busy_free = slot + transfer;
        let mut cur = lane.busy_free;
        let t = self.cfg.line_transfer_cycles();
        for s in &mut lane.pf_queue {
            if *s < cur {
                *s = cur;
            }
            cur = *s + t;
        }
        self.stats.busy_cycles.add(transfer);
        self.stats.channels[ch].busy_cycles.add(transfer);
        slot
    }

    /// Fetches one cache line for a demand miss at cycle `now`; returns
    /// the completion cycle. Demands wait only for other demand traffic
    /// and for speculative transfers already on the bus — never for the
    /// queued speculative backlog.
    pub fn demand_fetch(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        let t = self.cfg.line_transfer_cycles();
        let ch = self.channel_of(line);
        let slot = self.demand_slot(ch, now, t);
        self.stats.demand_lines.inc();
        self.stats.channels[ch].demand_lines.inc();
        slot + self.cfg.latency + t
    }

    /// Schedules one speculative line fill at cycle `now`.
    ///
    /// The transfer queues behind everything already scheduled on the
    /// line's channel; the reported queue delay is `slot_start - now`.
    /// Returns [`ChannelPrefetch::QueueFull`] when the channel's bounded
    /// prefetch queue has no room.
    pub fn prefetch_fetch(&mut self, line: LineAddr, now: Cycle) -> ChannelPrefetch {
        let t = self.cfg.line_transfer_cycles();
        let ch = self.channel_of(line);
        self.promote(ch, now);
        if self.lanes[ch].pf_queue.len() >= self.cfg.queue_depth {
            self.stats.pf_queue_rejected.inc();
            return ChannelPrefetch::QueueFull;
        }
        let lane = &mut self.lanes[ch];
        let tail_end = lane.pf_queue.back().map_or(lane.busy_free, |&s| s + t);
        let start = now.max(tail_end);
        if start <= now {
            // Starts immediately: straight onto the bus, never queued.
            lane.busy_free = lane.busy_free.max(start + t);
        } else {
            lane.pf_queue.push_back(start);
        }
        let queue_delay = start - now;
        self.stats.busy_cycles.add(t);
        self.stats.prefetch_lines.inc();
        let cstats = &mut self.stats.channels[ch];
        cstats.busy_cycles.add(t);
        cstats.prefetch_lines.inc();
        cstats.queue_delay.record(queue_delay);
        ChannelPrefetch::Scheduled {
            fill_done: start + t + self.cfg.latency,
            queue_delay,
        }
    }

    /// Whether `line`'s channel can accept another speculative fill at
    /// `now` — the per-channel occupancy signal queue-aware issuers (the
    /// VIGU) pace on instead of letting requests drop.
    #[must_use]
    pub fn prefetch_ready(&self, line: LineAddr, now: Cycle) -> bool {
        self.prefetch_queue_len(line, now) < self.cfg.queue_depth
    }

    /// Queued (not yet started) speculative transfers on `line`'s channel
    /// at `now`.
    #[must_use]
    pub fn prefetch_queue_len(&self, line: LineAddr, now: Cycle) -> usize {
        // The queue is bounded by `queue_depth` (single digits), where a
        // straight count beats a binary search.
        let q = &self.lanes[self.channel_of(line)].pf_queue;
        q.iter().filter(|&&s| s > now).count()
    }

    /// Per-channel share of `bytes` under even striping (dense traffic),
    /// with the remainder spread over the leading channels.
    fn stripe_share(&self, bytes: u64, ch: usize) -> u64 {
        let n = self.cfg.channels as u64;
        bytes / n + u64::from((ch as u64) < bytes % n)
    }

    /// Streams `bytes` of dense DMA read traffic (scratchpad fills),
    /// striped across all channels at demand priority; returns the cycle
    /// the last stripe's data arrives.
    pub fn read_stream(&mut self, now: Cycle, bytes: u64) -> Cycle {
        if bytes == 0 {
            return now;
        }
        let mut done = now;
        for ch in 0..self.cfg.channels {
            let share = self.stripe_share(bytes, ch);
            if share == 0 {
                continue;
            }
            let transfer = nvr_common::div_ceil(share, self.cfg.bytes_per_cycle);
            let slot = self.demand_slot(ch, now, transfer);
            done = done.max(slot + self.cfg.latency + transfer);
        }
        self.stats.dma_bytes.add(bytes);
        done
    }

    /// Streams `bytes` out (stores / writebacks), striped across all
    /// channels at demand priority; returns the cycle the last channel
    /// drains.
    pub fn write_bytes(&mut self, now: Cycle, bytes: u64) -> Cycle {
        if bytes == 0 {
            return now;
        }
        let mut done = now;
        for ch in 0..self.cfg.channels {
            let share = self.stripe_share(bytes, ch);
            if share == 0 {
                continue;
            }
            let transfer = nvr_common::div_ceil(share, self.cfg.bytes_per_cycle);
            let slot = self.demand_slot(ch, now, transfer);
            done = done.max(slot + transfer);
        }
        self.stats.write_bytes.add(bytes);
        done
    }

    /// Earliest scheduled start, strictly after `now`, among every
    /// channel's queued speculative transfers — the next moment a queue
    /// position opens on its own. `None` when no channel has a queued
    /// transfer still waiting. Event-driven issuers combine this with the
    /// speculative MSHR completions to skip cycles where a back-pressured
    /// retry would be futile.
    #[must_use]
    pub fn next_pf_queue_start(&self, now: Cycle) -> Option<Cycle> {
        // Per-lane queues are ascending: the earliest pending start in
        // each is the first entry past `now`.
        self.lanes
            .iter()
            .filter_map(|lane| {
                let i = lane.pf_queue.partition_point(|&s| s <= now);
                lane.pf_queue.get(i).copied()
            })
            .min()
    }

    /// Aggregate utilisation over `elapsed` cycles: total busy cycles as
    /// a fraction of the capacity of all channels (0 when `elapsed` is 0).
    #[must_use]
    pub fn utilisation(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.stats.busy_cycles.get() as f64 / (elapsed * self.cfg.channels as u64) as f64
        }
    }

    /// Per-channel utilisation over `elapsed` cycles, in channel order.
    #[must_use]
    pub fn channel_utilisation(&self, elapsed: Cycle) -> Vec<f64> {
        self.stats.channel_utilisation(elapsed)
    }

    /// Effective read bandwidth consumed, in bytes (reads only).
    #[must_use]
    pub fn read_bytes(&self) -> u64 {
        (self.stats.demand_lines.get() + self.stats.prefetch_lines.get()) * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer() -> Cycle {
        DramConfig::default().line_transfer_cycles()
    }

    fn once() -> Cycle {
        DramConfig::default().latency + transfer()
    }

    #[test]
    fn single_fetch_latency() {
        let mut d = DramBackend::new(DramConfig::default());
        let done = d.demand_fetch(LineAddr::new(1), 100);
        assert_eq!(done, 100 + once());
        assert_eq!(d.stats().demand_lines.get(), 1);
        assert_eq!(d.stats().channels[0].demand_lines.get(), 1);
    }

    #[test]
    fn back_to_back_fetches_pipeline() {
        let mut d = DramBackend::new(DramConfig::default());
        let a = d.demand_fetch(LineAddr::new(1), 0);
        let b = d.demand_fetch(LineAddr::new(2), 0);
        let c = d.demand_fetch(LineAddr::new(3), 0);
        // Completion spacing equals the transfer time, not the full latency.
        assert_eq!(b - a, transfer());
        assert_eq!(c - b, transfer());
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut d = DramBackend::new(DramConfig::default());
        let a = d.demand_fetch(LineAddr::new(1), 0);
        let b = d.demand_fetch(LineAddr::new(2), 10_000);
        assert_eq!(a, once());
        assert_eq!(b, 10_000 + once());
    }

    #[test]
    fn lines_interleave_deterministically() {
        let d = DramBackend::new(DramConfig::default().with_channels(4));
        for i in 0..64 {
            let line = LineAddr::new(i);
            assert_eq!(d.channel_of(line), (i % 4) as usize);
            // The mapping is a pure function of the line address.
            assert_eq!(d.channel_of(line), d.channel_of(line));
        }
    }

    #[test]
    fn channels_serve_disjoint_lines_in_parallel() {
        let mut d = DramBackend::new(DramConfig::default().with_channels(2));
        // Lines 0 and 1 land on different channels: both complete as if alone.
        let a = d.demand_fetch(LineAddr::new(0), 0);
        let b = d.demand_fetch(LineAddr::new(1), 0);
        assert_eq!(a, once());
        assert_eq!(b, once());
        // A third request on channel 0 queues behind the first.
        let c = d.demand_fetch(LineAddr::new(2), 0);
        assert_eq!(c, once() + transfer());
    }

    #[test]
    fn demand_never_starved_behind_full_prefetch_queue() {
        let cfg = DramConfig {
            queue_depth: 8,
            ..DramConfig::default()
        };
        let mut d = DramBackend::new(cfg.clone());
        // Fill the speculative queue to the brim: the first transfer goes
        // straight onto the bus, the next `queue_depth` wait in the queue.
        for i in 0..=cfg.queue_depth {
            assert!(matches!(
                d.prefetch_fetch(LineAddr::new(100 + i as u64), 0),
                ChannelPrefetch::Scheduled { .. }
            ));
        }
        assert_eq!(
            d.prefetch_fetch(LineAddr::new(999), 0),
            ChannelPrefetch::QueueFull
        );
        assert_eq!(d.stats().pf_queue_rejected.get(), 1);
        // A demand arriving now waits only for the transfer already on the
        // bus — not for the queued speculative backlog.
        let done = d.demand_fetch(LineAddr::new(1), 0);
        assert_eq!(
            done,
            transfer() + once(),
            "demand must preempt queued prefetches"
        );
    }

    #[test]
    fn prefetch_reports_queue_delay() {
        let mut d = DramBackend::new(DramConfig::default());
        // First prefetch starts immediately: zero delay.
        match d.prefetch_fetch(LineAddr::new(1), 0) {
            ChannelPrefetch::Scheduled { queue_delay, .. } => assert_eq!(queue_delay, 0),
            other => panic!("{other:?}"),
        }
        // Second queues behind the first transfer.
        match d.prefetch_fetch(LineAddr::new(2), 0) {
            ChannelPrefetch::Scheduled {
                fill_done,
                queue_delay,
            } => {
                assert_eq!(queue_delay, transfer());
                assert_eq!(fill_done, transfer() + once());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(d.stats().channels[0].queue_delay.count(), 2);
        assert_eq!(d.stats().channels[0].queue_delay.sum(), transfer());
    }

    #[test]
    fn demand_preemption_delays_later_prefetches() {
        let mut d = DramBackend::new(DramConfig::default());
        // Queue two prefetches, then preempt with a demand.
        d.prefetch_fetch(LineAddr::new(1), 0);
        d.prefetch_fetch(LineAddr::new(2), 0);
        d.demand_fetch(LineAddr::new(3), 0);
        // A third prefetch now queues behind prefetch#2 *and* the demand.
        match d.prefetch_fetch(LineAddr::new(4), 0) {
            ChannelPrefetch::Scheduled { queue_delay, .. } => {
                assert_eq!(queue_delay, 3 * transfer());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn queue_drains_as_time_passes() {
        let cfg = DramConfig {
            queue_depth: 2,
            ..DramConfig::default()
        };
        let mut d = DramBackend::new(cfg);
        // One on the bus, two in the queue: the 2-entry queue is full.
        d.prefetch_fetch(LineAddr::new(1), 0);
        d.prefetch_fetch(LineAddr::new(2), 0);
        d.prefetch_fetch(LineAddr::new(4), 0);
        assert!(!d.prefetch_ready(LineAddr::new(3), 0));
        // By 3 transfers later the queued transfers have started: room again.
        let later = 3 * transfer();
        assert!(d.prefetch_ready(LineAddr::new(3), later));
        assert!(matches!(
            d.prefetch_fetch(LineAddr::new(3), later),
            ChannelPrefetch::Scheduled { .. }
        ));
    }

    #[test]
    fn writes_occupy_channel() {
        let mut d = DramBackend::new(DramConfig::default());
        let drain = d.write_bytes(0, 160); // ceil(160/8) = 20 cycles
        assert_eq!(drain, 20);
        let fetch_done = d.demand_fetch(LineAddr::new(1), 0);
        // The fetch had to wait for the write to drain.
        assert_eq!(fetch_done, 20 + once());
        assert_eq!(d.stats().write_bytes.get(), 160);
    }

    #[test]
    fn zero_byte_write_is_free() {
        let mut d = DramBackend::new(DramConfig::default());
        assert_eq!(d.write_bytes(5, 0), 5);
        assert_eq!(d.demand_fetch(LineAddr::new(1), 0), once());
    }

    #[test]
    fn streams_stripe_across_channels() {
        let mut two = DramBackend::new(DramConfig::default().with_channels(2));
        let mut one = DramBackend::new(DramConfig::default());
        // The same dense burst finishes in half the transfer time on two
        // channels (latency unchanged).
        let t_two = two.read_stream(0, 1600);
        let t_one = one.read_stream(0, 1600);
        assert_eq!(t_one, 300 + 200);
        assert_eq!(t_two, 300 + 100);
        assert_eq!(two.stats().dma_bytes.get(), 1600);
        // Both channels carry half the busy cycles.
        assert_eq!(two.stats().channels[0].busy_cycles.get(), 100);
        assert_eq!(two.stats().channels[1].busy_cycles.get(), 100);
    }

    #[test]
    fn utilisation_tracks_busy_fraction() {
        let mut d = DramBackend::new(DramConfig::default());
        for i in 0..10 {
            d.demand_fetch(LineAddr::new(i), 0);
        }
        let busy = 10 * transfer();
        assert!((d.utilisation(2 * busy) - 0.5).abs() < 1e-12);
        assert_eq!(d.utilisation(0), 0.0);
        // Two channels double the capacity denominator.
        let mut two = DramBackend::new(DramConfig::default().with_channels(2));
        for i in 0..10 {
            two.demand_fetch(LineAddr::new(i), 0);
        }
        assert!((two.utilisation(busy) - 0.5).abs() < 1e-12);
        let per = two.channel_utilisation(busy);
        assert_eq!(per.len(), 2);
        assert!((per[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefetch_and_demand_counted_separately() {
        let mut d = DramBackend::new(DramConfig::default());
        d.demand_fetch(LineAddr::new(1), 0);
        d.prefetch_fetch(LineAddr::new(2), 0);
        d.prefetch_fetch(LineAddr::new(3), 0);
        assert_eq!(d.stats().demand_lines.get(), 1);
        assert_eq!(d.stats().prefetch_lines.get(), 2);
        assert_eq!(d.read_bytes(), 3 * 64);
    }
}
