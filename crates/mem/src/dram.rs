//! Bandwidth-limited DRAM channel model.

use nvr_common::{Cycle, LINE_BYTES};

use crate::config::DramConfig;
use crate::stats::DramStats;

/// A single pipelined DRAM channel.
///
/// Each line transfer occupies the channel for
/// [`DramConfig::line_transfer_cycles`] and completes a fixed latency after
/// its channel slot starts, so bandwidth and latency are decoupled exactly
/// as on a real memory bus: back-to-back requests pipeline, and a saturated
/// channel queues.
///
/// # Examples
///
/// ```
/// use nvr_mem::{Dram, DramConfig};
///
/// let mut dram = Dram::new(DramConfig::default());
/// let first = dram.fetch_line(0, true);
/// let second = dram.fetch_line(0, true);
/// assert_eq!(second - first, DramConfig::default().line_transfer_cycles());
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    /// Cycle at which the channel next becomes free.
    channel_free: Cycle,
    stats: DramStats,
}

impl Dram {
    /// Creates a channel with the given timing.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`].
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        cfg.validate().expect("dram config must be valid");
        Dram {
            cfg,
            channel_free: 0,
            stats: DramStats::default(),
        }
    }

    /// The configuration this channel was built with.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Requests one cache line at cycle `now`; returns the completion cycle.
    ///
    /// `is_demand` selects the demand/prefetch traffic counter.
    pub fn fetch_line(&mut self, now: Cycle, is_demand: bool) -> Cycle {
        let transfer = self.cfg.line_transfer_cycles();
        let slot_start = now.max(self.channel_free);
        self.channel_free = slot_start + transfer;
        self.stats.busy_cycles.add(transfer);
        if is_demand {
            self.stats.demand_lines.inc();
        } else {
            self.stats.prefetch_lines.inc();
        }
        slot_start + self.cfg.latency + transfer
    }

    /// Streams `bytes` of dense DMA read traffic (scratchpad fills) over
    /// the channel; returns the completion cycle.
    pub fn read_stream(&mut self, now: Cycle, bytes: u64) -> Cycle {
        if bytes == 0 {
            return now;
        }
        let transfer = nvr_common::div_ceil(bytes, self.cfg.bytes_per_cycle);
        let slot_start = now.max(self.channel_free);
        self.channel_free = slot_start + transfer;
        self.stats.busy_cycles.add(transfer);
        self.stats.dma_bytes.add(bytes);
        slot_start + self.cfg.latency + transfer
    }

    /// Streams `bytes` out over the channel (stores / writebacks); returns
    /// the cycle the channel drains.
    pub fn write_bytes(&mut self, now: Cycle, bytes: u64) -> Cycle {
        if bytes == 0 {
            return now;
        }
        let transfer = nvr_common::div_ceil(bytes, self.cfg.bytes_per_cycle);
        let slot_start = now.max(self.channel_free);
        self.channel_free = slot_start + transfer;
        self.stats.busy_cycles.add(transfer);
        self.stats.write_bytes.add(bytes);
        slot_start + transfer
    }

    /// Cycle at which the channel next becomes free.
    #[must_use]
    pub fn channel_free_at(&self) -> Cycle {
        self.channel_free
    }

    /// Channel utilisation over `elapsed` cycles (`busy / elapsed`, 0 when
    /// `elapsed` is 0).
    #[must_use]
    pub fn utilisation(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.stats.busy_cycles.get() as f64 / elapsed as f64
        }
    }

    /// Effective read bandwidth consumed, in bytes (reads only).
    #[must_use]
    pub fn read_bytes(&self) -> u64 {
        (self.stats.demand_lines.get() + self.stats.prefetch_lines.get()) * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fetch_latency() {
        let mut d = Dram::new(DramConfig::default());
        let done = d.fetch_line(100, true);
        let cfg = DramConfig::default();
        assert_eq!(done, 100 + cfg.latency + cfg.line_transfer_cycles());
        assert_eq!(d.stats().demand_lines.get(), 1);
    }

    #[test]
    fn back_to_back_fetches_pipeline() {
        let mut d = Dram::new(DramConfig::default());
        let a = d.fetch_line(0, true);
        let b = d.fetch_line(0, true);
        let c = d.fetch_line(0, true);
        // Completion spacing equals the transfer time, not the full latency.
        let transfer = DramConfig::default().line_transfer_cycles();
        assert_eq!(b - a, transfer);
        assert_eq!(c - b, transfer);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut d = Dram::new(DramConfig::default());
        let a = d.fetch_line(0, true);
        let b = d.fetch_line(10_000, true);
        let once = DramConfig::default().latency + DramConfig::default().line_transfer_cycles();
        assert_eq!(a, once);
        assert_eq!(b, 10_000 + once);
    }

    #[test]
    fn prefetch_and_demand_counted_separately() {
        let mut d = Dram::new(DramConfig::default());
        d.fetch_line(0, true);
        d.fetch_line(0, false);
        d.fetch_line(0, false);
        assert_eq!(d.stats().demand_lines.get(), 1);
        assert_eq!(d.stats().prefetch_lines.get(), 2);
        assert_eq!(d.read_bytes(), 3 * 64);
    }

    #[test]
    fn writes_occupy_channel() {
        let mut d = Dram::new(DramConfig::default());
        let drain = d.write_bytes(0, 160); // ceil(160/8) = 20 cycles
        assert_eq!(drain, 20);
        let fetch_done = d.fetch_line(0, true);
        // The fetch had to wait for the write to drain.
        let once = DramConfig::default().latency + DramConfig::default().line_transfer_cycles();
        assert_eq!(fetch_done, 20 + once);
        assert_eq!(d.stats().write_bytes.get(), 160);
    }

    #[test]
    fn zero_byte_write_is_free() {
        let mut d = Dram::new(DramConfig::default());
        assert_eq!(d.write_bytes(5, 0), 5);
        assert_eq!(d.channel_free_at(), 0);
    }

    #[test]
    fn utilisation_tracks_busy_fraction() {
        let mut d = Dram::new(DramConfig::default());
        for _ in 0..10 {
            d.fetch_line(0, true);
        }
        let busy = 10 * DramConfig::default().line_transfer_cycles();
        assert!((d.utilisation(2 * busy) - 0.5).abs() < 1e-12);
        assert_eq!(d.utilisation(0), 0.0);
    }
}
