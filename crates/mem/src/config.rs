//! Configuration for the memory hierarchy.

use std::fmt;

use nvr_common::{Cycle, NvrError, LINE_BYTES};

/// One kibibyte, for readable capacity arithmetic.
pub const KIB: u64 = 1024;

/// Residency policy of one cache level — how fills pick victims and
/// whether a fill may be refused outright.
///
/// [`RetentionPolicy::Lru`] is the classic always-admit LRU every level
/// defaults to. [`RetentionPolicy::ScoredReuse`] turns the level into a
/// buffets-style *explicitly managed* fill/shrink buffer: each fill
/// carries a predicted-reuse score (0 = no prediction), victims are drawn
/// from score-exhausted lines first, and a fill that would have to evict a
/// line with more predicted reuse than its own is *rejected* (the buffer
/// shrinks its intake rather than thrash its hot set).
/// [`RetentionPolicy::ScoredEvict`] keeps the score-weighted victim
/// ranking but always admits — the right semantics for a level with no
/// on-chip backing store (the L2), where a rejected fill would resurface
/// as a full-latency demand miss instead of landing one level down.
/// With every score at zero all three policies coincide bit-for-bit,
/// which is the contract the retention property tests pin down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetentionPolicy {
    /// Always-admit least-recently-used victim selection.
    #[default]
    Lru,
    /// Explicitly managed fill/shrink keyed on per-line predicted-reuse
    /// scores (the NSB retention policy of the DARE-style admission path).
    ScoredReuse,
    /// Score-weighted eviction (weakest predicted reuse goes first, LRU
    /// tie-break) with unconditional admission — no shrink path.
    ScoredEvict,
}

impl fmt::Display for RetentionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RetentionPolicy::Lru => "lru",
            RetentionPolicy::ScoredReuse => "scored",
            RetentionPolicy::ScoredEvict => "scored-evict",
        })
    }
}

/// Geometry and timing of one cache level.
///
/// # Examples
///
/// ```
/// use nvr_mem::CacheConfig;
///
/// let l2 = CacheConfig::l2_default();
/// assert_eq!(l2.size_bytes, 256 * 1024);
/// l2.validate()?;
/// # Ok::<(), nvr_common::NvrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in stats output.
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (lines per set).
    pub ways: u64,
    /// Load-to-use latency of a hit, in cycles.
    pub hit_latency: Cycle,
    /// Number of miss-status holding registers (outstanding fills).
    pub mshr_entries: usize,
    /// Victim-selection / admission policy of this level. Defaults to
    /// [`RetentionPolicy::Lru`]; the NVR+NSB system switches its NSB to
    /// [`RetentionPolicy::ScoredReuse`] so speculative fills compete on
    /// predicted reuse instead of recency.
    pub policy: RetentionPolicy,
}

impl CacheConfig {
    /// The paper's default shared L2: 256 KB, 8-way, 20-cycle hit (§II, §V-A).
    #[must_use]
    pub fn l2_default() -> Self {
        CacheConfig {
            name: "L2",
            size_bytes: 256 * KIB,
            ways: 8,
            hit_latency: 20,
            mshr_entries: 64,
            policy: RetentionPolicy::Lru,
        }
    }

    /// The paper's default NSB: 16 KB, high-associativity, near-NPU latency
    /// (§IV-G argues for high-way set-associative mapping).
    #[must_use]
    pub fn nsb_default() -> Self {
        CacheConfig {
            name: "NSB",
            size_bytes: 16 * KIB,
            ways: 16,
            hit_latency: 2,
            mshr_entries: 16,
            policy: RetentionPolicy::Lru,
        }
    }

    /// Same configuration with a different capacity (sensitivity sweeps).
    #[must_use]
    pub fn with_size(mut self, size_bytes: u64) -> Self {
        self.size_bytes = size_bytes;
        self
    }

    /// Same configuration with a different associativity.
    #[must_use]
    pub fn with_ways(mut self, ways: u64) -> Self {
        self.ways = ways;
        self
    }

    /// Same configuration under a different retention policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetentionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (LINE_BYTES * self.ways)
    }

    /// Checks the geometry is realisable.
    ///
    /// # Errors
    ///
    /// Returns [`NvrError::Config`] if the capacity is not an exact multiple
    /// of `ways * LINE_BYTES` or any field is zero. (Set counts need not be
    /// powers of two — the index function is modulo — which permits the
    /// paper's 192 KB and 384 KB sweep points of Fig. 9.)
    pub fn validate(&self) -> Result<(), NvrError> {
        if self.size_bytes == 0 || self.ways == 0 || self.mshr_entries == 0 {
            return Err(NvrError::Config(format!(
                "{}: size, ways and MSHR count must be non-zero",
                self.name
            )));
        }
        if !self.size_bytes.is_multiple_of(LINE_BYTES * self.ways) {
            return Err(NvrError::Config(format!(
                "{}: size {} is not a multiple of ways*line ({})",
                self.name,
                self.size_bytes,
                LINE_BYTES * self.ways
            )));
        }
        Ok(())
    }
}

/// Timing and geometry of the off-chip DRAM backend.
///
/// The backend owns [`DramConfig::channels`] independent channels, line
/// addresses interleaved across them (`line % channels`). Each channel has
/// a bounded speculative request queue of [`DramConfig::queue_depth`]
/// entries with demand-over-prefetch arbitration: demand fills preempt
/// queued speculative fills, and a full queue rejects further prefetches
/// (back-pressure), so speculation can never starve the demand path of
/// bus slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Latency from request issue to first data, in cycles (pipelined).
    pub latency: Cycle,
    /// Per-channel throughput in bytes per cycle. At the paper's 2 GHz NPU
    /// clock, 8 B/cycle models a 16 GB/s LPDDR-class channel.
    pub bytes_per_cycle: u64,
    /// Number of independent channels, line-address interleaved. The
    /// paper's platform has one; the `fig7b` driver sweeps 1/2/4.
    pub channels: usize,
    /// Per-channel bound on outstanding speculative transfers (the
    /// prefetch request queue). Prefetches arriving at a full queue are
    /// rejected, which the hierarchy reports as dropped — prefetchers
    /// with their own issue queues (the VIGU) read the occupancy and
    /// back-pressure instead.
    pub queue_depth: usize,
}

impl DramConfig {
    /// Cycles one channel is occupied transferring one cache line.
    #[must_use]
    pub fn line_transfer_cycles(&self) -> Cycle {
        nvr_common::div_ceil(LINE_BYTES, self.bytes_per_cycle)
    }

    /// Same configuration with a different channel count (fig7b sweeps).
    #[must_use]
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Checks the configuration is realisable.
    ///
    /// # Errors
    ///
    /// Returns [`NvrError::Config`] if the bandwidth, channel count or
    /// queue depth is zero.
    pub fn validate(&self) -> Result<(), NvrError> {
        if self.bytes_per_cycle == 0 {
            return Err(NvrError::Config(
                "DRAM bytes_per_cycle must be non-zero".into(),
            ));
        }
        if self.channels == 0 {
            return Err(NvrError::Config(
                "DRAM channel count must be non-zero".into(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(NvrError::Config(
                "DRAM prefetch queue depth must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            latency: 300,
            bytes_per_cycle: 8,
            channels: 1,
            queue_depth: 32,
        }
    }
}

/// Full memory-system configuration.
///
/// # Examples
///
/// ```
/// use nvr_mem::{CacheConfig, MemoryConfig};
///
/// let with_nsb = MemoryConfig::default().with_nsb(CacheConfig::nsb_default());
/// assert!(with_nsb.nsb.is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Optional in-NPU speculative buffer in front of the L2.
    pub nsb: Option<CacheConfig>,
    /// The shared L2 cache.
    pub l2: CacheConfig,
    /// The off-chip channel.
    pub dram: DramConfig,
    /// Dedicated prefetch MSHR file (§IV-G): speculative fills are tracked
    /// separately from demand misses, so prefetching cannot starve the
    /// demand path of MSHRs and vice versa.
    pub prefetch_mshrs: usize,
}

impl MemoryConfig {
    /// Adds (or replaces) the NSB level.
    #[must_use]
    pub fn with_nsb(mut self, nsb: CacheConfig) -> Self {
        self.nsb = Some(nsb);
        self
    }

    /// Replaces the L2 configuration.
    #[must_use]
    pub fn with_l2(mut self, l2: CacheConfig) -> Self {
        self.l2 = l2;
        self
    }

    /// Replaces the DRAM configuration.
    #[must_use]
    pub fn with_dram(mut self, dram: DramConfig) -> Self {
        self.dram = dram;
        self
    }

    /// Best-case load-to-use latency for an NPU demand access (all-hit path).
    #[must_use]
    pub fn min_demand_latency(&self) -> Cycle {
        match &self.nsb {
            Some(nsb) => nsb.hit_latency,
            None => self.l2.hit_latency,
        }
    }

    /// Checks every level.
    ///
    /// # Errors
    ///
    /// Returns [`NvrError::Config`] if any level's configuration is invalid.
    pub fn validate(&self) -> Result<(), NvrError> {
        if let Some(nsb) = &self.nsb {
            nsb.validate()?;
        }
        self.l2.validate()?;
        self.dram.validate()
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            nsb: None,
            l2: CacheConfig::l2_default(),
            dram: DramConfig::default(),
            prefetch_mshrs: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        MemoryConfig::default().validate().expect("default valid");
        MemoryConfig::default()
            .with_nsb(CacheConfig::nsb_default())
            .validate()
            .expect("default+nsb valid");
    }

    #[test]
    fn l2_geometry() {
        let l2 = CacheConfig::l2_default();
        assert_eq!(l2.sets(), 256 * KIB / (64 * 8));
    }

    #[test]
    fn invalid_geometry_rejected() {
        let bad = CacheConfig::l2_default().with_size(100);
        assert!(bad.validate().is_err());
        let bad = CacheConfig {
            ways: 0,
            ..CacheConfig::l2_default()
        };
        assert!(bad.validate().is_err());
        // 3 sets: allowed (modulo indexing), as Fig. 9's 192/384 KB points
        // require non-power-of-two set counts.
        let odd = CacheConfig {
            size_bytes: 3 * 8 * 64,
            ..CacheConfig::l2_default()
        };
        assert!(odd.validate().is_ok());
    }

    #[test]
    fn dram_transfer_cycles() {
        let dram = DramConfig::default();
        assert_eq!(dram.line_transfer_cycles(), 8);
        let slow = DramConfig {
            bytes_per_cycle: 3,
            ..DramConfig::default()
        };
        assert_eq!(slow.line_transfer_cycles(), 22);
    }

    #[test]
    fn zero_bandwidth_rejected() {
        let bad = DramConfig {
            bytes_per_cycle: 0,
            ..DramConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn zero_channels_or_queue_rejected() {
        let bad = DramConfig {
            channels: 0,
            ..DramConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = DramConfig {
            queue_depth: 0,
            ..DramConfig::default()
        };
        assert!(bad.validate().is_err());
        let multi = DramConfig::default().with_channels(4);
        assert_eq!(multi.channels, 4);
        multi.validate().expect("multi-channel config valid");
    }

    #[test]
    fn min_latency_tracks_nsb() {
        let base = MemoryConfig::default();
        assert_eq!(base.min_demand_latency(), 20);
        let with_nsb = base.with_nsb(CacheConfig::nsb_default());
        assert_eq!(with_nsb.min_demand_latency(), 2);
    }
}
