//! Statistics collected by the memory hierarchy.

use std::fmt;

use nvr_common::{Counter, Histogram};

/// Per-cache-level counters.
///
/// Accuracy and coverage (the paper's Fig. 6 metrics) are derived:
///
/// * **accuracy** = `prefetch_useful / (prefetch_useful + unused)` where
///   unused counts evicted-unused plus resident-unused prefetched lines.
/// * **coverage** is computed by the experiment harness from a paired
///   no-prefetch baseline run ([`crate::hierarchy::MemorySystem`] exposes the
///   per-run miss counts it needs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Level name (e.g. "L2").
    pub name: &'static str,
    /// Demand accesses that hit a filled line.
    pub demand_hits: Counter,
    /// Demand accesses that found the line absent.
    pub demand_misses: Counter,
    /// Demand accesses that merged into an outstanding fill.
    pub mshr_merges: Counter,
    /// Prefetches accepted (line absent, MSHR available).
    pub prefetch_issued: Counter,
    /// Prefetches dropped because the line was already resident or in flight.
    pub prefetch_redundant: Counter,
    /// Prefetches dropped because the MSHR file was full.
    pub prefetch_dropped: Counter,
    /// Prefetched lines that were later demanded (first touch only).
    pub prefetch_useful: Counter,
    /// Subset of `prefetch_useful` where the demand arrived mid-fill.
    pub prefetch_late: Counter,
    /// Lines evicted.
    pub evictions: Counter,
    /// Prefetched lines evicted without ever being demanded.
    pub prefetch_evicted_unused: Counter,
    /// Prefetched lines still resident and undemanded at finalisation.
    pub prefetch_resident_unused: Counter,
    /// Scored fills rejected by the `ScoredReuse` retention policy because
    /// no resident line's predicted-reuse score was strictly lower (the
    /// buffets-style *shrink* outcome; always 0 under LRU).
    pub retention_rejected: Counter,
}

impl CacheStats {
    /// Fresh counters for the named level.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        CacheStats {
            name,
            ..CacheStats::default()
        }
    }

    /// Total demand accesses (hits + merges + misses).
    #[must_use]
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits.get() + self.mshr_merges.get() + self.demand_misses.get()
    }

    /// Demand miss rate counting MSHR merges as misses avoided
    /// (`misses / accesses`); 0 when idle.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_misses.get() as f64 / total as f64
        }
    }

    /// Prefetch accuracy: useful / (useful + unused). 0 when no prefetches.
    #[must_use]
    pub fn prefetch_accuracy(&self) -> f64 {
        let useful = self.prefetch_useful.get();
        let unused = self.prefetch_evicted_unused.get() + self.prefetch_resident_unused.get();
        if useful + unused == 0 {
            0.0
        } else {
            useful as f64 / (useful + unused) as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} acc, {:.1}% miss, pf {} issued / {:.1}% accurate",
            self.name,
            self.demand_accesses(),
            self.miss_rate() * 100.0,
            self.prefetch_issued.get(),
            self.prefetch_accuracy() * 100.0,
        )
    }
}

/// Per-channel counters of the multi-channel DRAM backend.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Lines this channel fetched on behalf of demand misses.
    pub demand_lines: Counter,
    /// Lines this channel fetched on behalf of prefetches.
    pub prefetch_lines: Counter,
    /// Cycles this channel spent transferring data (all traffic classes).
    pub busy_cycles: Counter,
    /// Queue delay (cycles between arrival and scheduled bus slot) of
    /// every speculative fill this channel accepted. Demand preemption
    /// and bus backlog both show up here.
    pub queue_delay: Histogram,
}

impl ChannelStats {
    /// Channel utilisation over `elapsed` cycles (`busy / elapsed`, 0 when
    /// `elapsed` is 0).
    #[must_use]
    pub fn utilisation(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_cycles.get() as f64 / elapsed as f64
        }
    }
}

/// Off-chip backend counters: workload-class aggregates plus one
/// [`ChannelStats`] entry per configured channel.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DramStats {
    /// Lines fetched on behalf of demand misses.
    pub demand_lines: Counter,
    /// Lines fetched on behalf of prefetches.
    pub prefetch_lines: Counter,
    /// Bytes written back / streamed out.
    pub write_bytes: Counter,
    /// Dense DMA read bytes (scratchpad fills), which bypass the caches.
    pub dma_bytes: Counter,
    /// Cycles spent transferring data, summed over all channels.
    pub busy_cycles: Counter,
    /// Speculative fills rejected because a channel's prefetch queue was
    /// full (the arbitration's back-pressure signal).
    pub pf_queue_rejected: Counter,
    /// Per-channel counters, one entry per configured channel.
    pub channels: Vec<ChannelStats>,
}

impl DramStats {
    /// Total lines moved over the backend.
    #[must_use]
    pub fn total_lines(&self) -> u64 {
        self.demand_lines.get() + self.prefetch_lines.get()
    }

    /// Total read bytes moved over the backend.
    #[must_use]
    pub fn read_bytes(&self) -> u64 {
        self.total_lines() * nvr_common::LINE_BYTES
    }

    /// Per-channel utilisation over `elapsed` cycles, in channel order.
    #[must_use]
    pub fn channel_utilisation(&self, elapsed: u64) -> Vec<f64> {
        self.channels
            .iter()
            .map(|c| c.utilisation(elapsed))
            .collect()
    }

    /// The speculative-fill queue-delay distribution merged across all
    /// channels (empty when no prefetch was ever accepted).
    #[must_use]
    pub fn queue_delay_merged(&self) -> Histogram {
        let mut merged = Histogram::new();
        for c in &self.channels {
            merged.merge(&c.queue_delay);
        }
        merged
    }
}

impl fmt::Display for DramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DRAM[{}ch]: {} demand lines, {} prefetch lines, {} write bytes, {} queue-rejected",
            self.channels.len().max(1),
            self.demand_lines.get(),
            self.prefetch_lines.get(),
            self.write_bytes.get(),
            self.pf_queue_rejected.get(),
        )
    }
}

/// Aggregated snapshot of the full hierarchy, cheap to clone out of a run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// NSB counters when the NSB is present.
    pub nsb: Option<CacheStats>,
    /// L2 counters.
    pub l2: CacheStats,
    /// Channel counters.
    pub dram: DramStats,
}

impl MemoryStats {
    /// Demand misses at the level closest to the NPU — the quantity the
    /// paper's miss-reduction claims are phrased in.
    #[must_use]
    pub fn npu_visible_misses(&self) -> u64 {
        match &self.nsb {
            Some(nsb) => nsb.demand_misses.get(),
            None => self.l2.demand_misses.get(),
        }
    }

    /// Off-chip lines fetched for demand misses (the Fig. 6c metric:
    /// off-chip accesses during actual load execution).
    #[must_use]
    pub fn demand_offchip_lines(&self) -> u64 {
        self.dram.demand_lines.get()
    }

    /// Combined prefetch accuracy across levels: useful / (useful + unused).
    /// Usefulness is observed wherever a demand first touches a prefetched
    /// line (NSB when present, else L2).
    #[must_use]
    pub fn prefetch_accuracy(&self) -> f64 {
        let mut useful = self.l2.prefetch_useful.get();
        let mut unused =
            self.l2.prefetch_evicted_unused.get() + self.l2.prefetch_resident_unused.get();
        if let Some(nsb) = &self.nsb {
            useful += nsb.prefetch_useful.get();
            unused += nsb.prefetch_evicted_unused.get() + nsb.prefetch_resident_unused.get();
        }
        if useful + unused == 0 {
            0.0
        } else {
            useful as f64 / (useful + unused) as f64
        }
    }
}

impl fmt::Display for MemoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(nsb) = &self.nsb {
            writeln!(f, "{nsb}")?;
        }
        writeln!(f, "{}", self.l2)?;
        write!(f, "{}", self.dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_counts_merges_in_denominator() {
        let mut s = CacheStats::new("T");
        s.demand_hits.add(6);
        s.mshr_merges.add(2);
        s.demand_misses.add(2);
        assert!((s.miss_rate() - 0.2).abs() < 1e-12);
        assert_eq!(s.demand_accesses(), 10);
    }

    #[test]
    fn accuracy_includes_resident_unused() {
        let mut s = CacheStats::new("T");
        s.prefetch_useful.add(8);
        s.prefetch_evicted_unused.add(1);
        s.prefetch_resident_unused.add(1);
        assert!((s.prefetch_accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = CacheStats::new("T");
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.prefetch_accuracy(), 0.0);
    }

    #[test]
    fn npu_visible_misses_prefers_nsb() {
        let mut m = MemoryStats::default();
        m.l2.demand_misses.add(10);
        assert_eq!(m.npu_visible_misses(), 10);
        let mut nsb = CacheStats::new("NSB");
        nsb.demand_misses.add(3);
        m.nsb = Some(nsb);
        assert_eq!(m.npu_visible_misses(), 3);
    }

    #[test]
    fn dram_byte_accounting() {
        let mut d = DramStats::default();
        d.demand_lines.add(2);
        d.prefetch_lines.add(3);
        assert_eq!(d.total_lines(), 5);
        assert_eq!(d.read_bytes(), 5 * 64);
    }

    #[test]
    fn channel_utilisation_and_queue_delay_merge() {
        let mut d = DramStats {
            channels: vec![ChannelStats::default(), ChannelStats::default()],
            ..DramStats::default()
        };
        d.channels[0].busy_cycles.add(50);
        d.channels[1].busy_cycles.add(100);
        d.channels[0].queue_delay.record(4);
        d.channels[1].queue_delay.record(12);
        let util = d.channel_utilisation(100);
        assert!((util[0] - 0.5).abs() < 1e-12);
        assert!((util[1] - 1.0).abs() < 1e-12);
        let merged = d.queue_delay_merged();
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.sum(), 16);
        assert_eq!(d.channel_utilisation(0), vec![0.0, 0.0]);
    }
}
