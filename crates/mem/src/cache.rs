//! Non-blocking set-associative cache with timestamp-forwarded fills.

use nvr_common::{Cycle, LineAddr};

use crate::config::{CacheConfig, RetentionPolicy};
use crate::stats::CacheStats;

/// One observed transition in a prefetched line's life, recorded by the
/// cache when its lifetime log is enabled (see [`Cache::enable_life_log`]).
///
/// These are the raw mem-side facts a timeliness model needs: when a
/// speculative fill was accepted, when its data arrived, when a demand
/// first touched it (and whether that demand had to wait mid-fill), and
/// when an untouched prefetched line was evicted. The consumer — NVR's
/// `lifetime` module in `nvr_core` — folds them into an issue→use slack
/// histogram and a usefulness throttle; the cache itself only reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchLifeEvent {
    /// A prefetch was accepted for `line` at cycle `at`; its data arrives
    /// at `fill_done`.
    Issued {
        /// The prefetched line.
        line: LineAddr,
        /// Cycle the prefetch entered the cache.
        at: Cycle,
        /// Cycle its fill completes.
        fill_done: Cycle,
        /// Cycles the fill waited in its DRAM channel's request queue
        /// before getting a bus slot (0 for fills that started
        /// immediately, e.g. promotions from a lower level).
        queue_delay: Cycle,
    },
    /// The first demand access touched the prefetched `line` at cycle `at`.
    FirstUse {
        /// The prefetched line.
        line: LineAddr,
        /// Cycle of the first demand touch.
        at: Cycle,
        /// Whether the demand arrived before the fill completed (a *late*
        /// prefetch: useful, but the NPU still waited).
        late: bool,
    },
    /// A prefetched line was evicted at cycle `at` without ever being
    /// demanded (wasted speculation — cache pollution).
    EvictedUnused {
        /// The evicted line.
        line: LineAddr,
        /// Cycle of the eviction.
        at: Cycle,
    },
}

/// Result of probing a cache for a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The line is resident and filled; data usable after the hit latency.
    Hit {
        /// Cycle at which the data is usable.
        ready_at: Cycle,
    },
    /// The line is being filled by an outstanding request; the access merges
    /// into the pending fill (MSHR coalescing).
    InFlight {
        /// Cycle at which the pending fill completes.
        ready_at: Cycle,
        /// Whether the pending fill was initiated by a prefetch.
        fill_was_prefetch: bool,
    },
    /// The line is absent; the caller must fetch it from the next level.
    Miss,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    /// Cycle at which the fill completes; `<= now` means filled.
    fill_done: Cycle,
    /// LRU timestamp.
    last_use: Cycle,
    /// Whether the fill was initiated by a prefetch.
    from_prefetch: bool,
    /// Whether a demand access touched the line since its fill.
    demanded: bool,
    /// Predicted-reuse score under [`RetentionPolicy::ScoredReuse`]: how
    /// many more demand touches the producer expects for this line. Decays
    /// by one per demand hit and ages on rejected fills; always 0 under
    /// [`RetentionPolicy::Lru`].
    reuse: u32,
}

/// A non-blocking set-associative cache level.
///
/// Fills are modelled by timestamps: [`Cache::install`] records the cycle at
/// which a line's data arrives, and later probes to that line before the
/// fill completes report [`ProbeResult::InFlight`] — exactly the behaviour a
/// miss-status holding register file provides in hardware.
///
/// MSHR capacity is enforced by counting lines whose fill is still pending:
/// [`Cache::mshr_free_at`] tells the caller when an MSHR slot frees up, so
/// demand accesses stall (and prefetches drop) when the file is full, as in
/// §IV-F–G of the paper.
///
/// # Examples
///
/// ```
/// use nvr_mem::{Cache, CacheConfig, ProbeResult};
/// use nvr_common::LineAddr;
///
/// let mut cache = Cache::new(CacheConfig::l2_default());
/// let line = LineAddr::new(0x40);
/// assert_eq!(cache.probe(line, 0, true), ProbeResult::Miss);
/// cache.install(line, 100, false, 0);
/// assert!(matches!(cache.probe(line, 50, true), ProbeResult::InFlight { .. }));
/// assert!(matches!(cache.probe(line, 200, true), ProbeResult::Hit { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    n_sets: u64,
    /// Completion cycles of outstanding fills (the MSHR file).
    inflight: Vec<Cycle>,
    stats: CacheStats,
    /// Per-prefetch lifetime events, recorded only when a consumer enabled
    /// the log (`None` costs nothing on the demand path).
    life_log: Option<Vec<PrefetchLifeEvent>>,
}

impl Cache {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`]; callers
    /// configuring from user input should validate first.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        // nvr-lint: allow(panic/hot-loop) reason="init-time config validation in the constructor, outside the tick loop"
        cfg.validate().expect("cache config must be valid");
        let sets = cfg.sets();
        Cache {
            n_sets: sets,
            sets: vec![vec![Way::default(); cfg.ways as usize]; sets as usize],
            inflight: Vec::with_capacity(cfg.mshr_entries),
            stats: CacheStats::new(cfg.name),
            life_log: None,
            cfg,
        }
    }

    /// Starts recording [`PrefetchLifeEvent`]s. Idempotent; events
    /// accumulate until drained with [`Cache::take_life_events`], so only
    /// consumers that drain regularly (e.g. a runahead controller's
    /// `advance` loop) should enable it.
    pub fn enable_life_log(&mut self) {
        if self.life_log.is_none() {
            self.life_log = Some(Vec::new());
        }
    }

    /// Drains the recorded lifetime events, in occurrence order. Returns
    /// an empty vec when the log was never enabled.
    pub fn take_life_events(&mut self) -> Vec<PrefetchLifeEvent> {
        match &mut self.life_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Reconstructs the line address of the way at (`set`, tag) — the
    /// inverse of [`Cache::set_index`] / [`Cache::tag`], needed to name
    /// evicted lines in the lifetime log.
    fn line_of(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr::new(tag * self.n_sets + set as u64)
    }

    /// Records a [`PrefetchLifeEvent::FirstUse`] for `line` when a demand
    /// was satisfied by a level *above* this cache (the NSB) and never
    /// probed it. Touches only the lifetime log — LRU state and the
    /// aggregate statistics keep their level-local semantics — so the
    /// lifetime consumer sees the consumption a pure-L2 view would
    /// misread as an unused eviction later. Duplicate calls for the same
    /// line are harmless: the tracker ignores a `FirstUse` with no
    /// pending issue.
    pub fn log_external_use(&mut self, line: LineAddr, now: Cycle) {
        if self.life_log.is_none() {
            return;
        }
        let set = self.set_index(line);
        let tag = self.tag(line);
        if let Some(w) = self.sets[set].iter().find(|w| w.valid && w.tag == tag) {
            if w.from_prefetch && !w.demanded {
                let late = w.fill_done > now;
                if let Some(log) = &mut self.life_log {
                    log.push(PrefetchLifeEvent::FirstUse {
                        line,
                        at: now,
                        late,
                    });
                }
            }
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.index() % self.n_sets) as usize
    }

    fn tag(&self, line: LineAddr) -> u64 {
        line.index() / self.n_sets
    }

    /// Looks up `line` at cycle `now`. `is_demand` controls statistics and
    /// the `demanded` mark used for prefetch-usefulness accounting.
    pub fn probe(&mut self, line: LineAddr, now: Cycle, is_demand: bool) -> ProbeResult {
        let set = self.set_index(line);
        let tag = self.tag(line);
        let hit_latency = self.cfg.hit_latency;
        let way = self.sets[set].iter_mut().find(|w| w.valid && w.tag == tag);
        match way {
            Some(w) => {
                w.last_use = now;
                let filled = w.fill_done <= now;
                let first_demand_of_prefetch = is_demand && w.from_prefetch && !w.demanded;
                if is_demand {
                    w.demanded = true;
                    // Each consumption spends one unit of predicted reuse, so
                    // a line whose forecast is exhausted becomes evictable
                    // again (no-op under LRU, where scores are always 0).
                    w.reuse = w.reuse.saturating_sub(1);
                }
                if first_demand_of_prefetch {
                    if let Some(log) = &mut self.life_log {
                        log.push(PrefetchLifeEvent::FirstUse {
                            line,
                            at: now,
                            late: !filled,
                        });
                    }
                }
                if filled {
                    if is_demand {
                        self.stats.demand_hits.inc();
                        if first_demand_of_prefetch {
                            self.stats.prefetch_useful.inc();
                        }
                    }
                    ProbeResult::Hit {
                        ready_at: now + hit_latency,
                    }
                } else {
                    let ready_at = w.fill_done.max(now + hit_latency);
                    let fill_was_prefetch = w.from_prefetch;
                    if is_demand {
                        self.stats.mshr_merges.inc();
                        if first_demand_of_prefetch {
                            self.stats.prefetch_useful.inc();
                            self.stats.prefetch_late.inc();
                        }
                    }
                    ProbeResult::InFlight {
                        ready_at,
                        fill_was_prefetch,
                    }
                }
            }
            None => {
                if is_demand {
                    self.stats.demand_misses.inc();
                }
                ProbeResult::Miss
            }
        }
    }

    /// Whether the line is resident or in flight, without disturbing LRU
    /// state or statistics. Used by prefetchers to test redundancy.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        let tag = self.tag(line);
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Cycle at which `line`'s data is (or becomes) available, if resident,
    /// without touching LRU state or statistics.
    #[must_use]
    pub fn ready_time(&self, line: LineAddr, now: Cycle) -> Option<Cycle> {
        let set = self.set_index(line);
        let tag = self.tag(line);
        self.sets[set]
            .iter()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| w.fill_done.max(now))
    }

    /// Number of MSHR entries still pending at `now`.
    #[must_use]
    pub fn mshr_pending(&self, now: Cycle) -> usize {
        self.inflight.iter().filter(|&&c| c > now).count()
    }

    /// Whether a new fill can be accepted at `now`.
    #[must_use]
    pub fn mshr_available(&self, now: Cycle) -> bool {
        self.mshr_pending(now) < self.cfg.mshr_entries
    }

    /// Earliest cycle at which an MSHR slot is free.
    ///
    /// Returns `now` when a slot is already free; otherwise the completion
    /// cycle of the soonest-finishing outstanding fill.
    #[must_use]
    pub fn mshr_free_at(&self, now: Cycle) -> Cycle {
        let pending: Vec<Cycle> = self.inflight.iter().copied().filter(|&c| c > now).collect();
        if pending.len() < self.cfg.mshr_entries {
            now
        } else {
            let mut sorted = pending;
            sorted.sort_unstable();
            // The (len - mshr_entries + 1)-th completion frees the slot.
            sorted[sorted.len() - self.cfg.mshr_entries]
        }
    }

    /// Installs `line` with its data arriving at `fill_done`, allocating an
    /// MSHR entry and evicting the LRU way if needed.
    ///
    /// Prefetch fills (`from_prefetch`) do not occupy this cache's MSHR
    /// file — they are tracked by the dedicated speculative MSHR file of
    /// the hierarchy (§IV-G), so demand and speculation do not contend for
    /// miss-tracking slots.
    ///
    /// The caller is responsible for having checked [`Cache::mshr_available`]
    /// for demand fills.
    pub fn install(&mut self, line: LineAddr, fill_done: Cycle, from_prefetch: bool, now: Cycle) {
        self.install_inner(line, fill_done, from_prefetch, now, 0, 0);
    }

    /// [`Cache::install`] for a speculative fill whose DRAM channel queue
    /// delayed it by `queue_delay` cycles — the delay rides the lifetime
    /// log's `Issued` event so timeliness reports can attribute lateness
    /// to arbitration rather than prediction.
    pub fn install_speculative(
        &mut self,
        line: LineAddr,
        fill_done: Cycle,
        now: Cycle,
        queue_delay: Cycle,
    ) {
        self.install_inner(line, fill_done, true, now, queue_delay, 0);
    }

    /// [`Cache::install_speculative`] carrying a predicted-reuse score for
    /// [`RetentionPolicy::ScoredReuse`] victim selection. Returns whether
    /// the fill was accepted: a scored cache *shrinks* instead of evicting
    /// when every resident line's score is at least the incoming one, and
    /// the rejected fill never becomes resident (counted in
    /// `retention_rejected`). Always accepted under [`RetentionPolicy::Lru`].
    pub fn install_speculative_scored(
        &mut self,
        line: LineAddr,
        fill_done: Cycle,
        now: Cycle,
        queue_delay: Cycle,
        reuse: u32,
    ) -> bool {
        self.install_inner(line, fill_done, true, now, queue_delay, reuse)
    }

    /// Records an outstanding demand fill, recycling a completed slot.
    fn note_inflight(&mut self, fill_done: Cycle, now: Cycle) {
        if let Some(slot) = self.inflight.iter_mut().find(|c| **c <= now) {
            *slot = fill_done;
        } else {
            self.inflight.push(fill_done);
        }
    }

    fn install_inner(
        &mut self,
        line: LineAddr,
        fill_done: Cycle,
        from_prefetch: bool,
        now: Cycle,
        queue_delay: Cycle,
        reuse: u32,
    ) -> bool {
        let set = self.set_index(line);
        let tag = self.tag(line);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.valid && w.tag == tag) {
            // Refill of a resident line (e.g. prefetch after demand raced in).
            w.fill_done = w.fill_done.min(fill_done);
            w.last_use = now;
            w.reuse = w.reuse.max(reuse);
            if !from_prefetch {
                self.note_inflight(fill_done, now);
            }
            return true;
        }

        // Victim selection happens *before* any bookkeeping so a rejected
        // scored fill leaves the cache (MSHRs, lifetime log, stats other
        // than the rejection counter) untouched.
        let victim = match self.cfg.policy {
            RetentionPolicy::Lru => self.pick_victim(set, now),
            RetentionPolicy::ScoredReuse => match self.pick_victim_scored(set, now, reuse, true) {
                Ok(i) => i,
                Err(shrink) => {
                    self.stats.retention_rejected.inc();
                    // Age the weakest resident so a stream of rejections
                    // deterministically drains a stale hot set.
                    let w = &mut self.sets[set][shrink];
                    w.reuse = w.reuse.saturating_sub(1);
                    return false;
                }
            },
            // Always admit; the shrink arm's "weakest resident" becomes
            // the victim instead of a rejection. No active-window
            // protection here: with rejection off the table, sparing
            // un-demanded speculative lines would only displace the
            // eviction onto demanded-hot residents — worse than letting
            // score order decide.
            RetentionPolicy::ScoredEvict => match self.pick_victim_scored(set, now, reuse, false) {
                Ok(i) | Err(i) => i,
            },
        };

        if !from_prefetch {
            self.note_inflight(fill_done, now);
        }
        if from_prefetch {
            if let Some(log) = &mut self.life_log {
                log.push(PrefetchLifeEvent::Issued {
                    line,
                    at: now,
                    fill_done,
                    queue_delay,
                });
            }
        }
        let evicted_unused_line = {
            let w = &self.sets[set][victim];
            (w.valid && w.from_prefetch && !w.demanded).then(|| self.line_of(set, w.tag))
        };
        let w = &mut self.sets[set][victim];
        if w.valid {
            self.stats.evictions.inc();
            if w.from_prefetch && !w.demanded {
                self.stats.prefetch_evicted_unused.inc();
            }
        }
        if let Some(evicted) = evicted_unused_line {
            if let Some(log) = &mut self.life_log {
                log.push(PrefetchLifeEvent::EvictedUnused {
                    line: evicted,
                    at: now,
                });
            }
        }
        *w = Way {
            tag,
            valid: true,
            fill_done,
            last_use: now,
            from_prefetch,
            demanded: false,
            reuse,
        };
        true
    }

    /// LRU victim, preferring ways whose fill already completed so that
    /// in-flight fills are not silently clobbered.
    fn pick_victim(&self, set: usize, now: Cycle) -> usize {
        let ways = &self.sets[set];
        if let Some((i, _)) = ways.iter().enumerate().find(|(_, w)| !w.valid) {
            return i;
        }
        let filled_lru = ways
            .iter()
            .enumerate()
            .filter(|(_, w)| w.fill_done <= now)
            .min_by_key(|(_, w)| w.last_use);
        if let Some((i, _)) = filled_lru {
            return i;
        }
        // Every way is mid-fill (pathological): fall back to plain LRU.
        ways.iter()
            .enumerate()
            .min_by_key(|(_, w)| w.last_use)
            .map(|(i, _)| i)
            // nvr-lint: allow(panic/hot-loop) reason="CacheConfig::validate rejects ways == 0, so min_by_key over a set's ways is total"
            .expect("ways is non-empty")
    }

    /// Victim selection under [`RetentionPolicy::ScoredReuse`] — the
    /// buffets-style explicitly-managed fill/shrink decision:
    ///
    /// 1. an invalid way is always filled;
    /// 2. a filled way whose score is exhausted (`reuse == 0`) is evicted
    ///    LRU-first — identical to what [`RetentionPolicy::Lru`] would do,
    ///    which is why all-zero scores reproduce LRU bit for bit;
    /// 3. otherwise the weakest *evictable* resident (min score, LRU
    ///    tie-break) is evicted only if the incoming score strictly beats
    ///    it — else the fill is rejected (`Err` carries the weakest way so
    ///    the caller can age it). With `protect_active` (the shrink-capable
    ///    NSB), a speculative line that has not yet seen its demand and
    ///    still carries score is an **active-window line** — the runahead
    ///    thread only resolves targets inside the lookahead horizon, so its
    ///    demand is imminent — and never competes for eviction; letting a
    ///    freshly pinned hub clobber it converts a timely prefetch into a
    ///    demand miss. When every filled way is such a line the fill is
    ///    rejected and the weakest ages, so a set full of mispredicted
    ///    "imminent" lines drains deterministically.
    ///
    /// The all-mid-fill pathological case falls back to [`Cache::pick_victim`]'s
    /// plain-LRU behaviour.
    fn pick_victim_scored(
        &self,
        set: usize,
        now: Cycle,
        incoming: u32,
        protect_active: bool,
    ) -> Result<usize, usize> {
        let ways = &self.sets[set];
        if let Some((i, _)) = ways.iter().enumerate().find(|(_, w)| !w.valid) {
            return Ok(i);
        }
        if let Some((i, _)) = ways
            .iter()
            .enumerate()
            .filter(|(_, w)| w.fill_done <= now && w.reuse == 0)
            .min_by_key(|(_, w)| w.last_use)
        {
            return Ok(i);
        }
        let active_window = |w: &Way| protect_active && w.from_prefetch && !w.demanded;
        match ways
            .iter()
            .enumerate()
            .filter(|(_, w)| w.fill_done <= now && !active_window(w))
            .min_by_key(|(_, w)| (w.reuse, w.last_use))
        {
            Some((i, w)) if incoming > w.reuse => Ok(i),
            Some((i, _)) => Err(i),
            None => match ways
                .iter()
                .enumerate()
                .filter(|(_, w)| w.fill_done <= now)
                .min_by_key(|(_, w)| (w.reuse, w.last_use))
            {
                Some((i, _)) => Err(i),
                None => Ok(self.pick_victim(set, now)),
            },
        }
    }

    /// Raises a resident `line`'s predicted-reuse score to at least
    /// `reuse` — how a *redundant* scored prefetch keeps a hot line
    /// pinned: later runahead windows re-observe the line with a larger
    /// remaining-touch forecast, and without the refresh the score would
    /// only ever decay (one per demand hit) until the line became
    /// evictable mid-stream. A no-op under [`RetentionPolicy::Lru`]
    /// (scores must stay 0 for the LRU-equivalence invariant) and for
    /// absent or mid-fill-refilled lines.
    pub fn refresh_reuse(&mut self, line: LineAddr, reuse: u32) {
        if self.cfg.policy == RetentionPolicy::Lru {
            return;
        }
        let set = self.set_index(line);
        let tag = self.tag(line);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.valid && w.tag == tag) {
            w.reuse = w.reuse.max(reuse);
        }
    }

    /// Counts resident prefetched-but-never-demanded lines into the stats.
    ///
    /// Call once at the end of a simulation so that accuracy denominators
    /// include prefetches that were still resident (and unused) at the end.
    pub fn finalize_stats(&mut self) {
        let unused = self
            .sets
            .iter()
            .flatten()
            .filter(|w| w.valid && w.from_prefetch && !w.demanded)
            .count() as u64;
        self.stats.prefetch_resident_unused.add(unused);
    }

    /// Record a prefetch acceptance in the stats (called by the hierarchy).
    pub(crate) fn note_prefetch_issued(&mut self) {
        self.stats.prefetch_issued.inc();
    }

    /// Record a redundant prefetch in the stats (called by the hierarchy).
    pub(crate) fn note_prefetch_redundant(&mut self) {
        self.stats.prefetch_redundant.inc();
    }

    /// Record a dropped prefetch in the stats (called by the hierarchy).
    pub(crate) fn note_prefetch_dropped(&mut self) {
        self.stats.prefetch_dropped.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KIB;

    fn tiny_cache(ways: u64, sets: u64) -> Cache {
        Cache::new(CacheConfig {
            name: "T",
            size_bytes: ways * sets * 64,
            ways,
            hit_latency: 4,
            mshr_entries: 2,
            policy: RetentionPolicy::Lru,
        })
    }

    fn tiny_scored(ways: u64, sets: u64) -> Cache {
        Cache::new(CacheConfig {
            name: "T",
            size_bytes: ways * sets * 64,
            ways,
            hit_latency: 4,
            mshr_entries: 2,
            policy: RetentionPolicy::ScoredReuse,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny_cache(2, 4);
        let line = LineAddr::new(0x10);
        assert_eq!(c.probe(line, 0, true), ProbeResult::Miss);
        c.install(line, 50, false, 0);
        match c.probe(line, 60, true) {
            ProbeResult::Hit { ready_at } => assert_eq!(ready_at, 64),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats().demand_hits.get(), 1);
        assert_eq!(c.stats().demand_misses.get(), 1);
    }

    #[test]
    fn inflight_merge_reports_fill_time() {
        let mut c = tiny_cache(2, 4);
        let line = LineAddr::new(0x10);
        c.probe(line, 0, true);
        c.install(line, 100, false, 0);
        match c.probe(line, 10, true) {
            ProbeResult::InFlight { ready_at, .. } => assert_eq!(ready_at, 100),
            other => panic!("expected in-flight, got {other:?}"),
        }
        assert_eq!(c.stats().mshr_merges.get(), 1);
    }

    #[test]
    fn prefetch_useful_accounting() {
        let mut c = tiny_cache(2, 4);
        let line = LineAddr::new(0x20);
        c.install(line, 10, true, 0);
        // First demand marks the prefetch useful, once.
        c.probe(line, 20, true);
        c.probe(line, 30, true);
        assert_eq!(c.stats().prefetch_useful.get(), 1);
        assert_eq!(c.stats().prefetch_late.get(), 0);
    }

    #[test]
    fn late_prefetch_counts_as_late_useful() {
        let mut c = tiny_cache(2, 4);
        let line = LineAddr::new(0x20);
        c.install(line, 100, true, 0);
        match c.probe(line, 10, true) {
            ProbeResult::InFlight {
                ready_at,
                fill_was_prefetch,
            } => {
                assert_eq!(ready_at, 100);
                assert!(fill_was_prefetch);
            }
            other => panic!("expected in-flight, got {other:?}"),
        }
        assert_eq!(c.stats().prefetch_useful.get(), 1);
        assert_eq!(c.stats().prefetch_late.get(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny_cache(2, 1); // one set, two ways
        let a = LineAddr::new(1);
        let b = LineAddr::new(2);
        let d = LineAddr::new(3);
        c.install(a, 0, false, 0);
        c.install(b, 0, false, 1);
        c.probe(a, 10, true); // a is now MRU
        c.install(d, 20, false, 11); // must evict b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
        assert_eq!(c.stats().evictions.get(), 1);
    }

    #[test]
    fn eviction_of_unused_prefetch_is_counted() {
        let mut c = tiny_cache(1, 1);
        c.install(LineAddr::new(1), 0, true, 0);
        c.install(LineAddr::new(2), 0, false, 1);
        assert_eq!(c.stats().prefetch_evicted_unused.get(), 1);
    }

    #[test]
    fn mshr_capacity_tracking() {
        let mut c = tiny_cache(4, 4); // mshr_entries = 2
        c.install(LineAddr::new(1), 100, false, 0);
        assert!(c.mshr_available(0));
        c.install(LineAddr::new(2), 120, false, 0);
        assert!(!c.mshr_available(0));
        assert_eq!(c.mshr_free_at(0), 100);
        // After the first fill lands, a slot frees.
        assert!(c.mshr_available(100));
        assert_eq!(c.mshr_free_at(100), 100);
    }

    #[test]
    fn mshr_slot_recycling() {
        let mut c = tiny_cache(4, 4);
        c.install(LineAddr::new(1), 10, false, 0);
        c.install(LineAddr::new(2), 20, false, 0);
        // Both done by cycle 30; new installs reuse slots rather than grow.
        c.install(LineAddr::new(3), 40, false, 30);
        c.install(LineAddr::new(4), 50, false, 30);
        assert_eq!(c.mshr_pending(30), 2);
        assert!(c.inflight.len() <= 2, "slots must be recycled");
    }

    #[test]
    fn finalize_counts_resident_unused_prefetches() {
        let mut c = tiny_cache(2, 2);
        c.install(LineAddr::new(1), 0, true, 0);
        c.install(LineAddr::new(2), 0, true, 0);
        c.probe(LineAddr::new(1), 5, true);
        c.finalize_stats();
        assert_eq!(c.stats().prefetch_resident_unused.get(), 1);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(CacheConfig::l2_default().with_size(16 * KIB));
        let sets = c.config().sets();
        // Lines mapping to different sets never evict each other.
        for i in 0..sets {
            c.install(LineAddr::new(i), 0, false, 0);
        }
        for i in 0..sets {
            assert!(c.contains(LineAddr::new(i)));
        }
        assert_eq!(c.stats().evictions.get(), 0);
    }

    #[test]
    fn scored_rejects_fill_that_does_not_beat_residents() {
        let mut c = tiny_scored(1, 1);
        let hot = LineAddr::new(1);
        assert!(c.install_speculative_scored(hot, 0, 0, 0, 3));
        // Equal score does not displace the resident: reject + shrink.
        assert!(!c.install_speculative_scored(LineAddr::new(2), 0, 1, 0, 3));
        assert!(c.contains(hot));
        assert!(!c.contains(LineAddr::new(2)));
        assert_eq!(c.stats().retention_rejected.get(), 1);
        // The rejected fill never entered the lifetime accounting.
        assert_eq!(c.stats().evictions.get(), 0);
    }

    #[test]
    fn scored_evicts_strictly_weaker_resident() {
        let mut c = tiny_scored(1, 1);
        c.install_speculative_scored(LineAddr::new(1), 0, 0, 0, 2);
        // Spend the resident's active-window protection: once demanded it
        // competes on score alone (2 -> 1 after the hit).
        c.probe(LineAddr::new(1), 5, true);
        assert!(c.install_speculative_scored(LineAddr::new(2), 0, 6, 0, 5));
        assert!(!c.contains(LineAddr::new(1)));
        assert!(c.contains(LineAddr::new(2)));
        assert_eq!(c.stats().retention_rejected.get(), 0);
    }

    #[test]
    fn scored_never_evicts_undemanded_speculative_resident() {
        // An active-window line — speculative, not yet demanded, score
        // remaining — is rejected against rather than evicted, no matter
        // how strong the incoming fill is.
        let mut c = tiny_scored(1, 1);
        c.install_speculative_scored(LineAddr::new(1), 0, 0, 0, 1);
        assert!(!c.install_speculative_scored(LineAddr::new(2), 0, 1, 0, 100));
        assert!(c.contains(LineAddr::new(1)));
        assert_eq!(c.stats().retention_rejected.get(), 1);
    }

    #[test]
    fn rejections_age_the_weakest_resident_until_it_drains() {
        let mut c = tiny_scored(1, 1);
        c.install_speculative_scored(LineAddr::new(1), 0, 0, 0, 2);
        let probe = LineAddr::new(2);
        // Two rejections age the resident 2 -> 1 -> 0; the third fill then
        // takes the exhausted-score LRU path and lands.
        assert!(!c.install_speculative_scored(probe, 0, 1, 0, 0));
        assert!(!c.install_speculative_scored(probe, 0, 2, 0, 0));
        assert!(c.install_speculative_scored(probe, 0, 3, 0, 0));
        assert!(c.contains(probe));
        assert_eq!(c.stats().retention_rejected.get(), 2);
    }

    #[test]
    fn demand_hits_decay_the_score() {
        let mut c = tiny_scored(1, 1);
        c.install_speculative_scored(LineAddr::new(1), 0, 0, 0, 2);
        // Each demand touch spends one predicted use.
        c.probe(LineAddr::new(1), 5, true);
        c.probe(LineAddr::new(1), 6, true);
        // Score exhausted: a zero-score fill now evicts it LRU-style.
        assert!(c.install_speculative_scored(LineAddr::new(2), 0, 7, 0, 0));
        assert!(c.contains(LineAddr::new(2)));
        assert_eq!(c.stats().retention_rejected.get(), 0);
    }

    #[test]
    fn scored_with_zero_scores_matches_lru_bit_for_bit() {
        // Same operation sequence against both policies; with all scores
        // zero the scored cache must reproduce LRU exactly.
        let mut lru = tiny_cache(2, 1);
        let mut scored = tiny_scored(2, 1);
        for c in [&mut lru, &mut scored] {
            c.install(LineAddr::new(1), 0, false, 0);
            c.install(LineAddr::new(2), 5, true, 1);
            c.probe(LineAddr::new(1), 10, true);
            c.install(LineAddr::new(3), 20, false, 11); // evicts 2
            c.probe(LineAddr::new(2), 30, true); // miss
            c.finalize_stats();
        }
        for line in [1u64, 2, 3] {
            assert_eq!(
                lru.contains(LineAddr::new(line)),
                scored.contains(LineAddr::new(line))
            );
        }
        let (mut a, mut b) = (lru.stats().clone(), scored.stats().clone());
        a.name = "X";
        b.name = "X";
        assert_eq!(a, b);
    }

    #[test]
    fn scored_never_clobbers_midfill_line_when_filled_victim_exists() {
        let mut c = tiny_scored(2, 1);
        c.install_speculative_scored(LineAddr::new(1), 100, 0, 0, 4); // mid-fill until 100
        c.install_speculative_scored(LineAddr::new(2), 0, 1, 0, 0); // filled, score 0
                                                                    // Incoming fill must pick the exhausted filled way, not the
                                                                    // high-score in-flight one.
        assert!(c.install_speculative_scored(LineAddr::new(3), 0, 10, 0, 1));
        assert!(c.contains(LineAddr::new(1)));
        assert!(!c.contains(LineAddr::new(2)));
    }

    #[test]
    fn contains_does_not_touch_stats() {
        let mut c = tiny_cache(2, 2);
        c.install(LineAddr::new(7), 0, false, 0);
        let before = c.stats().clone();
        assert!(c.contains(LineAddr::new(7)));
        assert!(!c.contains(LineAddr::new(9)));
        assert_eq!(&before, c.stats());
    }
}
