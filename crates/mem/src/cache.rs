//! Non-blocking set-associative cache with timestamp-forwarded fills.

use nvr_common::{Cycle, LineAddr};

use crate::config::{CacheConfig, RetentionPolicy};
use crate::stats::CacheStats;

/// One observed transition in a prefetched line's life, recorded by the
/// cache when its lifetime log is enabled (see [`Cache::enable_life_log`]).
///
/// These are the raw mem-side facts a timeliness model needs: when a
/// speculative fill was accepted, when its data arrived, when a demand
/// first touched it (and whether that demand had to wait mid-fill), and
/// when an untouched prefetched line was evicted. The consumer — NVR's
/// `lifetime` module in `nvr_core` — folds them into an issue→use slack
/// histogram and a usefulness throttle; the cache itself only reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchLifeEvent {
    /// A prefetch was accepted for `line` at cycle `at`; its data arrives
    /// at `fill_done`.
    Issued {
        /// The prefetched line.
        line: LineAddr,
        /// Cycle the prefetch entered the cache.
        at: Cycle,
        /// Cycle its fill completes.
        fill_done: Cycle,
        /// Cycles the fill waited in its DRAM channel's request queue
        /// before getting a bus slot (0 for fills that started
        /// immediately, e.g. promotions from a lower level).
        queue_delay: Cycle,
    },
    /// The first demand access touched the prefetched `line` at cycle `at`.
    FirstUse {
        /// The prefetched line.
        line: LineAddr,
        /// Cycle of the first demand touch.
        at: Cycle,
        /// Whether the demand arrived before the fill completed (a *late*
        /// prefetch: useful, but the NPU still waited).
        late: bool,
    },
    /// A prefetched line was evicted at cycle `at` without ever being
    /// demanded (wasted speculation — cache pollution).
    EvictedUnused {
        /// The evicted line.
        line: LineAddr,
        /// Cycle of the eviction.
        at: Cycle,
    },
}

/// Result of probing a cache for a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The line is resident and filled; data usable after the hit latency.
    Hit {
        /// Cycle at which the data is usable.
        ready_at: Cycle,
    },
    /// The line is being filled by an outstanding request; the access merges
    /// into the pending fill (MSHR coalescing).
    InFlight {
        /// Cycle at which the pending fill completes.
        ready_at: Cycle,
        /// Whether the pending fill was initiated by a prefetch.
        fill_was_prefetch: bool,
    },
    /// The line is absent; the caller must fetch it from the next level.
    Miss,
}

/// Per-way state bits packed into one byte of the SoA `flags` array.
const F_VALID: u8 = 1 << 0;
/// Whether the fill was initiated by a prefetch.
const F_PREFETCH: u8 = 1 << 1;
/// Whether a demand access touched the line since its fill.
const F_DEMANDED: u8 = 1 << 2;

/// A non-blocking set-associative cache level.
///
/// Fills are modelled by timestamps: [`Cache::install`] records the cycle at
/// which a line's data arrives, and later probes to that line before the
/// fill completes report [`ProbeResult::InFlight`] — exactly the behaviour a
/// miss-status holding register file provides in hardware.
///
/// MSHR capacity is enforced by counting lines whose fill is still pending:
/// [`Cache::mshr_free_at`] tells the caller when an MSHR slot frees up, so
/// demand accesses stall (and prefetches drop) when the file is full, as in
/// §IV-F–G of the paper.
///
/// # Layout
///
/// Way metadata lives in dense structure-of-arrays form: parallel vectors
/// (`tags`, `fill_done`, `last_use`, `reuse`, `flags`), each indexed by
/// `set * ways + way`. A probe touches only the `flags`/`tags` lanes until
/// it finds its way, so the tag scan streams through two tightly packed
/// arrays instead of striding across per-way structs — and there is no
/// per-set `Vec` indirection on the hot path.
///
/// # Examples
///
/// ```
/// use nvr_mem::{Cache, CacheConfig, ProbeResult};
/// use nvr_common::LineAddr;
///
/// let mut cache = Cache::new(CacheConfig::l2_default());
/// let line = LineAddr::new(0x40);
/// assert_eq!(cache.probe(line, 0, true), ProbeResult::Miss);
/// cache.install(line, 100, false, 0);
/// assert!(matches!(cache.probe(line, 50, true), ProbeResult::InFlight { .. }));
/// assert!(matches!(cache.probe(line, 200, true), ProbeResult::Hit { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    ways: usize,
    n_sets: u64,
    /// `n_sets - 1` when the set count is a power of two (the usual
    /// geometry), letting the per-probe `%`/`/` pair collapse to mask and
    /// shift; `u64::MAX` marks the division fallback.
    set_mask: u64,
    /// `log2(n_sets)` when the set count is a power of two.
    set_shift: u32,
    /// SoA way metadata, indexed by `set * ways + way`.
    tags: Vec<u64>,
    /// Cycle at which each way's fill completes; `<= now` means filled.
    fill_done: Vec<Cycle>,
    /// LRU timestamps.
    last_use: Vec<Cycle>,
    /// Predicted-reuse scores under [`RetentionPolicy::ScoredReuse`]: how
    /// many more demand touches the producer expects for the line. Decays
    /// by one per demand hit and ages on rejected fills; always 0 under
    /// [`RetentionPolicy::Lru`].
    reuse: Vec<u32>,
    /// Validity/provenance bits (`F_VALID | F_PREFETCH | F_DEMANDED`).
    flags: Vec<u8>,
    /// Completion cycles of outstanding fills (the MSHR file), kept in
    /// ascending order so occupancy questions are binary searches.
    inflight: Vec<Cycle>,
    stats: CacheStats,
    /// Per-prefetch lifetime events, recorded only when a consumer enabled
    /// the log (`None` costs nothing on the demand path).
    life_log: Option<Vec<PrefetchLifeEvent>>,
}

impl Cache {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`]; callers
    /// configuring from user input should validate first.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        // nvr-lint: allow(panic/hot-loop) reason="init-time config validation in the constructor, outside the tick loop"
        cfg.validate().expect("cache config must be valid");
        let sets = cfg.sets();
        let slots = (sets * cfg.ways) as usize;
        let (set_mask, set_shift) = if sets.is_power_of_two() {
            (sets - 1, sets.trailing_zeros())
        } else {
            (u64::MAX, 0)
        };
        Cache {
            ways: cfg.ways as usize,
            n_sets: sets,
            set_mask,
            set_shift,
            tags: vec![0; slots],
            fill_done: vec![0; slots],
            last_use: vec![0; slots],
            reuse: vec![0; slots],
            flags: vec![0; slots],
            inflight: Vec::with_capacity(cfg.mshr_entries),
            stats: CacheStats::new(cfg.name),
            life_log: None,
            cfg,
        }
    }

    /// Starts recording [`PrefetchLifeEvent`]s. Idempotent; events
    /// accumulate until drained with [`Cache::take_life_events`] or
    /// [`Cache::swap_life_events`], so only consumers that drain regularly
    /// (e.g. a runahead controller's `advance` loop) should enable it.
    pub fn enable_life_log(&mut self) {
        if self.life_log.is_none() {
            self.life_log = Some(Vec::new());
        }
    }

    /// Drains the recorded lifetime events, in occurrence order. Returns
    /// an empty vec when the log was never enabled.
    pub fn take_life_events(&mut self) -> Vec<PrefetchLifeEvent> {
        match &mut self.life_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Exchanges the recorded lifetime events with `buf` (which the caller
    /// keeps cleared between drains), so a steady-state drain cycle reuses
    /// two allocations forever instead of allocating a fresh log per drain
    /// the way [`Cache::take_life_events`] does. No-op when the log was
    /// never enabled.
    pub fn swap_life_events(&mut self, buf: &mut Vec<PrefetchLifeEvent>) {
        if let Some(log) = &mut self.life_log {
            std::mem::swap(log, buf);
        }
    }

    /// Reconstructs the line address of the way at (`set`, tag) — the
    /// inverse of [`Cache::set_index`] / [`Cache::tag`], needed to name
    /// evicted lines in the lifetime log.
    fn line_of(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr::new(tag * self.n_sets + set as u64)
    }

    /// Records a [`PrefetchLifeEvent::FirstUse`] for `line` when a demand
    /// was satisfied by a level *above* this cache (the NSB) and never
    /// probed it. Touches only the lifetime log — LRU state and the
    /// aggregate statistics keep their level-local semantics — so the
    /// lifetime consumer sees the consumption a pure-L2 view would
    /// misread as an unused eviction later. Duplicate calls for the same
    /// line are harmless: the tracker ignores a `FirstUse` with no
    /// pending issue.
    pub fn log_external_use(&mut self, line: LineAddr, now: Cycle) {
        if self.life_log.is_none() {
            return;
        }
        if let Some(i) = self.find_way(line) {
            if self.flags[i] & (F_PREFETCH | F_DEMANDED) == F_PREFETCH {
                let late = self.fill_done[i] > now;
                if let Some(log) = &mut self.life_log {
                    log.push(PrefetchLifeEvent::FirstUse {
                        line,
                        at: now,
                        late,
                    });
                }
            }
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        if self.set_mask != u64::MAX {
            (line.index() & self.set_mask) as usize
        } else {
            (line.index() % self.n_sets) as usize
        }
    }

    #[inline]
    fn tag(&self, line: LineAddr) -> u64 {
        if self.set_mask != u64::MAX {
            line.index() >> self.set_shift
        } else {
            line.index() / self.n_sets
        }
    }

    /// SoA slot index of `line`'s way, if resident or in flight.
    #[inline]
    fn find_way(&self, line: LineAddr) -> Option<usize> {
        let base = self.set_index(line) * self.ways;
        let tag = self.tag(line);
        let tags = &self.tags[base..base + self.ways];
        let flags = &self.flags[base..base + self.ways];
        for w in 0..self.ways {
            if flags[w] & F_VALID != 0 && tags[w] == tag {
                return Some(base + w);
            }
        }
        None
    }

    /// Looks up `line` at cycle `now`. `is_demand` controls statistics and
    /// the `demanded` mark used for prefetch-usefulness accounting.
    pub fn probe(&mut self, line: LineAddr, now: Cycle, is_demand: bool) -> ProbeResult {
        let hit_latency = self.cfg.hit_latency;
        match self.find_way(line) {
            Some(i) => {
                self.last_use[i] = now;
                let filled = self.fill_done[i] <= now;
                let first_demand_of_prefetch =
                    is_demand && self.flags[i] & (F_PREFETCH | F_DEMANDED) == F_PREFETCH;
                if is_demand {
                    self.flags[i] |= F_DEMANDED;
                    // Each consumption spends one unit of predicted reuse, so
                    // a line whose forecast is exhausted becomes evictable
                    // again (no-op under LRU, where scores are always 0).
                    self.reuse[i] = self.reuse[i].saturating_sub(1);
                }
                if first_demand_of_prefetch {
                    if let Some(log) = &mut self.life_log {
                        log.push(PrefetchLifeEvent::FirstUse {
                            line,
                            at: now,
                            late: !filled,
                        });
                    }
                }
                if filled {
                    if is_demand {
                        self.stats.demand_hits.inc();
                        if first_demand_of_prefetch {
                            self.stats.prefetch_useful.inc();
                        }
                    }
                    ProbeResult::Hit {
                        ready_at: now + hit_latency,
                    }
                } else {
                    let ready_at = self.fill_done[i].max(now + hit_latency);
                    let fill_was_prefetch = self.flags[i] & F_PREFETCH != 0;
                    if is_demand {
                        self.stats.mshr_merges.inc();
                        if first_demand_of_prefetch {
                            self.stats.prefetch_useful.inc();
                            self.stats.prefetch_late.inc();
                        }
                    }
                    ProbeResult::InFlight {
                        ready_at,
                        fill_was_prefetch,
                    }
                }
            }
            None => {
                if is_demand {
                    self.stats.demand_misses.inc();
                }
                ProbeResult::Miss
            }
        }
    }

    /// Whether the line is resident or in flight, without disturbing LRU
    /// state or statistics. Used by prefetchers to test redundancy.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_way(line).is_some()
    }

    /// Cycle at which `line`'s data is (or becomes) available, if resident,
    /// without touching LRU state or statistics.
    #[must_use]
    pub fn ready_time(&self, line: LineAddr, now: Cycle) -> Option<Cycle> {
        self.find_way(line).map(|i| self.fill_done[i].max(now))
    }

    /// Number of MSHR entries still pending at `now`.
    #[must_use]
    pub fn mshr_pending(&self, now: Cycle) -> usize {
        self.inflight.len() - self.inflight.partition_point(|&c| c <= now)
    }

    /// Whether a new fill can be accepted at `now`.
    #[must_use]
    pub fn mshr_available(&self, now: Cycle) -> bool {
        self.mshr_pending(now) < self.cfg.mshr_entries
    }

    /// Earliest cycle at which an MSHR slot is free.
    ///
    /// Returns `now` when a slot is already free; otherwise the completion
    /// cycle of the soonest-finishing outstanding fill. The file is kept
    /// sorted, so this is an index into it — the pending suffix can run to
    /// thousands of entries under an out-of-order burst, where anything
    /// super-logarithmic per miss dominates the whole simulation.
    #[must_use]
    pub fn mshr_free_at(&self, now: Cycle) -> Cycle {
        let done = self.inflight.partition_point(|&c| c <= now);
        let pending = self.inflight.len() - done;
        if pending < self.cfg.mshr_entries {
            return now;
        }
        // The slot frees at the (pending - mshr_entries + 1)-th pending
        // completion — rank `pending - mshr_entries` (0-based) of the
        // ascending pending suffix.
        self.inflight[done + (pending - self.cfg.mshr_entries)]
    }

    /// Installs `line` with its data arriving at `fill_done`, allocating an
    /// MSHR entry and evicting the LRU way if needed.
    ///
    /// Prefetch fills (`from_prefetch`) do not occupy this cache's MSHR
    /// file — they are tracked by the dedicated speculative MSHR file of
    /// the hierarchy (§IV-G), so demand and speculation do not contend for
    /// miss-tracking slots.
    ///
    /// The caller is responsible for having checked [`Cache::mshr_available`]
    /// for demand fills.
    pub fn install(&mut self, line: LineAddr, fill_done: Cycle, from_prefetch: bool, now: Cycle) {
        self.install_inner(line, fill_done, from_prefetch, now, 0, 0);
    }

    /// [`Cache::install`] for a speculative fill whose DRAM channel queue
    /// delayed it by `queue_delay` cycles — the delay rides the lifetime
    /// log's `Issued` event so timeliness reports can attribute lateness
    /// to arbitration rather than prediction.
    pub fn install_speculative(
        &mut self,
        line: LineAddr,
        fill_done: Cycle,
        now: Cycle,
        queue_delay: Cycle,
    ) {
        self.install_inner(line, fill_done, true, now, queue_delay, 0);
    }

    /// [`Cache::install_speculative`] carrying a predicted-reuse score for
    /// [`RetentionPolicy::ScoredReuse`] victim selection. Returns whether
    /// the fill was accepted: a scored cache *shrinks* instead of evicting
    /// when every resident line's score is at least the incoming one, and
    /// the rejected fill never becomes resident (counted in
    /// `retention_rejected`). Always accepted under [`RetentionPolicy::Lru`].
    pub fn install_speculative_scored(
        &mut self,
        line: LineAddr,
        fill_done: Cycle,
        now: Cycle,
        queue_delay: Cycle,
        reuse: u32,
    ) -> bool {
        self.install_inner(line, fill_done, true, now, queue_delay, reuse)
    }

    /// Records an outstanding demand fill, dropping completed entries and
    /// keeping the file sorted. Timestamp-forwarded bursts append strictly
    /// later completions, so the common case is a pure push.
    fn note_inflight(&mut self, fill_done: Cycle, now: Cycle) {
        let done = self.inflight.partition_point(|&c| c <= now);
        if done > 0 {
            self.inflight.drain(..done);
        }
        match self.inflight.last() {
            Some(&last) if last > fill_done => {
                let pos = self.inflight.partition_point(|&c| c <= fill_done);
                self.inflight.insert(pos, fill_done);
            }
            _ => self.inflight.push(fill_done),
        }
    }

    fn install_inner(
        &mut self,
        line: LineAddr,
        fill_done: Cycle,
        from_prefetch: bool,
        now: Cycle,
        queue_delay: Cycle,
        reuse: u32,
    ) -> bool {
        let set = self.set_index(line);
        let tag = self.tag(line);
        if let Some(i) = self.find_way(line) {
            // Refill of a resident line (e.g. prefetch after demand raced in).
            self.fill_done[i] = self.fill_done[i].min(fill_done);
            self.last_use[i] = now;
            self.reuse[i] = self.reuse[i].max(reuse);
            if !from_prefetch {
                self.note_inflight(fill_done, now);
            }
            return true;
        }

        // Victim selection happens *before* any bookkeeping so a rejected
        // scored fill leaves the cache (MSHRs, lifetime log, stats other
        // than the rejection counter) untouched.
        let victim = match self.cfg.policy {
            RetentionPolicy::Lru => self.pick_victim(set, now),
            RetentionPolicy::ScoredReuse => match self.pick_victim_scored(set, now, reuse, true) {
                Ok(i) => i,
                Err(shrink) => {
                    self.stats.retention_rejected.inc();
                    // Age the weakest resident so a stream of rejections
                    // deterministically drains a stale hot set.
                    self.reuse[shrink] = self.reuse[shrink].saturating_sub(1);
                    return false;
                }
            },
            // Always admit; the shrink arm's "weakest resident" becomes
            // the victim instead of a rejection. No active-window
            // protection here: with rejection off the table, sparing
            // un-demanded speculative lines would only displace the
            // eviction onto demanded-hot residents — worse than letting
            // score order decide.
            RetentionPolicy::ScoredEvict => match self.pick_victim_scored(set, now, reuse, false) {
                Ok(i) | Err(i) => i,
            },
        };

        if !from_prefetch {
            self.note_inflight(fill_done, now);
        }
        if from_prefetch {
            if let Some(log) = &mut self.life_log {
                log.push(PrefetchLifeEvent::Issued {
                    line,
                    at: now,
                    fill_done,
                    queue_delay,
                });
            }
        }
        let victim_flags = self.flags[victim];
        let evicted_unused_line = (victim_flags & (F_VALID | F_PREFETCH | F_DEMANDED)
            == F_VALID | F_PREFETCH)
            .then(|| self.line_of(set, self.tags[victim]));
        if victim_flags & F_VALID != 0 {
            self.stats.evictions.inc();
            if victim_flags & (F_PREFETCH | F_DEMANDED) == F_PREFETCH {
                self.stats.prefetch_evicted_unused.inc();
            }
        }
        if let Some(evicted) = evicted_unused_line {
            if let Some(log) = &mut self.life_log {
                log.push(PrefetchLifeEvent::EvictedUnused {
                    line: evicted,
                    at: now,
                });
            }
        }
        self.tags[victim] = tag;
        self.fill_done[victim] = fill_done;
        self.last_use[victim] = now;
        self.reuse[victim] = reuse;
        self.flags[victim] = F_VALID | if from_prefetch { F_PREFETCH } else { 0 };
        true
    }

    /// LRU victim, preferring ways whose fill already completed so that
    /// in-flight fills are not silently clobbered. Returns a SoA slot
    /// index (`set * ways + way`).
    fn pick_victim(&self, set: usize, now: Cycle) -> usize {
        let base = set * self.ways;
        let mut filled_lru: Option<usize> = None;
        let mut any_lru: Option<usize> = None;
        for i in base..base + self.ways {
            if self.flags[i] & F_VALID == 0 {
                return i;
            }
            // First-minimum semantics: strictly-less keeps the earliest way
            // on ties, matching an LRU scan in way order.
            if self.fill_done[i] <= now
                && filled_lru.is_none_or(|b| self.last_use[i] < self.last_use[b])
            {
                filled_lru = Some(i);
            }
            if any_lru.is_none_or(|b| self.last_use[i] < self.last_use[b]) {
                any_lru = Some(i);
            }
        }
        // Every way is mid-fill (pathological): fall back to plain LRU.
        // nvr-lint: allow(panic/hot-loop) reason="CacheConfig::validate rejects ways == 0, so the scan above always selects a way"
        filled_lru.or(any_lru).expect("ways is non-empty")
    }

    /// Victim selection under [`RetentionPolicy::ScoredReuse`] — the
    /// buffets-style explicitly-managed fill/shrink decision:
    ///
    /// 1. an invalid way is always filled;
    /// 2. a filled way whose score is exhausted (`reuse == 0`) is evicted
    ///    LRU-first — identical to what [`RetentionPolicy::Lru`] would do,
    ///    which is why all-zero scores reproduce LRU bit for bit;
    /// 3. otherwise the weakest *evictable* resident (min score, LRU
    ///    tie-break) is evicted only if the incoming score strictly beats
    ///    it — else the fill is rejected (`Err` carries the weakest way so
    ///    the caller can age it). With `protect_active` (the shrink-capable
    ///    NSB), a speculative line that has not yet seen its demand and
    ///    still carries score is an **active-window line** — the runahead
    ///    thread only resolves targets inside the lookahead horizon, so its
    ///    demand is imminent — and never competes for eviction; letting a
    ///    freshly pinned hub clobber it converts a timely prefetch into a
    ///    demand miss. When every filled way is such a line the fill is
    ///    rejected and the weakest ages, so a set full of mispredicted
    ///    "imminent" lines drains deterministically.
    ///
    /// The all-mid-fill pathological case falls back to [`Cache::pick_victim`]'s
    /// plain-LRU behaviour. Returns SoA slot indices.
    fn pick_victim_scored(
        &self,
        set: usize,
        now: Cycle,
        incoming: u32,
        protect_active: bool,
    ) -> Result<usize, usize> {
        let base = set * self.ways;
        // Local set-sized slices: the scan runs once per install, and
        // bounds-check-free indexing measurably matters there.
        let flags = &self.flags[base..base + self.ways];
        let fill_done = &self.fill_done[base..base + self.ways];
        let reuse = &self.reuse[base..base + self.ways];
        let last_use = &self.last_use[base..base + self.ways];
        let mut exhausted_lru: Option<usize> = None;
        // First pass: an invalid way is taken on sight, and an exhausted
        // (reuse == 0) way preempts everything the second pass computes.
        // Both are the common steady-state outcomes, so the expensive
        // weakest-resident ranking below runs only when neither exists.
        for i in 0..self.ways {
            if flags[i] & F_VALID == 0 {
                return Ok(base + i);
            }
            if fill_done[i] > now {
                continue;
            }
            if reuse[i] == 0 && exhausted_lru.is_none_or(|b| last_use[i] < last_use[b]) {
                exhausted_lru = Some(i);
            }
        }
        if let Some(i) = exhausted_lru {
            return Ok(base + i);
        }
        let mut weakest_evictable: Option<usize> = None;
        let mut weakest_filled: Option<usize> = None;
        // Keys are (reuse, last_use) lexicographic with first-minimum
        // semantics, matching a min_by_key scan in way order.
        let weaker = |i: usize, b: usize| (reuse[i], last_use[i]) < (reuse[b], last_use[b]);
        for i in 0..self.ways {
            if fill_done[i] > now {
                continue;
            }
            let active_window =
                protect_active && flags[i] & (F_PREFETCH | F_DEMANDED) == F_PREFETCH;
            if !active_window && weakest_evictable.is_none_or(|b| weaker(i, b)) {
                weakest_evictable = Some(i);
            }
            if weakest_filled.is_none_or(|b| weaker(i, b)) {
                weakest_filled = Some(i);
            }
        }
        match weakest_evictable {
            Some(i) if incoming > reuse[i] => Ok(base + i),
            Some(i) => Err(base + i),
            None => match weakest_filled {
                Some(i) => Err(base + i),
                None => Ok(self.pick_victim(set, now)),
            },
        }
    }

    /// Raises a resident `line`'s predicted-reuse score to at least
    /// `reuse` — how a *redundant* scored prefetch keeps a hot line
    /// pinned: later runahead windows re-observe the line with a larger
    /// remaining-touch forecast, and without the refresh the score would
    /// only ever decay (one per demand hit) until the line became
    /// evictable mid-stream. A no-op under [`RetentionPolicy::Lru`]
    /// (scores must stay 0 for the LRU-equivalence invariant) and for
    /// absent or mid-fill-refilled lines.
    pub fn refresh_reuse(&mut self, line: LineAddr, reuse: u32) {
        if self.cfg.policy == RetentionPolicy::Lru {
            return;
        }
        if let Some(i) = self.find_way(line) {
            self.reuse[i] = self.reuse[i].max(reuse);
        }
    }

    /// Counts resident prefetched-but-never-demanded lines into the stats.
    ///
    /// Call once at the end of a simulation so that accuracy denominators
    /// include prefetches that were still resident (and unused) at the end.
    pub fn finalize_stats(&mut self) {
        let unused = self
            .flags
            .iter()
            .filter(|&&f| f & (F_VALID | F_PREFETCH | F_DEMANDED) == F_VALID | F_PREFETCH)
            .count() as u64;
        self.stats.prefetch_resident_unused.add(unused);
    }

    /// Record a prefetch acceptance in the stats (called by the hierarchy).
    pub(crate) fn note_prefetch_issued(&mut self) {
        self.stats.prefetch_issued.inc();
    }

    /// Record a redundant prefetch in the stats (called by the hierarchy).
    pub(crate) fn note_prefetch_redundant(&mut self) {
        self.stats.prefetch_redundant.inc();
    }

    /// Record a dropped prefetch in the stats (called by the hierarchy).
    pub(crate) fn note_prefetch_dropped(&mut self) {
        self.stats.prefetch_dropped.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KIB;

    fn tiny_cache(ways: u64, sets: u64) -> Cache {
        Cache::new(CacheConfig {
            name: "T",
            size_bytes: ways * sets * 64,
            ways,
            hit_latency: 4,
            mshr_entries: 2,
            policy: RetentionPolicy::Lru,
        })
    }

    fn tiny_scored(ways: u64, sets: u64) -> Cache {
        Cache::new(CacheConfig {
            name: "T",
            size_bytes: ways * sets * 64,
            ways,
            hit_latency: 4,
            mshr_entries: 2,
            policy: RetentionPolicy::ScoredReuse,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny_cache(2, 4);
        let line = LineAddr::new(0x10);
        assert_eq!(c.probe(line, 0, true), ProbeResult::Miss);
        c.install(line, 50, false, 0);
        match c.probe(line, 60, true) {
            ProbeResult::Hit { ready_at } => assert_eq!(ready_at, 64),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats().demand_hits.get(), 1);
        assert_eq!(c.stats().demand_misses.get(), 1);
    }

    #[test]
    fn inflight_merge_reports_fill_time() {
        let mut c = tiny_cache(2, 4);
        let line = LineAddr::new(0x10);
        c.probe(line, 0, true);
        c.install(line, 100, false, 0);
        match c.probe(line, 10, true) {
            ProbeResult::InFlight { ready_at, .. } => assert_eq!(ready_at, 100),
            other => panic!("expected in-flight, got {other:?}"),
        }
        assert_eq!(c.stats().mshr_merges.get(), 1);
    }

    #[test]
    fn prefetch_useful_accounting() {
        let mut c = tiny_cache(2, 4);
        let line = LineAddr::new(0x20);
        c.install(line, 10, true, 0);
        // First demand marks the prefetch useful, once.
        c.probe(line, 20, true);
        c.probe(line, 30, true);
        assert_eq!(c.stats().prefetch_useful.get(), 1);
        assert_eq!(c.stats().prefetch_late.get(), 0);
    }

    #[test]
    fn late_prefetch_counts_as_late_useful() {
        let mut c = tiny_cache(2, 4);
        let line = LineAddr::new(0x20);
        c.install(line, 100, true, 0);
        match c.probe(line, 10, true) {
            ProbeResult::InFlight {
                ready_at,
                fill_was_prefetch,
            } => {
                assert_eq!(ready_at, 100);
                assert!(fill_was_prefetch);
            }
            other => panic!("expected in-flight, got {other:?}"),
        }
        assert_eq!(c.stats().prefetch_useful.get(), 1);
        assert_eq!(c.stats().prefetch_late.get(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny_cache(2, 1); // one set, two ways
        let a = LineAddr::new(1);
        let b = LineAddr::new(2);
        let d = LineAddr::new(3);
        c.install(a, 0, false, 0);
        c.install(b, 0, false, 1);
        c.probe(a, 10, true); // a is now MRU
        c.install(d, 20, false, 11); // must evict b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
        assert_eq!(c.stats().evictions.get(), 1);
    }

    #[test]
    fn eviction_of_unused_prefetch_is_counted() {
        let mut c = tiny_cache(1, 1);
        c.install(LineAddr::new(1), 0, true, 0);
        c.install(LineAddr::new(2), 0, false, 1);
        assert_eq!(c.stats().prefetch_evicted_unused.get(), 1);
    }

    #[test]
    fn mshr_capacity_tracking() {
        let mut c = tiny_cache(4, 4); // mshr_entries = 2
        c.install(LineAddr::new(1), 100, false, 0);
        assert!(c.mshr_available(0));
        c.install(LineAddr::new(2), 120, false, 0);
        assert!(!c.mshr_available(0));
        assert_eq!(c.mshr_free_at(0), 100);
        // After the first fill lands, a slot frees.
        assert!(c.mshr_available(100));
        assert_eq!(c.mshr_free_at(100), 100);
    }

    #[test]
    fn mshr_slot_recycling() {
        let mut c = tiny_cache(4, 4);
        c.install(LineAddr::new(1), 10, false, 0);
        c.install(LineAddr::new(2), 20, false, 0);
        // Both done by cycle 30; new installs reuse slots rather than grow.
        c.install(LineAddr::new(3), 40, false, 30);
        c.install(LineAddr::new(4), 50, false, 30);
        assert_eq!(c.mshr_pending(30), 2);
        assert!(c.inflight.len() <= 2, "slots must be recycled");
    }

    #[test]
    fn mshr_free_at_selects_pending_rank_beyond_capacity() {
        // The inflight file can transiently exceed mshr_entries when a
        // stalled demand installs at `now` with a future issue slot; the
        // freeing rank is then the (pending - entries + 1)-th completion.
        let mut c = tiny_cache(4, 4); // mshr_entries = 2
        c.install(LineAddr::new(1), 100, false, 0);
        c.install(LineAddr::new(2), 120, false, 0);
        c.install(LineAddr::new(3), 110, false, 0); // grows the file to 3
        assert_eq!(c.mshr_pending(0), 3);
        // Ranks at 100, 110, 120: with 2 entries, a slot frees at the
        // 2nd-smallest pending completion.
        assert_eq!(c.mshr_free_at(0), 110);
        assert_eq!(c.mshr_free_at(105), 110);
        assert_eq!(c.mshr_free_at(110), 110);
    }

    #[test]
    fn finalize_counts_resident_unused_prefetches() {
        let mut c = tiny_cache(2, 2);
        c.install(LineAddr::new(1), 0, true, 0);
        c.install(LineAddr::new(2), 0, true, 0);
        c.probe(LineAddr::new(1), 5, true);
        c.finalize_stats();
        assert_eq!(c.stats().prefetch_resident_unused.get(), 1);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(CacheConfig::l2_default().with_size(16 * KIB));
        let sets = c.config().sets();
        // Lines mapping to different sets never evict each other.
        for i in 0..sets {
            c.install(LineAddr::new(i), 0, false, 0);
        }
        for i in 0..sets {
            assert!(c.contains(LineAddr::new(i)));
        }
        assert_eq!(c.stats().evictions.get(), 0);
    }

    #[test]
    fn non_power_of_two_set_count_uses_division_path() {
        // 3 sets: the mask/shift fast path must not engage.
        let mut c = tiny_cache(2, 3);
        assert_eq!(c.config().sets(), 3);
        for i in 0..6u64 {
            c.install(LineAddr::new(i), 0, false, 0);
        }
        for i in 0..6u64 {
            assert!(c.contains(LineAddr::new(i)), "line {i}");
        }
        assert_eq!(c.stats().evictions.get(), 0);
    }

    #[test]
    fn scored_rejects_fill_that_does_not_beat_residents() {
        let mut c = tiny_scored(1, 1);
        let hot = LineAddr::new(1);
        assert!(c.install_speculative_scored(hot, 0, 0, 0, 3));
        // Equal score does not displace the resident: reject + shrink.
        assert!(!c.install_speculative_scored(LineAddr::new(2), 0, 1, 0, 3));
        assert!(c.contains(hot));
        assert!(!c.contains(LineAddr::new(2)));
        assert_eq!(c.stats().retention_rejected.get(), 1);
        // The rejected fill never entered the lifetime accounting.
        assert_eq!(c.stats().evictions.get(), 0);
    }

    #[test]
    fn scored_evicts_strictly_weaker_resident() {
        let mut c = tiny_scored(1, 1);
        c.install_speculative_scored(LineAddr::new(1), 0, 0, 0, 2);
        // Spend the resident's active-window protection: once demanded it
        // competes on score alone (2 -> 1 after the hit).
        c.probe(LineAddr::new(1), 5, true);
        assert!(c.install_speculative_scored(LineAddr::new(2), 0, 6, 0, 5));
        assert!(!c.contains(LineAddr::new(1)));
        assert!(c.contains(LineAddr::new(2)));
        assert_eq!(c.stats().retention_rejected.get(), 0);
    }

    #[test]
    fn scored_never_evicts_undemanded_speculative_resident() {
        // An active-window line — speculative, not yet demanded, score
        // remaining — is rejected against rather than evicted, no matter
        // how strong the incoming fill is.
        let mut c = tiny_scored(1, 1);
        c.install_speculative_scored(LineAddr::new(1), 0, 0, 0, 1);
        assert!(!c.install_speculative_scored(LineAddr::new(2), 0, 1, 0, 100));
        assert!(c.contains(LineAddr::new(1)));
        assert_eq!(c.stats().retention_rejected.get(), 1);
    }

    #[test]
    fn rejections_age_the_weakest_resident_until_it_drains() {
        let mut c = tiny_scored(1, 1);
        c.install_speculative_scored(LineAddr::new(1), 0, 0, 0, 2);
        let probe = LineAddr::new(2);
        // Two rejections age the resident 2 -> 1 -> 0; the third fill then
        // takes the exhausted-score LRU path and lands.
        assert!(!c.install_speculative_scored(probe, 0, 1, 0, 0));
        assert!(!c.install_speculative_scored(probe, 0, 2, 0, 0));
        assert!(c.install_speculative_scored(probe, 0, 3, 0, 0));
        assert!(c.contains(probe));
        assert_eq!(c.stats().retention_rejected.get(), 2);
    }

    #[test]
    fn demand_hits_decay_the_score() {
        let mut c = tiny_scored(1, 1);
        c.install_speculative_scored(LineAddr::new(1), 0, 0, 0, 2);
        // Each demand touch spends one predicted use.
        c.probe(LineAddr::new(1), 5, true);
        c.probe(LineAddr::new(1), 6, true);
        // Score exhausted: a zero-score fill now evicts it LRU-style.
        assert!(c.install_speculative_scored(LineAddr::new(2), 0, 7, 0, 0));
        assert!(c.contains(LineAddr::new(2)));
        assert_eq!(c.stats().retention_rejected.get(), 0);
    }

    #[test]
    fn scored_with_zero_scores_matches_lru_bit_for_bit() {
        // Same operation sequence against both policies; with all scores
        // zero the scored cache must reproduce LRU exactly.
        let mut lru = tiny_cache(2, 1);
        let mut scored = tiny_scored(2, 1);
        for c in [&mut lru, &mut scored] {
            c.install(LineAddr::new(1), 0, false, 0);
            c.install(LineAddr::new(2), 5, true, 1);
            c.probe(LineAddr::new(1), 10, true);
            c.install(LineAddr::new(3), 20, false, 11); // evicts 2
            c.probe(LineAddr::new(2), 30, true); // miss
            c.finalize_stats();
        }
        for line in [1u64, 2, 3] {
            assert_eq!(
                lru.contains(LineAddr::new(line)),
                scored.contains(LineAddr::new(line))
            );
        }
        let (mut a, mut b) = (lru.stats().clone(), scored.stats().clone());
        a.name = "X";
        b.name = "X";
        assert_eq!(a, b);
    }

    #[test]
    fn scored_never_clobbers_midfill_line_when_filled_victim_exists() {
        let mut c = tiny_scored(2, 1);
        c.install_speculative_scored(LineAddr::new(1), 100, 0, 0, 4); // mid-fill until 100
        c.install_speculative_scored(LineAddr::new(2), 0, 1, 0, 0); // filled, score 0
                                                                    // Incoming fill must pick the exhausted filled way, not the
                                                                    // high-score in-flight one.
        assert!(c.install_speculative_scored(LineAddr::new(3), 0, 10, 0, 1));
        assert!(c.contains(LineAddr::new(1)));
        assert!(!c.contains(LineAddr::new(2)));
    }

    #[test]
    fn contains_does_not_touch_stats() {
        let mut c = tiny_cache(2, 2);
        c.install(LineAddr::new(7), 0, false, 0);
        let before = c.stats().clone();
        assert!(c.contains(LineAddr::new(7)));
        assert!(!c.contains(LineAddr::new(9)));
        assert_eq!(&before, c.stats());
    }

    #[test]
    fn swap_life_events_recycles_buffers() {
        let mut c = tiny_cache(2, 2);
        c.enable_life_log();
        c.install(LineAddr::new(1), 10, true, 0);
        let mut buf = Vec::new();
        c.swap_life_events(&mut buf);
        assert_eq!(buf.len(), 1, "issued event drained");
        buf.clear();
        c.swap_life_events(&mut buf);
        assert!(buf.is_empty(), "second drain is empty");
        // Without the log enabled the swap is a no-op.
        let mut off = tiny_cache(2, 2);
        let mut keep = vec![PrefetchLifeEvent::EvictedUnused {
            line: LineAddr::new(9),
            at: 1,
        }];
        off.swap_life_events(&mut keep);
        assert_eq!(keep.len(), 1);
    }
}
