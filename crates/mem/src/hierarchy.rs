//! The composed memory system: optional NSB → shared L2 → DRAM.

use nvr_common::{Cycle, LineAddr, Region};

use crate::cache::{Cache, ProbeResult};
use crate::config::MemoryConfig;
use crate::dram::{ChannelPrefetch, DramBackend};
use crate::stats::MemoryStats;

/// Classification of a demand access, for statistics and latency breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in the NSB (only with an NSB configured).
    NsbHit,
    /// Hit in the L2.
    L2Hit,
    /// Merged into an outstanding fill at some level.
    InFlight,
    /// Missed everywhere; fetched from DRAM.
    Miss,
}

/// Completion information for a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the data is usable by the NPU.
    pub ready_at: Cycle,
    /// What happened in the hierarchy.
    pub outcome: AccessOutcome,
}

/// Disposition of a prefetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// Accepted; the fill completes at the given cycle.
    Issued {
        /// Fill-completion cycle.
        fill_done: Cycle,
    },
    /// The line was already resident or in flight.
    Redundant,
    /// Dropped: no MSHR was available.
    Dropped,
}

/// The full simulated memory system.
///
/// Construct with [`MemorySystem::new`] for timing-accurate runs or
/// [`MemorySystem::ideal`] for all-hit baseline runs (used to split wall
/// clock into base-execution and miss-stall segments as in Fig. 5).
///
/// # Examples
///
/// ```
/// use nvr_mem::{AccessOutcome, MemoryConfig, MemorySystem};
/// use nvr_common::LineAddr;
///
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let r = mem.demand_line(LineAddr::new(7), 0);
/// assert_eq!(r.outcome, AccessOutcome::Miss);
/// let r2 = mem.demand_line(LineAddr::new(7), r.ready_at + 1);
/// assert_eq!(r2.outcome, AccessOutcome::L2Hit);
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemoryConfig,
    nsb: Option<Cache>,
    l2: Cache,
    dram: DramBackend,
    /// Outstanding speculative fills (the dedicated prefetch MSHR file),
    /// kept in ascending completion order so occupancy queries are a
    /// binary search rather than a scan.
    pf_inflight: Vec<Cycle>,
    ideal: bool,
}

impl MemorySystem {
    /// Builds the hierarchy described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MemoryConfig::validate`].
    #[must_use]
    pub fn new(cfg: MemoryConfig) -> Self {
        // nvr-lint: allow(panic/hot-loop) reason="init-time config validation in the constructor, outside the tick loop"
        cfg.validate().expect("memory config must be valid");
        MemorySystem {
            nsb: cfg.nsb.clone().map(Cache::new),
            l2: Cache::new(cfg.l2.clone()),
            dram: DramBackend::new(cfg.dram.clone()),
            pf_inflight: Vec::with_capacity(cfg.prefetch_mshrs),
            ideal: false,
            cfg,
        }
    }

    /// Builds an *ideal* hierarchy: every demand access completes at the
    /// minimum hit latency and prefetches are no-ops. Used to measure the
    /// NPU base execution time.
    #[must_use]
    pub fn ideal(cfg: MemoryConfig) -> Self {
        let mut sys = MemorySystem::new(cfg);
        sys.ideal = true;
        sys
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// Whether an NSB level is present.
    #[must_use]
    pub fn has_nsb(&self) -> bool {
        self.nsb.is_some()
    }

    /// Direct access to the DRAM backend (for utilisation queries).
    #[must_use]
    pub fn dram(&self) -> &DramBackend {
        &self.dram
    }

    /// Whether `line`'s DRAM channel can accept another speculative fill
    /// at `now` — the per-channel occupancy signal queue-aware issuers
    /// (the VIGU) pace on instead of letting requests reach a full queue
    /// and drop. Always true for ideal memory.
    #[must_use]
    pub fn prefetch_channel_ready(&self, line: LineAddr, now: Cycle) -> bool {
        self.ideal || self.dram.prefetch_ready(line, now)
    }

    /// The DRAM channel that carries `line`'s fills. Issue loops use this
    /// to memoise [`MemorySystem::prefetch_channel_ready`] per channel
    /// instead of re-walking the same channel queue for every queued line.
    #[must_use]
    pub fn channel_of(&self, line: LineAddr) -> usize {
        self.dram.channel_of(line)
    }

    /// Number of independent DRAM channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.cfg.dram.channels
    }

    /// A demand load of one cache line at cycle `now`.
    pub fn demand_line(&mut self, line: LineAddr, now: Cycle) -> AccessResult {
        if self.ideal {
            return AccessResult {
                ready_at: now + self.cfg.min_demand_latency(),
                outcome: if self.nsb.is_some() {
                    AccessOutcome::NsbHit
                } else {
                    AccessOutcome::L2Hit
                },
            };
        }
        match &mut self.nsb {
            Some(nsb) => match nsb.probe(line, now, true) {
                ProbeResult::Hit { ready_at } => {
                    // The demand never reaches the L2, but the lifetime
                    // log lives there: record the consumption so the
                    // prefetched L2 copy is not misread as unused.
                    self.l2.log_external_use(line, now);
                    AccessResult {
                        ready_at,
                        outcome: AccessOutcome::NsbHit,
                    }
                }
                ProbeResult::InFlight { ready_at, .. } => {
                    self.l2.log_external_use(line, now);
                    AccessResult {
                        ready_at,
                        outcome: AccessOutcome::InFlight,
                    }
                }
                ProbeResult::Miss => {
                    // NSB lookup cost precedes the L2 access.
                    // nvr-lint: allow(panic/hot-loop) reason="this arm only runs when the hierarchy was built with an NSB, so the config is present"
                    let t_l2 = now + self.cfg.nsb.as_ref().expect("nsb cfg").hit_latency;
                    let (result, fill_done) =
                        Self::l2_demand(&mut self.l2, &mut self.dram, line, t_l2);
                    // Fill the NSB alongside so subsequent touches hit near
                    // the NPU (demand fills allocate in both levels).
                    // nvr-lint: allow(panic/hot-loop) reason="same NSB-present invariant as the probe that produced this ProbeResult::Miss"
                    let nsb = self.nsb.as_mut().expect("nsb present");
                    if nsb.mshr_available(now) {
                        nsb.install(line, fill_done, false, now);
                    }
                    result
                }
            },
            None => Self::l2_demand(&mut self.l2, &mut self.dram, line, now).0,
        }
    }

    /// L2-level demand handling shared by both the NSB and no-NSB paths.
    /// Returns the access result and the cycle the line's data is available
    /// (for propagating fills upward).
    fn l2_demand(
        l2: &mut Cache,
        dram: &mut DramBackend,
        line: LineAddr,
        now: Cycle,
    ) -> (AccessResult, Cycle) {
        match l2.probe(line, now, true) {
            ProbeResult::Hit { ready_at } => (
                AccessResult {
                    ready_at,
                    outcome: AccessOutcome::L2Hit,
                },
                ready_at,
            ),
            ProbeResult::InFlight { ready_at, .. } => (
                AccessResult {
                    ready_at,
                    outcome: AccessOutcome::InFlight,
                },
                ready_at,
            ),
            ProbeResult::Miss => {
                // A full MSHR file stalls the demand until a slot frees.
                let issue_at = l2.mshr_free_at(now);
                let fill_done = dram.demand_fetch(line, issue_at);
                l2.install(line, fill_done, false, now);
                (
                    AccessResult {
                        ready_at: fill_done,
                        outcome: AccessOutcome::Miss,
                    },
                    fill_done,
                )
            }
        }
    }

    /// A demand load covering every line of `region`; returns the cycle by
    /// which *all* lines are usable (vector-batch semantics, §II-B).
    pub fn demand_region(&mut self, region: Region, now: Cycle) -> Cycle {
        let mut ready = now + self.cfg.min_demand_latency();
        for line in region.lines() {
            ready = ready.max(self.demand_line(line, now).ready_at);
        }
        ready
    }

    /// A prefetch of one line at cycle `now`.
    ///
    /// Prefetches always fill the L2; with `fill_nsb` set (the NVR
    /// configuration of §IV-G) the line is additionally installed in the
    /// NSB so actual loads complete at NSB latency.
    pub fn prefetch_line(&mut self, line: LineAddr, now: Cycle, fill_nsb: bool) -> PrefetchOutcome {
        self.prefetch_line_scored(line, now, fill_nsb, 0, 0)
    }

    /// [`MemorySystem::prefetch_line`] carrying per-level predicted-reuse
    /// scores for scored victim selection at whichever levels run it. The
    /// levels see *different* scores because their stakes differ: the
    /// NSB-side install competes on `nsb_reuse` and may be rejected
    /// (shrink) instead of evicting a hotter resident — its caller floors
    /// below-threshold lines at 1 so the stream still fills the buffer —
    /// while the L2 receives the unfloored `reuse`, keeping
    /// below-threshold speculative lines rank-equal with demand-allocated
    /// ways (score 0) instead of letting a blanket floor crowd every
    /// demand line out of a [`crate::RetentionPolicy::ScoredEvict`] L2. A
    /// redundant prefetch *refreshes* the resident copy's decayed score
    /// so lines every runahead window keeps re-observing stay pinned
    /// across the run.
    pub fn prefetch_line_scored(
        &mut self,
        line: LineAddr,
        now: Cycle,
        fill_nsb: bool,
        reuse: u32,
        nsb_reuse: u32,
    ) -> PrefetchOutcome {
        if self.ideal {
            return PrefetchOutcome::Redundant;
        }
        let l2_has = self.l2.contains(line);
        if l2_has {
            self.l2.note_prefetch_redundant();
            self.l2.refresh_reuse(line, reuse);
            // The data is (or will be) on-chip; optionally pull it into the
            // NSB so the NPU-side latency drops too.
            if fill_nsb {
                if let Some(nsb) = &mut self.nsb {
                    if nsb.contains(line) {
                        nsb.refresh_reuse(line, nsb_reuse);
                    } else if nsb.mshr_available(now) {
                        if let Some(ready) = self.l2.ready_time(line, now) {
                            if nsb.install_speculative_scored(line, ready, now, 0, nsb_reuse) {
                                nsb.note_prefetch_issued();
                                return PrefetchOutcome::Issued { fill_done: ready };
                            }
                        }
                    }
                }
            }
            return PrefetchOutcome::Redundant;
        }
        if self.prefetch_slots(now) == 0 {
            self.l2.note_prefetch_dropped();
            return PrefetchOutcome::Dropped;
        }
        // Channel-level arbitration: a full per-channel request queue
        // rejects the speculative fill (demands are never gated here —
        // they preempt the queue inside the backend).
        let (fill_done, queue_delay) = match self.dram.prefetch_fetch(line, now) {
            ChannelPrefetch::Scheduled {
                fill_done,
                queue_delay,
            } => (fill_done, queue_delay),
            ChannelPrefetch::QueueFull => {
                self.l2.note_prefetch_dropped();
                return PrefetchOutcome::Dropped;
            }
        };
        self.track_prefetch(fill_done, now);
        // A scored L2 may shrink (reject the fill) to keep a hotter
        // resident; the DRAM fetch is already in flight either way, so
        // the issue is counted against the level regardless and the
        // rejection shows up in `retention_rejected`.
        self.l2
            .install_speculative_scored(line, fill_done, now, queue_delay, reuse);
        self.l2.note_prefetch_issued();
        if fill_nsb {
            if let Some(nsb) = &mut self.nsb {
                if nsb.mshr_available(now)
                    && nsb.install_speculative_scored(line, fill_done, now, 0, nsb_reuse)
                {
                    nsb.note_prefetch_issued();
                }
            }
        }
        PrefetchOutcome::Issued { fill_done }
    }

    /// Streams dense DMA read traffic (scratchpad fills) over the channel;
    /// returns the completion cycle. Bypasses the caches, as Gemmini's
    /// explicit scratchpad preloads do.
    pub fn dma_read_bytes(&mut self, now: Cycle, bytes: u64) -> Cycle {
        if self.ideal {
            return now;
        }
        self.dram.read_stream(now, bytes)
    }

    /// Streams store traffic (output activations) over the off-chip channel.
    /// Returns the drain cycle; the NPU write buffer absorbs the latency.
    pub fn store_bytes(&mut self, now: Cycle, bytes: u64) -> Cycle {
        if self.ideal {
            return now;
        }
        self.dram.write_bytes(now, bytes)
    }

    /// Whether the speculative MSHR file can accept another prefetch at
    /// `now`. Prefetchers with request queues use this as backpressure
    /// instead of letting requests drop.
    #[must_use]
    pub fn prefetch_ready(&self, now: Cycle) -> bool {
        self.prefetch_slots(now) > 0
    }

    /// Free entries of the speculative MSHR file at `now`. Vectorised
    /// prefetchers cap their per-cycle issue width with this so a full
    /// file back-pressures instead of dropping elements.
    #[must_use]
    pub fn prefetch_slots(&self, now: Cycle) -> usize {
        let pending = self.pf_inflight.len() - self.pf_inflight.partition_point(|&c| c <= now);
        self.cfg.prefetch_mshrs.saturating_sub(pending)
    }

    /// Records a speculative fill in the prefetch MSHR file, pruning
    /// completed entries and keeping the file sorted (fills land in
    /// near-monotone order, so the common case is a plain push).
    fn track_prefetch(&mut self, fill_done: Cycle, now: Cycle) {
        let done = self.pf_inflight.partition_point(|&c| c <= now);
        if done > 0 {
            self.pf_inflight.drain(..done);
        }
        match self.pf_inflight.last() {
            Some(&last) if last > fill_done => {
                let pos = self.pf_inflight.partition_point(|&c| c <= fill_done);
                self.pf_inflight.insert(pos, fill_done);
            }
            _ => self.pf_inflight.push(fill_done),
        }
    }

    /// Starts recording per-prefetch lifetime events at the L2 (the level
    /// NVR fills): issue, fill, first demand use, and unused eviction. Off
    /// by default — non-runahead prefetchers never pay for it. Idempotent;
    /// the consumer must drain with
    /// [`MemorySystem::take_prefetch_life_events`] regularly or the log
    /// grows for the rest of the run.
    pub fn enable_prefetch_life_log(&mut self) {
        self.l2.enable_life_log();
    }

    /// Drains the L2's recorded [`crate::cache::PrefetchLifeEvent`]s in
    /// occurrence order. Empty when the log was never enabled.
    pub fn take_prefetch_life_events(&mut self) -> Vec<crate::cache::PrefetchLifeEvent> {
        self.l2.take_life_events()
    }

    /// Exchanges the L2's recorded lifetime events with the caller's
    /// (cleared) buffer — the allocation-free form of
    /// [`MemorySystem::take_prefetch_life_events`] for per-advance drains.
    pub fn swap_prefetch_life_events(&mut self, buf: &mut Vec<crate::cache::PrefetchLifeEvent>) {
        self.l2.swap_life_events(buf);
    }

    /// Earliest cycle strictly after `now` at which the prefetch path can
    /// change state on its own: a speculative fill completes (freeing a
    /// slot of the dedicated MSHR file) or a queued channel request
    /// reaches the bus (easing per-channel back-pressure). `None` when
    /// nothing speculative is in motion. Event-driven issuers use this to
    /// skip dead cycles: between `now` and the returned cycle, an issue
    /// attempt that found no free slot or a full channel would keep
    /// finding the same thing.
    #[must_use]
    pub fn next_prefetch_wakeup(&self, now: Cycle) -> Option<Cycle> {
        let pending = self.pf_inflight.partition_point(|&c| c <= now);
        let mshr = self.pf_inflight.get(pending).copied();
        let queue = self.dram.next_pf_queue_start(now);
        match (mshr, queue) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Cycle at which `line`'s data becomes readable on chip, if resident
    /// or in flight at any level. Runahead threads use this to wait
    /// honestly on lines another prefetch already set in motion.
    #[must_use]
    pub fn line_ready_time(&self, line: LineAddr, now: Cycle) -> Option<Cycle> {
        let l2 = self.l2.ready_time(line, now);
        let nsb = self.nsb.as_ref().and_then(|n| n.ready_time(line, now));
        match (nsb, l2) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Whether `line` is resident (or in flight) at the level closest to
    /// the NPU — used by prefetchers for redundancy filtering.
    #[must_use]
    pub fn npu_side_contains(&self, line: LineAddr) -> bool {
        match &self.nsb {
            Some(nsb) => nsb.contains(line) || self.l2.contains(line),
            None => self.l2.contains(line),
        }
    }

    /// Snapshot of all statistics. Call [`MemorySystem::finalize`] first at
    /// end of run so resident-unused prefetches are accounted.
    #[must_use]
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            nsb: self.nsb.as_ref().map(|c| c.stats().clone()),
            l2: self.l2.stats().clone(),
            dram: self.dram.stats().clone(),
        }
    }

    /// Folds end-of-run state (resident unused prefetches) into the stats.
    pub fn finalize(&mut self) {
        if let Some(nsb) = &mut self.nsb {
            nsb.finalize_stats();
        }
        self.l2.finalize_stats();
    }

    /// Combined prefetch accuracy across levels: useful / (useful + unused).
    ///
    /// With an NSB the NPU's demands are satisfied there, so usefulness is
    /// observed wherever the demand first touches the prefetched line.
    #[must_use]
    pub fn prefetch_accuracy(&self) -> f64 {
        let mut useful = self.l2.stats().prefetch_useful.get();
        let mut unused = self.l2.stats().prefetch_evicted_unused.get()
            + self.l2.stats().prefetch_resident_unused.get();
        if let Some(nsb) = &self.nsb {
            useful += nsb.stats().prefetch_useful.get();
            unused += nsb.stats().prefetch_evicted_unused.get()
                + nsb.stats().prefetch_resident_unused.get();
        }
        if useful + unused == 0 {
            0.0
        } else {
            useful as f64 / (useful + unused) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, DramConfig};

    fn cfg_with_nsb() -> MemoryConfig {
        MemoryConfig::default().with_nsb(CacheConfig::nsb_default())
    }

    #[test]
    fn cold_miss_pays_dram_latency() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let r = mem.demand_line(LineAddr::new(1), 0);
        assert_eq!(r.outcome, AccessOutcome::Miss);
        let dram = DramConfig::default();
        assert_eq!(r.ready_at, dram.latency + dram.line_transfer_cycles());
    }

    #[test]
    fn l2_hit_after_fill() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let r = mem.demand_line(LineAddr::new(1), 0);
        let r2 = mem.demand_line(LineAddr::new(1), r.ready_at);
        assert_eq!(r2.outcome, AccessOutcome::L2Hit);
        assert_eq!(r2.ready_at, r.ready_at + 20);
    }

    #[test]
    fn nsb_hit_is_cheapest() {
        let mut mem = MemorySystem::new(cfg_with_nsb());
        let r = mem.demand_line(LineAddr::new(1), 0);
        assert_eq!(r.outcome, AccessOutcome::Miss);
        let r2 = mem.demand_line(LineAddr::new(1), r.ready_at);
        assert_eq!(r2.outcome, AccessOutcome::NsbHit);
        assert_eq!(r2.ready_at, r.ready_at + 2);
    }

    #[test]
    fn prefetch_converts_miss_to_hit() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let line = LineAddr::new(42);
        let pf = mem.prefetch_line(line, 0, false);
        let fill = match pf {
            PrefetchOutcome::Issued { fill_done } => fill_done,
            other => panic!("expected issue, got {other:?}"),
        };
        let r = mem.demand_line(line, fill + 1);
        assert_eq!(r.outcome, AccessOutcome::L2Hit);
        let s = mem.stats();
        assert_eq!(s.l2.prefetch_useful.get(), 1);
        assert_eq!(s.dram.prefetch_lines.get(), 1);
        assert_eq!(s.dram.demand_lines.get(), 0);
    }

    #[test]
    fn late_prefetch_still_helps() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let line = LineAddr::new(42);
        let fill = match mem.prefetch_line(line, 0, false) {
            PrefetchOutcome::Issued { fill_done } => fill_done,
            other => panic!("expected issue, got {other:?}"),
        };
        // Demand arrives mid-fill: merges, waits only the residual time.
        let r = mem.demand_line(line, fill / 2);
        assert_eq!(r.outcome, AccessOutcome::InFlight);
        assert_eq!(r.ready_at, fill);
        assert_eq!(mem.stats().l2.prefetch_late.get(), 1);
    }

    #[test]
    fn redundant_prefetch_is_cheap() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let line = LineAddr::new(9);
        mem.demand_line(line, 0);
        let pf = mem.prefetch_line(line, 5, false);
        assert_eq!(pf, PrefetchOutcome::Redundant);
        assert_eq!(mem.stats().l2.prefetch_redundant.get(), 1);
        assert_eq!(mem.stats().dram.prefetch_lines.get(), 0);
    }

    #[test]
    fn prefetch_into_nsb_from_l2() {
        let mut mem = MemorySystem::new(cfg_with_nsb());
        let line = LineAddr::new(9);
        // Line reaches L2 via a demand; NSB also fills on the demand path,
        // so use a different line for the NSB-promotion test.
        let pf = mem.prefetch_line(line, 0, true);
        assert!(matches!(pf, PrefetchOutcome::Issued { .. }));
        let s = mem.stats();
        assert_eq!(s.l2.prefetch_issued.get(), 1);
        assert_eq!(s.nsb.as_ref().expect("nsb").prefetch_issued.get(), 1);
    }

    #[test]
    fn prefetch_dropped_when_mshrs_full() {
        let small_mshr = MemoryConfig {
            prefetch_mshrs: 2,
            ..MemoryConfig::default()
        };
        let mut mem = MemorySystem::new(small_mshr);
        assert!(matches!(
            mem.prefetch_line(LineAddr::new(1), 0, false),
            PrefetchOutcome::Issued { .. }
        ));
        assert!(matches!(
            mem.prefetch_line(LineAddr::new(2), 0, false),
            PrefetchOutcome::Issued { .. }
        ));
        assert_eq!(
            mem.prefetch_line(LineAddr::new(3), 0, false),
            PrefetchOutcome::Dropped
        );
        assert_eq!(mem.stats().l2.prefetch_dropped.get(), 1);
    }

    #[test]
    fn prefetch_dropped_when_channel_queue_full() {
        let cfg = MemoryConfig {
            prefetch_mshrs: 64, // MSHRs never the bottleneck here
            dram: DramConfig {
                queue_depth: 2,
                ..DramConfig::default()
            },
            ..MemoryConfig::default()
        };
        let mut mem = MemorySystem::new(cfg);
        // One on the bus + two queued fill the channel's queue.
        for i in 1..=3u64 {
            assert!(matches!(
                mem.prefetch_line(LineAddr::new(i), 0, false),
                PrefetchOutcome::Issued { .. }
            ));
        }
        assert!(!mem.prefetch_channel_ready(LineAddr::new(4), 0));
        assert_eq!(
            mem.prefetch_line(LineAddr::new(4), 0, false),
            PrefetchOutcome::Dropped
        );
        assert_eq!(mem.stats().l2.prefetch_dropped.get(), 1);
        assert_eq!(mem.stats().dram.pf_queue_rejected.get(), 1);
        // A demand still gets served ahead of the speculative backlog.
        let r = mem.demand_line(LineAddr::new(5), 0);
        let dram = DramConfig::default();
        assert_eq!(
            r.ready_at,
            dram.line_transfer_cycles() + dram.latency + dram.line_transfer_cycles()
        );
    }

    #[test]
    fn two_channels_overlap_disjoint_misses() {
        let cfg = MemoryConfig {
            dram: DramConfig::default().with_channels(2),
            ..MemoryConfig::default()
        };
        let mut mem = MemorySystem::new(cfg);
        // Adjacent lines stripe onto different channels: both cold misses
        // complete as if each channel were alone.
        let a = mem.demand_line(LineAddr::new(0), 0);
        let b = mem.demand_line(LineAddr::new(1), 0);
        assert_eq!(a.ready_at, b.ready_at);
        let s = mem.stats();
        assert_eq!(s.dram.channels.len(), 2);
        assert_eq!(s.dram.channels[0].demand_lines.get(), 1);
        assert_eq!(s.dram.channels[1].demand_lines.get(), 1);
    }

    #[test]
    fn demand_stalls_when_mshrs_full() {
        let small_mshr = MemoryConfig::default().with_l2(CacheConfig {
            mshr_entries: 1,
            ..CacheConfig::l2_default()
        });
        let mut mem = MemorySystem::new(small_mshr);
        let a = mem.demand_line(LineAddr::new(1), 0);
        let b = mem.demand_line(LineAddr::new(2), 0);
        // Second demand waits for the first fill's MSHR slot.
        assert!(b.ready_at > a.ready_at);
    }

    #[test]
    fn ideal_memory_always_hits() {
        let mut mem = MemorySystem::ideal(MemoryConfig::default());
        for i in 0..100 {
            let r = mem.demand_line(LineAddr::new(i * 1000), i);
            assert_eq!(r.ready_at, i + 20);
        }
        assert_eq!(mem.stats().dram.demand_lines.get(), 0);
    }

    #[test]
    fn demand_region_batch_semantics() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let region = Region::new(nvr_common::Addr::new(0), 64 * 8);
        let ready = mem.demand_region(region, 0);
        // Eight lines pipeline through DRAM; completion is the last one.
        let dram = DramConfig::default();
        assert_eq!(ready, dram.latency + 8 * dram.line_transfer_cycles());
    }

    #[test]
    fn accuracy_combines_levels() {
        let mut mem = MemorySystem::new(cfg_with_nsb());
        let line = LineAddr::new(11);
        let fill = match mem.prefetch_line(line, 0, true) {
            PrefetchOutcome::Issued { fill_done } => fill_done,
            other => panic!("{other:?}"),
        };
        mem.demand_line(line, fill + 1); // NSB hit marks usefulness there
        mem.prefetch_line(LineAddr::new(12), 0, true); // never used
        mem.finalize();
        let acc = mem.prefetch_accuracy();
        assert!(acc > 0.0 && acc < 1.0, "accuracy {acc} should be partial");
    }
}
