//! NPU scratchpad and DMA timing.
//!
//! Gemmini-style NPUs keep dense, regular operands (weight values, dense
//! activations) in an explicitly managed scratchpad filled by a DMA engine
//! (§II-B). Regular streams through the scratchpad are cheap and
//! predictable; the cache hierarchy only sees the *irregular* traffic. The
//! scratchpad model therefore only needs capacity checking and DMA transfer
//! timing — there is no tag array to simulate.

use nvr_common::{Cycle, NvrError};

/// Explicitly managed on-chip buffer with a DMA engine.
///
/// # Examples
///
/// ```
/// use nvr_mem::Scratchpad;
///
/// let mut spad = Scratchpad::new(256 * 1024, 32);
/// let done = spad.dma_in(0, 4096)?;
/// assert_eq!(done, 4096 / 32);
/// # Ok::<(), nvr_common::NvrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scratchpad {
    capacity_bytes: u64,
    dma_bytes_per_cycle: u64,
    resident_bytes: u64,
    dma_free: Cycle,
    total_in_bytes: u64,
    total_out_bytes: u64,
}

impl Scratchpad {
    /// Creates a scratchpad of `capacity_bytes` with a DMA engine moving
    /// `dma_bytes_per_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn new(capacity_bytes: u64, dma_bytes_per_cycle: u64) -> Self {
        assert!(capacity_bytes > 0, "scratchpad capacity must be non-zero");
        assert!(dma_bytes_per_cycle > 0, "DMA bandwidth must be non-zero");
        Scratchpad {
            capacity_bytes,
            dma_bytes_per_cycle,
            resident_bytes: 0,
            dma_free: 0,
            total_in_bytes: 0,
            total_out_bytes: 0,
        }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Total bytes DMA'd in over the run.
    #[must_use]
    pub fn total_in_bytes(&self) -> u64 {
        self.total_in_bytes
    }

    /// Total bytes DMA'd out over the run.
    #[must_use]
    pub fn total_out_bytes(&self) -> u64 {
        self.total_out_bytes
    }

    /// Starts a DMA transfer of `bytes` into the scratchpad at `now`;
    /// returns its completion cycle.
    ///
    /// The transfer implicitly reuses the buffer in tile-double-buffer
    /// fashion: capacity is checked per transfer, not cumulatively, because
    /// the NPU engine frees a tile's operands when the tile retires.
    ///
    /// # Errors
    ///
    /// Returns [`NvrError::Config`] if `bytes` exceeds the capacity.
    pub fn dma_in(&mut self, now: Cycle, bytes: u64) -> Result<Cycle, NvrError> {
        if bytes > self.capacity_bytes {
            return Err(NvrError::Config(format!(
                "DMA transfer of {bytes} B exceeds scratchpad capacity {} B",
                self.capacity_bytes
            )));
        }
        self.resident_bytes = bytes;
        let start = now.max(self.dma_free);
        let cycles = nvr_common::div_ceil(bytes, self.dma_bytes_per_cycle);
        self.dma_free = start + cycles;
        self.total_in_bytes += bytes;
        Ok(start + cycles)
    }

    /// Streams `bytes` out of the scratchpad at `now`; returns the drain
    /// cycle.
    pub fn dma_out(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let start = now.max(self.dma_free);
        let cycles = nvr_common::div_ceil(bytes, self.dma_bytes_per_cycle);
        self.dma_free = start + cycles;
        self.total_out_bytes += bytes;
        start + cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_in_timing() {
        let mut s = Scratchpad::new(1024, 16);
        let done = s.dma_in(100, 64).expect("fits");
        assert_eq!(done, 104);
        assert_eq!(s.resident_bytes(), 64);
        assert_eq!(s.total_in_bytes(), 64);
    }

    #[test]
    fn dma_serialises_transfers() {
        let mut s = Scratchpad::new(1024, 16);
        let a = s.dma_in(0, 160).expect("fits");
        let b = s.dma_in(0, 160).expect("fits");
        assert_eq!(a, 10);
        assert_eq!(b, 20);
    }

    #[test]
    fn over_capacity_rejected() {
        let mut s = Scratchpad::new(128, 16);
        assert!(s.dma_in(0, 256).is_err());
    }

    #[test]
    fn dma_out_shares_engine() {
        let mut s = Scratchpad::new(1024, 16);
        s.dma_in(0, 160).expect("fits");
        let out_done = s.dma_out(0, 32);
        assert_eq!(out_done, 12);
        assert_eq!(s.total_out_bytes(), 32);
    }
}
