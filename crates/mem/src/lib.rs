//! Memory-hierarchy substrate for the NVR simulator.
//!
//! Models the paper's memory system (§IV-A, Fig. 3): an optional in-NPU
//! non-blocking speculative buffer (NSB) in front of a shared L2 cache,
//! backed by a multi-channel, bandwidth-limited DRAM backend
//! ([`DramBackend`]: line-address interleaved channels, bounded
//! per-channel prefetch queues, demand-over-prefetch arbitration), plus
//! the NPU scratchpad for dense operands.
//!
//! # Timing model
//!
//! The hierarchy uses *timestamp forwarding*: every access returns the cycle
//! at which its data is usable, and in-flight fills are recorded as
//! `(line, fill_done)` pairs rather than simulated event-by-event. A demand
//! that arrives while "its" line is still in flight merges into the pending
//! fill (MSHR coalescing) and becomes ready at the fill-completion cycle.
//! This reproduces non-blocking cache behaviour — including partial coverage
//! from late prefetches — at a fraction of the cost of a full event queue.
//!
//! # Examples
//!
//! ```
//! use nvr_mem::{MemoryConfig, MemorySystem};
//! use nvr_common::LineAddr;
//!
//! let mut mem = MemorySystem::new(MemoryConfig::default());
//! let miss = mem.demand_line(LineAddr::new(0x100), 0);
//! let hit = mem.demand_line(LineAddr::new(0x100), miss.ready_at);
//! assert!(hit.ready_at < miss.ready_at + 30);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod hierarchy;
pub mod scratchpad;
pub mod stats;

pub use cache::{Cache, PrefetchLifeEvent, ProbeResult};
pub use config::{CacheConfig, DramConfig, MemoryConfig, RetentionPolicy};
pub use dram::{ChannelPrefetch, DramBackend};
pub use hierarchy::{AccessOutcome, AccessResult, MemorySystem, PrefetchOutcome};
pub use scratchpad::Scratchpad;
pub use stats::{CacheStats, ChannelStats, DramStats, MemoryStats};
