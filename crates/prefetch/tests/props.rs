//! Property-based tests of the prefetcher building blocks.

use proptest::prelude::*;

use nvr_common::Addr;
use nvr_prefetch::StrideEntry;

proptest! {
    /// A constant-stride stream always trains the entry to that stride,
    /// and its predictions extrapolate it exactly.
    #[test]
    fn stride_entry_learns_any_stride(
        base in 0u64..1 << 40,
        stride in 1u64..100_000,
        steps in 3u64..32,
        ahead in 1u64..8,
    ) {
        let mut e = StrideEntry::new();
        for i in 0..steps {
            e.update(Addr::new(base + i * stride));
        }
        prop_assert_eq!(e.stride(), stride as i64);
        prop_assert!(e.is_confident());
        let last = base + (steps - 1) * stride;
        prop_assert_eq!(e.predict(ahead), Some(Addr::new(last + ahead * stride)));
    }

    /// Random address noise never leaves the entry confidently wrong about
    /// a stride it hasn't seen twice in a row.
    #[test]
    fn stride_entry_no_false_confidence(addrs in prop::collection::vec(0u64..1 << 20, 2..40)) {
        let mut e = StrideEntry::new();
        let mut last_delta: Option<i64> = None;
        let mut repeat = false;
        for w in addrs.windows(2) {
            let d = w[1] as i64 - w[0] as i64;
            if last_delta == Some(d) && d != 0 {
                repeat = true;
            }
            last_delta = Some(d);
        }
        for &a in &addrs {
            e.update(Addr::new(a));
        }
        if !repeat {
            // No delta ever repeated consecutively: confidence impossible.
            prop_assert!(!e.is_confident());
        }
    }
}
