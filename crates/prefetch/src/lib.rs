//! Baseline hardware prefetchers and the prefetcher interface.
//!
//! The paper compares NVR against three general-purpose-processor
//! prefetchers (§V-A), all re-implemented here against the same
//! [`Prefetcher`] interface the NPU engine drives:
//!
//! * [`StreamPrefetcher`] — adaptive stream/stride detection (Hur & Lin):
//!   catches sequential index/weight streams, blind to indirection.
//! * [`ImpPrefetcher`] — the Indirect Memory Prefetcher (Yu et al.): learns
//!   affine `base + (index << shift)` correlations between index values and
//!   miss addresses; cannot learn non-affine (table-lookup) chains.
//! * [`DvrPrefetcher`] — Decoupled Vector Runahead (Naithani et al.):
//!   triggered by stalls, speculatively executes the indirect chain for a
//!   fixed distance ahead, vectorising across inner-loop invocations. Has
//!   no access to NPU sparse-unit metadata, so it overruns loop boundaries.
//!
//! The NVR prefetcher itself lives in the `nvr-core` crate and implements
//! the same trait.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod api;
pub mod dvr;
pub mod imp;
pub mod rpt;
pub mod stream;

pub use api::{NullPrefetcher, Prefetcher, TimelinessReport};
pub use dvr::{DvrConfig, DvrPrefetcher};
pub use imp::{ImpConfig, ImpPrefetcher};
pub use rpt::StrideEntry;
pub use stream::{StreamConfig, StreamPrefetcher};
