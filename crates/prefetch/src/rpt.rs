//! Reference-prediction-table infrastructure shared by the prefetchers.
//!
//! The classic stride-detection entry: previous address, stride, and a
//! saturating confidence counter. NVR's Stride Detector (§IV-B) and the
//! stream/IMP baselines all build on this structure.

use nvr_common::Addr;

/// One stride-tracking entry.
///
/// # Examples
///
/// ```
/// use nvr_prefetch::StrideEntry;
/// use nvr_common::Addr;
///
/// let mut e = StrideEntry::new();
/// e.update(Addr::new(100));
/// e.update(Addr::new(104));
/// e.update(Addr::new(108));
/// assert_eq!(e.stride(), 4);
/// assert!(e.is_confident());
/// assert_eq!(e.predict(2), Some(Addr::new(116)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StrideEntry {
    prev: Option<Addr>,
    stride: i64,
    /// 2-bit saturating confidence, as in hardware reference prediction
    /// tables (Table I allots 2 bits per entry).
    confidence: u8,
}

/// Confidence threshold above which predictions are trusted: one confirmed
/// repeat of the stride (i.e. three consistent addresses).
const CONFIDENT: u8 = 1;
/// Saturation value of the confidence counter.
const SATURATE: u8 = 3;

impl StrideEntry {
    /// A fresh, untrained entry.
    #[must_use]
    pub fn new() -> Self {
        StrideEntry::default()
    }

    /// Feeds the next observed address; trains stride and confidence.
    pub fn update(&mut self, addr: Addr) {
        match self.prev {
            None => {
                self.prev = Some(addr);
            }
            Some(prev) => {
                let observed = addr.raw() as i64 - prev.raw() as i64;
                if observed == self.stride && observed != 0 {
                    self.confidence = (self.confidence + 1).min(SATURATE);
                } else {
                    // One strike: lose confidence; retrain stride when flat.
                    if self.confidence > 0 {
                        self.confidence -= 1;
                    }
                    if self.confidence == 0 {
                        self.stride = observed;
                    }
                }
                self.prev = Some(addr);
            }
        }
    }

    /// The current stride estimate (0 until two updates arrive).
    #[must_use]
    pub fn stride(&self) -> i64 {
        self.stride
    }

    /// Whether predictions are trustworthy.
    #[must_use]
    pub fn is_confident(&self) -> bool {
        self.confidence >= CONFIDENT && self.stride != 0
    }

    /// Predicted address `ahead` strides past the last observation, or
    /// `None` when untrained/unconfident.
    #[must_use]
    pub fn predict(&self, ahead: u64) -> Option<Addr> {
        if !self.is_confident() {
            return None;
        }
        let prev = self.prev?;
        let delta = self.stride.checked_mul(ahead as i64)?;
        let raw = prev.raw() as i64 + delta;
        (raw >= 0).then(|| Addr::new(raw as u64))
    }

    /// Last observed address.
    #[must_use]
    pub fn last(&self) -> Option<Addr> {
        self.prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_on_constant_stride() {
        let mut e = StrideEntry::new();
        for i in 0..4 {
            e.update(Addr::new(1000 + i * 64));
        }
        assert_eq!(e.stride(), 64);
        assert!(e.is_confident());
        assert_eq!(e.predict(1), Some(Addr::new(1000 + 4 * 64)));
    }

    #[test]
    fn loses_confidence_on_break() {
        let mut e = StrideEntry::new();
        for i in 0..4 {
            e.update(Addr::new(i * 8));
        }
        assert!(e.is_confident());
        e.update(Addr::new(10_000));
        e.update(Addr::new(99));
        assert!(!e.is_confident());
    }

    #[test]
    fn retrains_after_pattern_change() {
        let mut e = StrideEntry::new();
        for i in 0..4 {
            e.update(Addr::new(i * 8));
        }
        // New stride: needs confidence to drain then rebuild.
        for i in 0..8 {
            e.update(Addr::new(100_000 + i * 128));
        }
        assert_eq!(e.stride(), 128);
        assert!(e.is_confident());
    }

    #[test]
    fn no_prediction_untrained() {
        let mut e = StrideEntry::new();
        assert_eq!(e.predict(1), None);
        e.update(Addr::new(5));
        assert_eq!(e.predict(1), None);
    }

    #[test]
    fn negative_stride_predicts_downward() {
        let mut e = StrideEntry::new();
        for i in (0..6).rev() {
            e.update(Addr::new(1000 + i * 16));
        }
        assert_eq!(e.stride(), -16);
        assert_eq!(e.predict(1), Some(Addr::new(1000 - 16)));
    }

    #[test]
    fn prediction_never_negative() {
        let mut e = StrideEntry::new();
        for i in (0..6).rev() {
            e.update(Addr::new(i * 16));
        }
        // Last observation at 0; next prediction would be negative.
        assert_eq!(e.predict(1), None);
    }

    #[test]
    fn zero_stride_is_not_confident() {
        let mut e = StrideEntry::new();
        for _ in 0..5 {
            e.update(Addr::new(500));
        }
        assert!(!e.is_confident());
    }
}
