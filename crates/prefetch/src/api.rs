//! The prefetcher interface driven by the NPU engine.

use nvr_common::{Cycle, Histogram};
use nvr_mem::MemorySystem;
use nvr_trace::{AccessEvent, MemoryImage, SnoopState};

/// Measured per-prefetch timeliness of one run: how the speculative fills
/// a prefetcher issued actually fared against the demand stream.
///
/// Populated by prefetchers that track prefetch lifetimes (NVR's
/// `lifetime` module in `nvr_core`); [`Prefetcher::timeliness`] returns
/// `None` for the rest. Every count is a *measured* outcome from the
/// memory system's lifetime log, not an inference from aggregate
/// counters:
///
/// * **timely** — first demand touch found the fill complete;
/// * **late** — first demand touch merged into the still-pending fill
///   (the NPU waited part of the latency: coverage without full benefit);
/// * **evicted unused** — the line left the cache untouched (pollution);
/// * **unresolved** — issued but neither demanded nor evicted by the end
///   of the run (in-flight or resident-unused at finalisation).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimelinessReport {
    /// Issue→first-use slack distribution, in cycles, over all used
    /// prefetches (timely and late).
    pub slack: Histogram,
    /// DRAM-channel queue delay (arrival → scheduled bus slot) of every
    /// issued prefetch, in cycles — how much of a late fill was
    /// arbitration (demand preemption, bus backlog) rather than
    /// prediction distance.
    pub queue_delay: Histogram,
    /// Prefetches whose fill completed before the first demand touch.
    pub timely: u64,
    /// Prefetches demanded mid-fill.
    pub late: u64,
    /// Prefetches evicted without a demand touch.
    pub evicted_unused: u64,
    /// Prefetches with no observed outcome by end of run.
    pub unresolved: u64,
}

impl TimelinessReport {
    /// Prefetches with a demand touch (timely + late).
    #[must_use]
    pub fn used(&self) -> u64 {
        self.timely + self.late
    }

    /// Fraction of *resolved* prefetches (used or evicted) that were
    /// timely; 0 when nothing resolved.
    #[must_use]
    pub fn timely_fraction(&self) -> f64 {
        let resolved = self.used() + self.evicted_unused;
        if resolved == 0 {
            0.0
        } else {
            self.timely as f64 / resolved as f64
        }
    }

    /// Fraction of used prefetches the demand had to wait on; 0 when
    /// nothing was used.
    #[must_use]
    pub fn late_fraction(&self) -> f64 {
        let used = self.used();
        if used == 0 {
            0.0
        } else {
            self.late as f64 / used as f64
        }
    }
}

/// A hardware prefetcher attached to the NPU's memory system.
///
/// The engine calls [`Prefetcher::observe`] for every demand access it
/// issues (the request/response bus a real prefetcher snoops), and
/// [`Prefetcher::advance`] to grant wall-clock windows in which the
/// prefetcher may perform speculative work and issue prefetches into `mem`.
///
/// # Honesty contract
///
/// Implementations must not look at future program state. Everything they
/// may use arrives through three channels:
///
/// 1. the demand-access event stream (`observe`),
/// 2. the snoopable architectural state (`snoop`) — and only the fields the
///    modelled hardware could see (each implementation documents which),
/// 3. *speculative memory reads*: index values read from `image`, but only
///    for lines the implementation has itself made resident (checked
///    through `mem`) — this is runahead execution, not oracle knowledge.
pub trait Prefetcher {
    /// Short display name ("Stream", "IMP", "DVR", "NVR").
    fn name(&self) -> &'static str;

    /// Observes one demand access event.
    ///
    /// `image` is available for reads of *resident* lines only (data the
    /// hardware has on-chip, e.g. index values ahead in an already-cached
    /// index line) — see the honesty contract above.
    fn observe(
        &mut self,
        event: &AccessEvent,
        snoop: &SnoopState,
        image: &MemoryImage,
        mem: &mut MemorySystem,
    );

    /// Performs speculative work during the window `[from, to)`.
    ///
    /// Called by the engine whenever simulated time passes; the prefetcher
    /// maintains its own internal clock within the window and may leave
    /// work pending for the next call.
    fn advance(
        &mut self,
        from: Cycle,
        to: Cycle,
        snoop: &SnoopState,
        image: &MemoryImage,
        mem: &mut MemorySystem,
    );

    /// Whether this prefetcher's fills should also populate the NSB
    /// (§IV-G: NSB pays off only with accurate prefetchers; the engine
    /// honours this flag when an NSB is configured).
    fn fills_nsb(&self) -> bool {
        false
    }

    /// Called once after the program's last cycle, before results are
    /// read: lifetime-tracking prefetchers drain the memory system's
    /// remaining lifetime events here so [`Prefetcher::timeliness`]
    /// reflects the whole run. No-op by default.
    fn finalize_run(&mut self, _mem: &mut MemorySystem) {}

    /// The measured per-prefetch timeliness of the run so far, for
    /// prefetchers that track prefetch lifetimes; `None` (the default)
    /// for those that do not.
    fn timeliness(&self) -> Option<TimelinessReport> {
        None
    }
}

/// The no-prefetching baseline (the paper's in-order / OoO "no prefetch"
/// configurations).
///
/// # Examples
///
/// ```
/// use nvr_prefetch::{NullPrefetcher, Prefetcher};
///
/// let p = NullPrefetcher::new();
/// assert_eq!(p.name(), "None");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPrefetcher;

impl NullPrefetcher {
    /// Creates the null prefetcher.
    #[must_use]
    pub fn new() -> Self {
        NullPrefetcher
    }
}

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &'static str {
        "None"
    }

    fn observe(&mut self, _: &AccessEvent, _: &SnoopState, _: &MemoryImage, _: &mut MemorySystem) {}

    fn advance(
        &mut self,
        _: Cycle,
        _: Cycle,
        _: &SnoopState,
        _: &MemoryImage,
        _: &mut MemorySystem,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_prefetcher_is_inert() {
        use nvr_common::Addr;
        use nvr_mem::MemoryConfig;

        let mut p = NullPrefetcher::new();
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let snoop = SnoopState {
            tile: 0,
            total_tiles: 1,
            index_base: Addr::new(0),
            elem_start: 0,
            elem_end: 0,
            elem_consumed: 0,
            gather: None,
            npu_load_in_flight: false,
            sparse_unit_idle: true,
        };
        let ev = AccessEvent::gather(0, 0, Addr::new(0x40), true);
        p.observe(&ev, &snoop, &MemoryImage::new(), &mut mem);
        p.advance(0, 100, &snoop, &MemoryImage::new(), &mut mem);
        assert_eq!(mem.stats().dram.prefetch_lines.get(), 0);
        assert!(!p.fills_nsb());
    }
}
