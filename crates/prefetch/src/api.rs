//! The prefetcher interface driven by the NPU engine.

use nvr_common::Cycle;
use nvr_mem::MemorySystem;
use nvr_trace::{AccessEvent, MemoryImage, SnoopState};

/// A hardware prefetcher attached to the NPU's memory system.
///
/// The engine calls [`Prefetcher::observe`] for every demand access it
/// issues (the request/response bus a real prefetcher snoops), and
/// [`Prefetcher::advance`] to grant wall-clock windows in which the
/// prefetcher may perform speculative work and issue prefetches into `mem`.
///
/// # Honesty contract
///
/// Implementations must not look at future program state. Everything they
/// may use arrives through three channels:
///
/// 1. the demand-access event stream (`observe`),
/// 2. the snoopable architectural state (`snoop`) — and only the fields the
///    modelled hardware could see (each implementation documents which),
/// 3. *speculative memory reads*: index values read from `image`, but only
///    for lines the implementation has itself made resident (checked
///    through `mem`) — this is runahead execution, not oracle knowledge.
pub trait Prefetcher {
    /// Short display name ("Stream", "IMP", "DVR", "NVR").
    fn name(&self) -> &'static str;

    /// Observes one demand access event.
    ///
    /// `image` is available for reads of *resident* lines only (data the
    /// hardware has on-chip, e.g. index values ahead in an already-cached
    /// index line) — see the honesty contract above.
    fn observe(
        &mut self,
        event: &AccessEvent,
        snoop: &SnoopState,
        image: &MemoryImage,
        mem: &mut MemorySystem,
    );

    /// Performs speculative work during the window `[from, to)`.
    ///
    /// Called by the engine whenever simulated time passes; the prefetcher
    /// maintains its own internal clock within the window and may leave
    /// work pending for the next call.
    fn advance(
        &mut self,
        from: Cycle,
        to: Cycle,
        snoop: &SnoopState,
        image: &MemoryImage,
        mem: &mut MemorySystem,
    );

    /// Whether this prefetcher's fills should also populate the NSB
    /// (§IV-G: NSB pays off only with accurate prefetchers; the engine
    /// honours this flag when an NSB is configured).
    fn fills_nsb(&self) -> bool {
        false
    }
}

/// The no-prefetching baseline (the paper's in-order / OoO "no prefetch"
/// configurations).
///
/// # Examples
///
/// ```
/// use nvr_prefetch::{NullPrefetcher, Prefetcher};
///
/// let p = NullPrefetcher::new();
/// assert_eq!(p.name(), "None");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPrefetcher;

impl NullPrefetcher {
    /// Creates the null prefetcher.
    #[must_use]
    pub fn new() -> Self {
        NullPrefetcher
    }
}

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &'static str {
        "None"
    }

    fn observe(&mut self, _: &AccessEvent, _: &SnoopState, _: &MemoryImage, _: &mut MemorySystem) {}

    fn advance(
        &mut self,
        _: Cycle,
        _: Cycle,
        _: &SnoopState,
        _: &MemoryImage,
        _: &mut MemorySystem,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_prefetcher_is_inert() {
        use nvr_common::Addr;
        use nvr_mem::MemoryConfig;

        let mut p = NullPrefetcher::new();
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let snoop = SnoopState {
            tile: 0,
            total_tiles: 1,
            index_base: Addr::new(0),
            elem_start: 0,
            elem_end: 0,
            elem_consumed: 0,
            gather: None,
            npu_load_in_flight: false,
            sparse_unit_idle: true,
        };
        let ev = AccessEvent::gather(0, 0, Addr::new(0x40), true);
        p.observe(&ev, &snoop, &MemoryImage::new(), &mut mem);
        p.advance(0, 100, &snoop, &MemoryImage::new(), &mut mem);
        assert_eq!(mem.stats().dram.prefetch_lines.get(), 0);
        assert!(!p.fills_nsb());
    }
}
