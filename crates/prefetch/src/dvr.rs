//! DVR: Decoupled Vector Runahead (Naithani et al., MICRO'23), adapted to
//! the NPU as the paper's strongest baseline.
//!
//! On a demand-gather stall, DVR enters runahead: it walks the index stream
//! forward from the stall point, speculatively executing the indirect chain
//! (including table probes) for a fixed distance of `runahead_elems`
//! elements, vectorising target prefetches. The paper grants DVR the same
//! parallelism as NVR (§V-A: "expanded ... to the same number of
//! parallels"), which we honour via `issue_per_cycle`.
//!
//! What DVR structurally lacks relative to NVR (§II-C, §IV):
//!
//! * **no sparse-unit snooping** — it sees the dependent-chain *code* (it
//!   executes the actual instructions) but not the loop-bound registers, so
//!   its fixed-distance runahead overruns the index array's end into
//!   garbage, and it cannot clip per-row windows;
//! * **stall-triggered** — speculation starts only once a miss is already
//!   stalling the pipeline, costing timeliness;
//! * **no NSB fill path** — it targets the shared L2 only.

use nvr_common::{Addr, Cycle};
use nvr_mem::MemorySystem;
use nvr_trace::{AccessEvent, EventKind, MemoryImage, SnoopState, SparseFunc};

use crate::api::Prefetcher;

/// Tuning knobs for [`DvrPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DvrConfig {
    /// Index elements speculatively executed per runahead episode.
    pub runahead_elems: usize,
    /// Target-line prefetches issued per cycle while draining.
    pub issue_per_cycle: usize,
}

impl Default for DvrConfig {
    fn default() -> Self {
        DvrConfig {
            runahead_elems: 64,
            issue_per_cycle: 4,
        }
    }
}

/// An active runahead episode.
#[derive(Debug, Clone)]
struct Episode {
    /// Next index element address to execute.
    next_elem: Addr,
    /// Elements left in this episode.
    remaining: usize,
    /// Resolved target lines awaiting issue.
    queue: Vec<Addr>,
    /// Cycle until which the episode is blocked on a speculative fill.
    blocked_until: Cycle,
    /// A probe whose slot read is pending (two-level chains): the probe
    /// address to read once `blocked_until` passes.
    pending_probe: Option<Addr>,
}

/// The DVR prefetcher.
///
/// # Examples
///
/// ```
/// use nvr_prefetch::{DvrPrefetcher, Prefetcher};
///
/// let p = DvrPrefetcher::default();
/// assert_eq!(p.name(), "DVR");
/// ```
#[derive(Debug, Clone)]
pub struct DvrPrefetcher {
    cfg: DvrConfig,
    /// Address of the most recently observed index element.
    last_index_addr: Option<Addr>,
    /// Detected element stride of the index stream (bytes).
    index_stride: u64,
    episode: Option<Episode>,
    clock: Cycle,
}

impl DvrPrefetcher {
    /// Creates a DVR with the given configuration.
    #[must_use]
    pub fn new(cfg: DvrConfig) -> Self {
        DvrPrefetcher {
            cfg,
            last_index_addr: None,
            index_stride: 4,
            episode: None,
            clock: 0,
        }
    }

    /// Whether a runahead episode is currently active (for tests).
    #[must_use]
    pub fn in_runahead(&self) -> bool {
        self.episode.is_some()
    }

    /// Reads a speculative `u32`: if the line is on chip and filled by
    /// `clock`, returns the value; otherwise prefetches the line and returns
    /// the cycle the value becomes readable.
    fn spec_read(
        &mut self,
        addr: Addr,
        image: &MemoryImage,
        mem: &mut MemorySystem,
    ) -> Result<u32, Cycle> {
        let line = addr.line();
        if let nvr_mem::PrefetchOutcome::Issued { fill_done } =
            mem.prefetch_line(line, self.clock, false)
        {
            if fill_done > self.clock {
                return Err(fill_done);
            }
        }
        // Resident (or already in flight): read the value.
        Ok(image.read_u32(addr))
    }

    /// Pushes the lines of one gather target onto the episode queue.
    fn queue_target(queue: &mut Vec<Addr>, base: Addr, row_bytes: u64) {
        for l in nvr_common::Region::new(base, row_bytes).lines() {
            queue.push(l.base());
        }
    }

    /// Executes one speculative element; returns `false` when the episode
    /// blocked or ended (state is saved for the next `advance` window).
    fn step(&mut self, snoop: &SnoopState, image: &MemoryImage, mem: &mut MemorySystem) -> bool {
        let Some(mut ep) = self.episode.take() else {
            return false;
        };
        let Some(g) = snoop.gather else {
            // No gather context: abandon the episode.
            return false;
        };
        // Resume a pending two-level probe read.
        if let Some(probe) = ep.pending_probe.take() {
            let slot = image.read_u32(probe);
            if let SparseFunc::TableLookup {
                ia_base, row_bytes, ..
            } = g.func
            {
                Self::queue_target(
                    &mut ep.queue,
                    ia_base.offset(u64::from(slot) * row_bytes),
                    row_bytes,
                );
            }
            ep.remaining = ep.remaining.saturating_sub(1);
            ep.next_elem = ep.next_elem.offset(self.index_stride);
            self.episode = Some(ep);
            return true;
        }
        if ep.remaining == 0 {
            self.episode = (!ep.queue.is_empty()).then_some(ep);
            return self.episode.is_some();
        }
        let elem_addr = ep.next_elem;
        let idx = match self.spec_read(elem_addr, image, mem) {
            Ok(v) => v,
            Err(ready) => {
                ep.blocked_until = ready;
                self.episode = Some(ep);
                return false;
            }
        };
        match g.func {
            SparseFunc::Affine { ia_base, row_bytes } => {
                Self::queue_target(
                    &mut ep.queue,
                    ia_base.offset(u64::from(idx) * row_bytes),
                    row_bytes,
                );
                ep.remaining -= 1;
                ep.next_elem = ep.next_elem.offset(self.index_stride);
            }
            SparseFunc::TableLookup {
                table_base,
                ia_base,
                row_bytes,
            } => {
                let probe = table_base.offset(u64::from(idx) * 4);
                match self.spec_read(probe, image, mem) {
                    Ok(slot) => {
                        Self::queue_target(
                            &mut ep.queue,
                            ia_base.offset(u64::from(slot) * row_bytes),
                            row_bytes,
                        );
                        ep.remaining -= 1;
                        ep.next_elem = ep.next_elem.offset(self.index_stride);
                    }
                    Err(ready) => {
                        ep.blocked_until = ready;
                        ep.pending_probe = Some(probe);
                        self.episode = Some(ep);
                        return false;
                    }
                }
            }
        }
        self.episode = Some(ep);
        true
    }

    /// Issues queued target prefetches at up to `issue_per_cycle` per
    /// cycle. Lines whose DRAM channel's prefetch queue is full are held
    /// back (order preserved) and retried next cycle, mirroring the
    /// per-channel back-pressure the paper grants every queue-bearing
    /// prefetcher.
    fn drain_queue(&mut self, mem: &mut MemorySystem) {
        if let Some(ep) = &mut self.episode {
            let n = ep.queue.len().min(self.cfg.issue_per_cycle);
            let mut deferred = Vec::new();
            for addr in ep.queue.drain(..n) {
                if mem.prefetch_channel_ready(addr.line(), self.clock) {
                    mem.prefetch_line(addr.line(), self.clock, false);
                } else {
                    deferred.push(addr);
                }
            }
            ep.queue.splice(..0, deferred);
        }
    }
}

impl Default for DvrPrefetcher {
    fn default() -> Self {
        DvrPrefetcher::new(DvrConfig::default())
    }
}

impl Prefetcher for DvrPrefetcher {
    fn name(&self) -> &'static str {
        "DVR"
    }

    fn observe(
        &mut self,
        event: &AccessEvent,
        _snoop: &SnoopState,
        _image: &MemoryImage,
        _mem: &mut MemorySystem,
    ) {
        match event.kind {
            EventKind::IndexLoad { .. } => {
                if let Some(prev) = self.last_index_addr {
                    let delta = event.addr.raw().saturating_sub(prev.raw());
                    if delta > 0 && delta <= 64 {
                        self.index_stride = delta;
                    }
                }
                self.last_index_addr = Some(event.addr);
            }
            EventKind::GatherLoad if event.missed && self.episode.is_none() => {
                // Stall-trigger: start runahead at the element after the
                // last one the NPU consumed.
                if let Some(last) = self.last_index_addr {
                    self.episode = Some(Episode {
                        next_elem: last.offset(self.index_stride),
                        remaining: self.cfg.runahead_elems,
                        queue: Vec::new(),
                        blocked_until: 0,
                        pending_probe: None,
                    });
                }
            }
            _ => {}
        }
    }

    fn advance(
        &mut self,
        from: Cycle,
        to: Cycle,
        snoop: &SnoopState,
        image: &MemoryImage,
        mem: &mut MemorySystem,
    ) {
        self.clock = self.clock.max(from);
        while self.clock < to {
            let Some(ep) = &self.episode else { break };
            if ep.blocked_until > self.clock {
                // Blocked on a speculative fill; fast-forward (bounded).
                if ep.blocked_until >= to {
                    self.clock = to;
                    break;
                }
                self.clock = ep.blocked_until;
                continue;
            }
            if !ep.queue.is_empty() {
                // Backpressure: hold the queue while the MSHR file is full.
                if mem.prefetch_ready(self.clock) {
                    self.drain_queue(mem);
                }
                self.clock += 1;
                continue;
            }
            if !self.step(snoop, image, mem) && self.episode.is_none() {
                break;
            }
            self.clock += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_mem::MemoryConfig;
    use nvr_trace::GatherDesc;

    fn snoop_with_gather(func: SparseFunc) -> SnoopState {
        SnoopState {
            tile: 0,
            total_tiles: 4,
            index_base: Addr::new(0x1000),
            elem_start: 0,
            elem_end: 64,
            elem_consumed: 0,
            gather: Some(GatherDesc { func, batch: 16 }),
            npu_load_in_flight: true,
            sparse_unit_idle: true,
        }
    }

    fn affine_setup() -> (MemoryImage, SnoopState) {
        let mut image = MemoryImage::new();
        let indices: Vec<u32> = (0..256).map(|i| (i * 97) % 4096).collect();
        image.add_u32_segment(Addr::new(0x1000), indices);
        let func = SparseFunc::Affine {
            ia_base: Addr::new(0x1000_0000),
            row_bytes: 128,
        };
        (image, snoop_with_gather(func))
    }

    #[test]
    fn triggers_on_stall_and_prefetches_targets() {
        let (image, snoop) = affine_setup();
        let mut p = DvrPrefetcher::default();
        let mut mem = MemorySystem::new(MemoryConfig::default());

        // NPU consumed index elements 0 and 1...
        p.observe(
            &AccessEvent::index_load(0, 0, Addr::new(0x1000), 0, false),
            &snoop,
            &image,
            &mut mem,
        );
        p.observe(
            &AccessEvent::index_load(1, 0, Addr::new(0x1004), 97, false),
            &snoop,
            &image,
            &mut mem,
        );
        // ...and a gather stalls.
        p.observe(
            &AccessEvent::gather(10, 0, Addr::new(0x1000_0000), true),
            &snoop,
            &image,
            &mut mem,
        );
        assert!(p.in_runahead());

        // Give it a generous window: speculative index fill + issue.
        p.advance(10, 5_000, &snoop, &image, &mut mem);
        let issued = mem.stats().l2.prefetch_issued.get();
        assert!(
            issued >= 64,
            "64-element runahead should issue >=64 target lines, got {issued}"
        );
    }

    #[test]
    fn no_trigger_without_index_context() {
        let (image, snoop) = affine_setup();
        let mut p = DvrPrefetcher::default();
        let mut mem = MemorySystem::new(MemoryConfig::default());
        p.observe(
            &AccessEvent::gather(10, 0, Addr::new(0x1000_0000), true),
            &snoop,
            &image,
            &mut mem,
        );
        assert!(!p.in_runahead());
    }

    #[test]
    fn episode_completes_and_rearms() {
        let (image, snoop) = affine_setup();
        let mut p = DvrPrefetcher::new(DvrConfig {
            runahead_elems: 8,
            issue_per_cycle: 4,
        });
        let mut mem = MemorySystem::new(MemoryConfig::default());
        p.observe(
            &AccessEvent::index_load(0, 0, Addr::new(0x1000), 0, false),
            &snoop,
            &image,
            &mut mem,
        );
        p.observe(
            &AccessEvent::gather(1, 0, Addr::new(0x1000_0000), true),
            &snoop,
            &image,
            &mut mem,
        );
        p.advance(1, 10_000, &snoop, &image, &mut mem);
        assert!(!p.in_runahead(), "episode should drain");
        // A later stall re-triggers.
        p.observe(
            &AccessEvent::gather(20_000, 0, Addr::new(0x1200_0000), true),
            &snoop,
            &image,
            &mut mem,
        );
        assert!(p.in_runahead());
    }

    #[test]
    fn two_level_chain_probes_table() {
        let mut image = MemoryImage::new();
        // index array: buckets 0..16
        image.add_u32_segment(Addr::new(0x1000), (0..16).collect());
        // table[b] = b * 3
        image.add_u32_segment(Addr::new(0x2000), (0..64).map(|b| b * 3).collect());
        let func = SparseFunc::TableLookup {
            table_base: Addr::new(0x2000),
            ia_base: Addr::new(0x2000_0000),
            row_bytes: 64,
        };
        let snoop = snoop_with_gather(func);
        let mut p = DvrPrefetcher::new(DvrConfig {
            runahead_elems: 8,
            issue_per_cycle: 4,
        });
        let mut mem = MemorySystem::new(MemoryConfig::default());
        p.observe(
            &AccessEvent::index_load(0, 0, Addr::new(0x1000), 0, false),
            &snoop,
            &image,
            &mut mem,
        );
        p.observe(
            &AccessEvent::gather(1, 0, Addr::new(0x2000_0000), true),
            &snoop,
            &image,
            &mut mem,
        );
        p.advance(1, 20_000, &snoop, &image, &mut mem);
        // Elements 1.. resolve slots 3, 6, ...: their lines must be on chip.
        let probe_target = Addr::new(0x2000_0000 + 3 * 64);
        assert!(
            mem.npu_side_contains(probe_target.line()),
            "two-level targets should be prefetched"
        );
    }

    #[test]
    fn overruns_past_array_end_prefetch_garbage() {
        // Index array of only 4 elements; runahead of 32 overruns.
        let mut image = MemoryImage::new();
        image.add_u32_segment(Addr::new(0x1000), vec![1, 2, 3, 4]);
        let func = SparseFunc::Affine {
            ia_base: Addr::new(0x1000_0000),
            row_bytes: 64,
        };
        let snoop = snoop_with_gather(func);
        let mut p = DvrPrefetcher::new(DvrConfig {
            runahead_elems: 32,
            issue_per_cycle: 4,
        });
        let mut mem = MemorySystem::new(MemoryConfig::default());
        p.observe(
            &AccessEvent::index_load(0, 0, Addr::new(0x1000), 1, false),
            &snoop,
            &image,
            &mut mem,
        );
        p.observe(
            &AccessEvent::gather(1, 0, Addr::new(0x1000_0000), true),
            &snoop,
            &image,
            &mut mem,
        );
        p.advance(1, 50_000, &snoop, &image, &mut mem);
        // It issued far more lines than the 3 useful remaining elements —
        // the fixed-distance overrun NVR's LBD exists to prevent.
        let issued = mem.stats().l2.prefetch_issued.get();
        assert!(issued > 8, "overrun should issue garbage lines ({issued})");
    }
}
