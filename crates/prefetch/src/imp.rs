//! IMP: the Indirect Memory Prefetcher (Yu et al., MICRO'15).
//!
//! IMP observes pairs of (index value, subsequent miss address) and tries
//! to learn an affine mapping `target = base + (value << shift)`. Once a
//! mapping is locked, every index value it sees — including values it reads
//! *ahead* out of already-resident index lines — produces a target prefetch
//! `distance` elements before the NPU's gather reaches it.
//!
//! Mechanistic limits reproduced here, which drive its Fig. 5/6 standing:
//!
//! * non-affine chains (voxel-hash table lookups) never lock, so point-cloud
//!   workloads get only the index-stream prefetches;
//! * the lead time is bounded by `distance` index elements, far shorter than
//!   a runahead prefetcher's reach, costing timeliness (coverage);
//! * a locked mapping is verified against later misses and unlocked on
//!   repeated mismatch, so a workload phase change retrains.

use std::collections::VecDeque;

use nvr_common::{Addr, Cycle};
use nvr_mem::MemorySystem;
use nvr_trace::{AccessEvent, EventKind, MemoryImage, SnoopState};

use crate::api::Prefetcher;
use crate::rpt::StrideEntry;

/// Tuning knobs for [`ImpPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImpConfig {
    /// Index elements of lead: on seeing index element `p`, prefetch the
    /// target of element `p + distance` (when its value is resident).
    pub distance: u64,
    /// Largest `shift` considered when learning `base + (value << shift)`.
    pub max_shift: u32,
    /// Candidate-table capacity.
    pub candidates: usize,
    /// Consecutive prediction mismatches before a locked mapping unlocks.
    pub unlock_after: u32,
    /// Lines of index stream prefetched ahead.
    pub stream_degree: u64,
}

impl Default for ImpConfig {
    fn default() -> Self {
        ImpConfig {
            distance: 16,
            max_shift: 12,
            candidates: 64,
            unlock_after: 8,
            stream_degree: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Mapping {
    base: u64,
    shift: u32,
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    mapping: Mapping,
    hits: u32,
}

/// The IMP prefetcher.
///
/// # Examples
///
/// ```
/// use nvr_prefetch::{ImpPrefetcher, Prefetcher};
///
/// let p = ImpPrefetcher::default();
/// assert_eq!(p.name(), "IMP");
/// ```
#[derive(Debug, Clone)]
pub struct ImpPrefetcher {
    cfg: ImpConfig,
    /// Stride tracking of the index-load address stream.
    index_stride: StrideEntry,
    /// Recently observed index values (for correlation learning). A ring
    /// buffer: one arrives per index load, so evicting the oldest must not
    /// shift the other 31.
    recent_values: VecDeque<u32>,
    candidates: Vec<Candidate>,
    locked: Option<Mapping>,
    mismatches: u32,
}

impl ImpPrefetcher {
    /// Creates an IMP with the given configuration.
    #[must_use]
    pub fn new(cfg: ImpConfig) -> Self {
        ImpPrefetcher {
            cfg,
            index_stride: StrideEntry::new(),
            recent_values: VecDeque::with_capacity(33),
            candidates: Vec::new(),
            locked: None,
            mismatches: 0,
        }
    }

    /// The learned mapping, if locked (exposed for tests and reporting).
    #[must_use]
    pub fn locked_mapping(&self) -> Option<(u64, u32)> {
        self.locked.map(|m| (m.base, m.shift))
    }

    fn learn(&mut self, miss_addr: Addr) {
        for &v in self.recent_values.iter().rev().take(2) {
            for shift in 0..=self.cfg.max_shift {
                let scaled = u64::from(v) << shift;
                let Some(base) = miss_addr.raw().checked_sub(scaled) else {
                    continue;
                };
                let mapping = Mapping { base, shift };
                if let Some(c) = self.candidates.iter_mut().find(|c| c.mapping == mapping) {
                    c.hits += 1;
                    if c.hits >= 2 && shift > 0 {
                        self.locked = Some(mapping);
                        self.mismatches = 0;
                        return;
                    }
                } else {
                    if self.candidates.len() == self.cfg.candidates {
                        self.candidates.remove(0);
                    }
                    self.candidates.push(Candidate { mapping, hits: 1 });
                }
            }
        }
    }

    fn verify(&mut self, miss_addr: Addr) {
        let Some(m) = self.locked else { return };
        let predicted = self
            .recent_values
            .iter()
            .rev()
            .take(8)
            .any(|&v| m.base + (u64::from(v) << m.shift) == miss_addr.raw());
        if predicted {
            self.mismatches = 0;
        } else {
            self.mismatches += 1;
            if self.mismatches >= self.cfg.unlock_after {
                self.locked = None;
                self.candidates.clear();
                self.mismatches = 0;
            }
        }
    }
}

impl Default for ImpPrefetcher {
    fn default() -> Self {
        ImpPrefetcher::new(ImpConfig::default())
    }
}

impl Prefetcher for ImpPrefetcher {
    fn name(&self) -> &'static str {
        "IMP"
    }

    fn observe(
        &mut self,
        event: &AccessEvent,
        _snoop: &SnoopState,
        image: &MemoryImage,
        mem: &mut MemorySystem,
    ) {
        match event.kind {
            EventKind::IndexLoad { value } => {
                self.index_stride.update(event.addr);
                self.recent_values.push_back(value);
                if self.recent_values.len() > 32 {
                    self.recent_values.pop_front();
                }
                // Stream part: keep the index array itself flowing.
                if let Some(pred) = self.index_stride.predict(1) {
                    for k in 0..self.cfg.stream_degree {
                        mem.prefetch_line(pred.line().step(k), event.cycle, false);
                    }
                }
                // Indirect part: prefetch the target `distance` ahead, using
                // the ahead-value only if its line is already on chip.
                if let Some(m) = self.locked {
                    let stride = self.index_stride.stride();
                    if stride > 0 {
                        let ahead_addr =
                            Addr::new(event.addr.raw() + self.cfg.distance * stride as u64);
                        if mem.npu_side_contains(ahead_addr.line()) {
                            let v = image.read_u32(ahead_addr);
                            let target = Addr::new(m.base + (u64::from(v) << m.shift));
                            mem.prefetch_line(target.line(), event.cycle, false);
                        }
                    }
                }
            }
            EventKind::GatherLoad if event.missed => {
                if self.locked.is_some() {
                    self.verify(event.addr);
                } else {
                    self.learn(event.addr);
                }
            }
            _ => {}
        }
    }

    fn advance(
        &mut self,
        _from: Cycle,
        _to: Cycle,
        _snoop: &SnoopState,
        _image: &MemoryImage,
        _mem: &mut MemorySystem,
    ) {
        // IMP is event-driven; no decoupled speculative thread.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::Region;
    use nvr_mem::MemoryConfig;
    use nvr_trace::SnoopState;

    fn snoop() -> SnoopState {
        SnoopState {
            tile: 0,
            total_tiles: 1,
            index_base: Addr::new(0x1000),
            elem_start: 0,
            elem_end: 64,
            elem_consumed: 0,
            gather: None,
            npu_load_in_flight: true,
            sparse_unit_idle: true,
        }
    }

    /// Feeds IMP an affine indirect pattern and checks it locks and
    /// prefetches targets.
    #[test]
    fn locks_affine_mapping() {
        let cfg = ImpConfig::default();
        let mut p = ImpPrefetcher::new(cfg);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut image = MemoryImage::new();
        let ia_base = 0x100_0000u64;
        let row = 256u64; // shift = 8
        let indices: Vec<u32> = (0..64).map(|i| (i * 37) % 1000).collect();
        image.add_u32_segment(Addr::new(0x1000), indices.clone());
        let s = snoop();

        for (i, &v) in indices.iter().enumerate() {
            let index_addr = Addr::new(0x1000 + i as u64 * 4);
            // The engine loads the index element (value on the bus)...
            mem.demand_line(index_addr.line(), i as Cycle * 10);
            p.observe(
                &AccessEvent::index_load(i as Cycle * 10, 0, index_addr, v, false),
                &s,
                &image,
                &mut mem,
            );
            // ...then the gather for this element, which misses cold.
            let target = Addr::new(ia_base + u64::from(v) * row);
            let missed = !mem.npu_side_contains(target.line());
            mem.demand_line(target.line(), i as Cycle * 10 + 5);
            p.observe(
                &AccessEvent::gather(i as Cycle * 10 + 5, 0, target, missed),
                &s,
                &image,
                &mut mem,
            );
        }
        assert_eq!(p.locked_mapping(), Some((ia_base, 8)));
        // With the mapping locked, ahead-targets get prefetched: the DRAM
        // prefetch counter must have moved beyond the stream prefetches.
        assert!(mem.stats().l2.prefetch_issued.get() > 0);
        assert!(
            mem.stats().l2.prefetch_useful.get() > 10,
            "locked IMP should cover later gathers, useful={}",
            mem.stats().l2.prefetch_useful.get()
        );
    }

    /// A non-affine (hash-table) pattern must never lock.
    #[test]
    fn does_not_lock_non_affine() {
        let mut p = ImpPrefetcher::default();
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let image = MemoryImage::new();
        let s = snoop();
        let mut rng = nvr_common::Pcg32::seed_from_u64(5);
        for i in 0..200u64 {
            let v = rng.next_u32() % 1000;
            p.observe(
                &AccessEvent::index_load(i * 10, 0, Addr::new(0x1000 + i * 4), v, false),
                &s,
                &image,
                &mut mem,
            );
            // Target unrelated to v: random placement.
            let target = Addr::new(0x100_0000 + rng.gen_range(1 << 24));
            p.observe(
                &AccessEvent::gather(i * 10 + 5, 0, target, true),
                &s,
                &image,
                &mut mem,
            );
        }
        assert_eq!(p.locked_mapping(), None);
    }

    /// A locked mapping unlocks when the pattern changes.
    #[test]
    fn unlocks_on_phase_change() {
        let mut p = ImpPrefetcher::default();
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut image = MemoryImage::new();
        let indices: Vec<u32> = (0..128).collect();
        image.add_u32_segment(Addr::new(0x1000), indices.clone());
        let s = snoop();
        // Phase 1: affine with shift 8.
        for i in 0..32u64 {
            let v = indices[i as usize];
            p.observe(
                &AccessEvent::index_load(i, 0, Addr::new(0x1000 + i * 4), v, false),
                &s,
                &image,
                &mut mem,
            );
            p.observe(
                &AccessEvent::gather(i, 0, Addr::new(0x100_0000 + (u64::from(v) << 8)), true),
                &s,
                &image,
                &mut mem,
            );
        }
        assert!(p.locked_mapping().is_some());
        // Phase 2: random targets -> mismatch streak -> unlock.
        let mut rng = nvr_common::Pcg32::seed_from_u64(6);
        for i in 32..64u64 {
            p.observe(
                &AccessEvent::gather(i, 0, Addr::new(0x900_0000 + rng.gen_range(1 << 20)), true),
                &s,
                &image,
                &mut mem,
            );
        }
        assert_eq!(p.locked_mapping(), None);
    }

    #[test]
    fn index_region_helper_consistency() {
        // Guard: the test harness above assumes 4-byte index elements.
        let r = Region::new(Addr::new(0x1000), 16);
        assert_eq!(r.bytes() / 4, 4);
    }
}
