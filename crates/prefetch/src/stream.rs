//! Adaptive stream prefetcher (Hur & Lin style).
//!
//! The simplest baseline of §V-A: detects unit-and-constant-stride streams
//! in the demand *miss* stream and prefetches a fixed degree ahead. It
//! captures the sequential index-array and output streams but cannot
//! predict gather targets; on highly irregular gathers its next-line guesses
//! become pure pollution — the mechanism behind the paper's observation that
//! stream prefetching "occasionally introduces performance penalties".

use nvr_common::{Cycle, LineAddr};
use nvr_mem::MemorySystem;
use nvr_trace::{AccessEvent, MemoryImage, SnoopState};

use crate::api::Prefetcher;

/// Tuning knobs for [`StreamPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of concurrently tracked streams.
    pub streams: usize,
    /// Lines prefetched ahead once a stream is confirmed.
    pub degree: u64,
    /// Maximum line distance between a miss and a tracked stream head for
    /// the miss to extend that stream.
    pub window: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            streams: 16,
            degree: 4,
            window: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    /// Next line the stream expects.
    head: LineAddr,
    /// +1 or -1 line per step.
    direction: i64,
    /// Confirmations seen.
    confidence: u8,
    /// LRU stamp.
    last_use: u64,
}

/// The adaptive stream prefetcher.
///
/// # Examples
///
/// ```
/// use nvr_prefetch::{Prefetcher, StreamPrefetcher};
///
/// let p = StreamPrefetcher::default();
/// assert_eq!(p.name(), "Stream");
/// ```
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    cfg: StreamConfig,
    entries: Vec<StreamEntry>,
    tick: u64,
}

impl StreamPrefetcher {
    /// Creates a stream prefetcher with the given configuration.
    #[must_use]
    pub fn new(cfg: StreamConfig) -> Self {
        StreamPrefetcher {
            cfg,
            entries: Vec::new(),
            tick: 0,
        }
    }

    fn allocate(&mut self, line: LineAddr) {
        let entry = StreamEntry {
            head: line.step(1),
            direction: 1,
            confidence: 0,
            last_use: self.tick,
        };
        if self.entries.len() < self.cfg.streams {
            self.entries.push(entry);
        } else if let Some(victim) = self.entries.iter_mut().min_by_key(|e| e.last_use) {
            *victim = entry;
        }
    }

    /// Finds a stream this line extends: the line lies within `window`
    /// lines of the head, in the stream's direction.
    fn matching_stream(&mut self, line: LineAddr) -> Option<&mut StreamEntry> {
        let window = self.cfg.window;
        self.entries.iter_mut().find(|e| {
            let delta = line.index() as i64 - e.head.index() as i64;
            let along = delta * e.direction;
            (0..=window as i64).contains(&along)
        })
    }
}

impl Default for StreamPrefetcher {
    fn default() -> Self {
        StreamPrefetcher::new(StreamConfig::default())
    }
}

impl Prefetcher for StreamPrefetcher {
    fn name(&self) -> &'static str {
        "Stream"
    }

    fn observe(
        &mut self,
        event: &AccessEvent,
        _snoop: &SnoopState,
        _image: &MemoryImage,
        mem: &mut MemorySystem,
    ) {
        if !event.missed {
            return;
        }
        self.tick += 1;
        let line = event.addr.line();
        let tick = self.tick;
        let degree = self.cfg.degree;
        if let Some(e) = self.matching_stream(line) {
            e.confidence = e.confidence.saturating_add(1);
            e.last_use = tick;
            let direction = e.direction;
            e.head = LineAddr::new((line.index() as i64 + direction).max(0) as u64);
            if e.confidence >= 2 {
                // Confirmed stream: prefetch `degree` lines past the miss.
                let base = line.index() as i64;
                for k in 1..=degree as i64 {
                    let idx = base + k * direction;
                    if idx >= 0 {
                        mem.prefetch_line(LineAddr::new(idx as u64), event.cycle, false);
                    }
                }
            }
        } else {
            self.allocate(line);
        }
    }

    fn advance(
        &mut self,
        _from: Cycle,
        _to: Cycle,
        _snoop: &SnoopState,
        _image: &MemoryImage,
        _mem: &mut MemorySystem,
    ) {
        // Purely reactive: all work happens on observed misses.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::Addr;
    use nvr_mem::MemoryConfig;

    fn snoop() -> SnoopState {
        SnoopState {
            tile: 0,
            total_tiles: 1,
            index_base: Addr::new(0),
            elem_start: 0,
            elem_end: 0,
            elem_consumed: 0,
            gather: None,
            npu_load_in_flight: false,
            sparse_unit_idle: true,
        }
    }

    fn miss_at(line: u64) -> AccessEvent {
        AccessEvent::gather(0, 0, LineAddr::new(line).base(), true)
    }

    #[test]
    fn sequential_misses_trigger_prefetch() {
        let mut p = StreamPrefetcher::default();
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let s = snoop();
        for i in 0..6 {
            p.observe(&miss_at(100 + i), &s, &MemoryImage::new(), &mut mem);
        }
        let issued = mem.stats().l2.prefetch_issued.get();
        assert!(
            issued >= 4,
            "confirmed stream should prefetch, got {issued}"
        );
    }

    #[test]
    fn hits_do_not_train() {
        let mut p = StreamPrefetcher::default();
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let s = snoop();
        for i in 0..6 {
            let mut e = miss_at(100 + i);
            e.missed = false;
            p.observe(&e, &s, &MemoryImage::new(), &mut mem);
        }
        assert_eq!(mem.stats().l2.prefetch_issued.get(), 0);
    }

    #[test]
    fn random_misses_do_not_confirm() {
        let mut p = StreamPrefetcher::default();
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let s = snoop();
        let mut rng = nvr_common::Pcg32::seed_from_u64(3);
        for _ in 0..50 {
            p.observe(
                &miss_at(rng.gen_range(1 << 30)),
                &s,
                &MemoryImage::new(),
                &mut mem,
            );
        }
        // Sparse random lines almost never fall within a window of each
        // other, so (nearly) nothing is prefetched.
        assert!(mem.stats().l2.prefetch_issued.get() < 8);
    }

    #[test]
    fn descending_stream_detected() {
        let mut p = StreamPrefetcher::default();
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let s = snoop();
        // Descending accesses retrain direction via re-allocation windows.
        for i in 0..8 {
            p.observe(&miss_at(1000 - i), &s, &MemoryImage::new(), &mut mem);
        }
        // The ascending-window match still catches head-adjacent lines, so
        // at minimum the prefetcher does not crash and stays bounded.
        assert!(mem.stats().l2.prefetch_issued.get() <= 8 * 4);
    }

    #[test]
    fn table_capacity_is_bounded() {
        let mut p = StreamPrefetcher::new(StreamConfig {
            streams: 4,
            ..StreamConfig::default()
        });
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let s = snoop();
        for i in 0..100 {
            p.observe(&miss_at(i * 1_000_000), &s, &MemoryImage::new(), &mut mem);
        }
        assert!(p.entries.len() <= 4);
    }
}
