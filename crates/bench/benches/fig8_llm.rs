//! Criterion bench regenerating Fig. 8 in fast mode.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("fig8_llm_fast", |b| {
        b.iter(|| nvr_sim::figures::fig8::run(3, true))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
