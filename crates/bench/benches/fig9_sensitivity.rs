//! Criterion bench of a Fig. 9 grid subset.
use criterion::{criterion_group, criterion_main, Criterion};
use nvr_workloads::Scale;

fn bench(c: &mut Criterion) {
    c.bench_function("fig9_grid_subset", |b| {
        b.iter(|| nvr_sim::figures::fig9::run_subset(Scale::Tiny, 4, &[4, 16], &[64, 256]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
