//! Criterion bench regenerating Fig. 6a/b on a workload subset.
use criterion::{criterion_group, criterion_main, Criterion};
use nvr_workloads::{Scale, WorkloadId};

fn bench(c: &mut Criterion) {
    c.bench_function("fig6_acc_cov_subset", |b| {
        b.iter(|| {
            nvr_sim::figures::fig6::run_with_workloads(
                Scale::Tiny,
                2,
                &[WorkloadId::H2o, WorkloadId::Mk],
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
