//! Criterion bench of the Fig. 7 bandwidth-allocation collection.
use criterion::{criterion_group, criterion_main, Criterion};
use nvr_bench::bench_unit;
use nvr_sim::SystemKind;
use nvr_workloads::WorkloadId;

fn bench(c: &mut Criterion) {
    c.bench_function("fig7_traffic_unit", |b| {
        b.iter(|| {
            let o = bench_unit(WorkloadId::Gsabt, SystemKind::Nvr);
            o.result.mem.dram.demand_lines.get() + o.result.mem.dram.prefetch_lines.get()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
