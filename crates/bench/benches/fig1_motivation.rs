//! Criterion bench regenerating Fig. 1b at test scale.
use criterion::{criterion_group, criterion_main, Criterion};
use nvr_workloads::Scale;

fn bench(c: &mut Criterion) {
    c.bench_function("fig1b_sparsity_sweep", |b| {
        b.iter(|| nvr_sim::figures::fig1b::run(Scale::Tiny, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
