//! Criterion bench of the Fig. 5 unit of work: one workload under the
//! in-order baseline and under NVR.
use criterion::{criterion_group, criterion_main, Criterion};
use nvr_bench::bench_unit;
use nvr_sim::SystemKind;
use nvr_workloads::WorkloadId;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_latency");
    for system in [SystemKind::InOrder, SystemKind::OutOfOrder, SystemKind::Nvr] {
        g.bench_function(format!("ds_{}", system.label()), |b| {
            b.iter(|| bench_unit(WorkloadId::Ds, system))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
