//! Criterion bench of NVR ablation variants on one workload.
use criterion::{criterion_group, criterion_main, Criterion};
use nvr_common::DataWidth;
use nvr_core::{NvrConfig, NvrPrefetcher, TriggerPolicy};
use nvr_mem::{MemoryConfig, MemorySystem};
use nvr_npu::{NpuConfig, NpuEngine};
use nvr_workloads::{Scale, TileOrder, WorkloadId, WorkloadSpec};

fn run_with(cfg: NvrConfig) -> u64 {
    let spec = WorkloadSpec {
        width: DataWidth::Fp16,
        seed: 9,
        scale: Scale::Tiny,
        order: TileOrder::Natural,
    };
    let program = WorkloadId::Ds.build(&spec);
    let engine = NpuEngine::new(NpuConfig::default());
    let mut mem = MemorySystem::new(MemoryConfig::default());
    let mut nvr = NvrPrefetcher::new(cfg);
    engine.run(&program, &mut mem, &mut nvr).total_cycles
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("nvr_ablations");
    g.bench_function("default", |b| b.iter(|| run_with(NvrConfig::default())));
    g.bench_function("no_lbd", |b| {
        b.iter(|| {
            run_with(NvrConfig {
                use_lbd: false,
                ..NvrConfig::default()
            })
        })
    });
    g.bench_function("on_stall", |b| {
        b.iter(|| {
            run_with(NvrConfig {
                trigger: TriggerPolicy::OnStall,
                ..NvrConfig::default()
            })
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
