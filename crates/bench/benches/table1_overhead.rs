//! Criterion bench of the Table I storage model (pure computation).
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("table1_overhead_model", |b| {
        b.iter(|| nvr_core::overhead_report(black_box(16), black_box(16)).total_bits())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
