//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a binary here that regenerates
//! it (`cargo run --release -p nvr_bench --bin fig5`, etc.) and a Criterion
//! bench that times the regeneration. The root README.md maps experiment
//! ids to these targets.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use nvr_common::DataWidth;
use nvr_mem::MemoryConfig;
use nvr_sim::{run_system, RunOutcome, SystemKind};
use nvr_workloads::{Scale, TileOrder, WorkloadId, WorkloadSpec};

/// Seed used by all experiment binaries, so printed numbers are stable.
pub const EXPERIMENT_SEED: u64 = 2025;

/// The evaluation scale used by the experiment binaries.
#[must_use]
pub fn experiment_scale() -> Scale {
    Scale::Default
}

/// Worker-thread count for the experiment binaries: `--jobs N` (or `-j N`)
/// from the CLI, defaulting to 1 — the printed numbers are identical
/// either way (see `nvr_sim::sweep`), parallelism only changes wall clock.
///
/// # Panics
///
/// Exits the process with an error message when `--jobs` is malformed.
#[must_use]
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = match arg.as_str() {
            "--jobs" | "-j" => match it.next() {
                Some(v) => Some(v.as_str()),
                None => {
                    eprintln!("error: {arg} needs a value");
                    std::process::exit(2);
                }
            },
            _ => arg.strip_prefix("--jobs="),
        };
        if let Some(v) = value {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => return n,
                _ => {
                    eprintln!("error: --jobs needs a positive integer, got `{v}`");
                    std::process::exit(2);
                }
            }
        }
    }
    1
}

/// Runs one (workload, system) pair at bench scale — the unit of work the
/// Criterion benches time.
#[must_use]
pub fn bench_unit(workload: WorkloadId, system: SystemKind) -> RunOutcome {
    let spec = WorkloadSpec {
        width: DataWidth::Fp16,
        seed: EXPERIMENT_SEED,
        scale: Scale::Tiny,
        order: TileOrder::Natural,
    };
    let program = workload.build(&spec);
    run_system(&program, &MemoryConfig::default(), system)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_unit_runs() {
        let o = bench_unit(WorkloadId::St, SystemKind::Nvr);
        assert!(o.result.total_cycles > 0);
    }
}
