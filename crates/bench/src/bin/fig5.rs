//! Regenerates Fig. 5 (normalised latency, four width panels). `--jobs N`
//! parallelises.
use nvr_bench::{experiment_scale, jobs_from_args, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig5::run_jobs(experiment_scale(), EXPERIMENT_SEED, jobs_from_args())
    );
}
