//! Regenerates Fig. 5 (normalised latency, four width panels).
use nvr_bench::{experiment_scale, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig5::run(experiment_scale(), EXPERIMENT_SEED)
    );
}
