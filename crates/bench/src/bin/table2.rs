//! Regenerates Table II (workload inventory).
fn main() {
    println!("{}", nvr_sim::figures::table2::run());
}
