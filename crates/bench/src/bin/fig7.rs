//! Regenerates Fig. 7 (bandwidth allocation with/without NSB).
use nvr_bench::{experiment_scale, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig7::run(experiment_scale(), EXPERIMENT_SEED)
    );
}
