//! Regenerates Fig. 7 (bandwidth allocation with/without NSB). `--jobs N`
//! parallelises.
use nvr_bench::{experiment_scale, jobs_from_args, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig7::run_jobs(experiment_scale(), EXPERIMENT_SEED, jobs_from_args())
    );
}
