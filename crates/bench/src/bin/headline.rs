//! Recomputes the paper's headline claims. `--jobs N` parallelises.
use nvr_bench::{experiment_scale, jobs_from_args, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::headline::run_jobs(experiment_scale(), EXPERIMENT_SEED, jobs_from_args())
    );
}
