//! Recomputes the paper's headline claims.
use nvr_bench::{experiment_scale, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::headline::run(experiment_scale(), EXPERIMENT_SEED)
    );
}
