//! `perf` — pinned-grid simulator-throughput benchmark and the committed
//! perf-trajectory gate.
//!
//! Runs the pinned grid — every workload × every system, tiny scale,
//! natural order, FP16, seed 2025 — single-threaded, `--repeats` times,
//! and reports the best repeat's throughput:
//!
//! * **cells/sec** — grid cells simulated per wall-clock second;
//! * **sim-cycles/sec** — simulated cycles (timed runs only, base runs
//!   excluded) per wall-clock second. The simulated-cycle total is
//!   bit-exact across code changes (the determinism suite enforces it),
//!   so the ratio of `sim_cycles_per_sec` between two builds is a pure
//!   simulator-speed ratio.
//!
//! `--out PATH` writes the schema-documented JSON snapshot (see
//! `BENCH_10.json` at the repo root for the committed trajectory point);
//! `--check PATH` compares the fresh run against a committed snapshot and
//! fails (exit 1) on a >`--tolerance` (default 0.20) sim-cycles/sec
//! regression, or on *any* simulated-cycle-total mismatch — a bit-exactness
//! violation, reported regardless of speed. ARCHITECTURE.md "Simulator
//! performance" documents the snapshot schema and update procedure.

use std::process::ExitCode;

use nvr_bench::EXPERIMENT_SEED;
use nvr_common::DataWidth;
use nvr_sim::sweep::{run_sweep, SweepSpec};
use nvr_sim::SystemKind;
use nvr_workloads::{Scale, TileOrder, WorkloadId};

const USAGE: &str = "\
perf — pinned-grid simulator-throughput benchmark

USAGE:
  perf [--repeats N] [--out PATH] [--check PATH] [--tolerance F]

OPTIONS:
  --repeats N    timed repetitions of the grid; the best repeat is
                 reported (default: 3)
  --out PATH     write the JSON throughput snapshot
  --check PATH   compare against a committed snapshot; exit 1 on a
                 regression beyond the tolerance or on any simulated-
                 cycle-total mismatch
  --tolerance F  allowed fractional sim-cycles/sec regression for
                 --check (default: 0.20)
  --help         this text";

/// Identifier of the pinned grid, embedded in every snapshot so a check
/// against a snapshot of a *different* grid fails loudly.
const GRID: &str = "all-workloads/all-systems/tiny/natural/FP16/seed2025";

struct Args {
    repeats: usize,
    out: Option<String>,
    check: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        repeats: 3,
        out: None,
        check: None,
        tolerance: 0.20,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--repeats" => {
                args.repeats = value("--repeats")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
                if args.repeats == 0 {
                    return Err("--repeats must be at least 1".into());
                }
            }
            "--out" => args.out = Some(value("--out")?),
            "--check" => args.check = Some(value("--check")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// The pinned throughput grid. Single seed, single width, tiny scale:
/// small enough for CI, wide enough to exercise every system's hot path.
fn pinned_spec() -> SweepSpec {
    SweepSpec {
        workloads: WorkloadId::ALL.to_vec(),
        systems: SystemKind::ALL.to_vec(),
        scales: vec![Scale::Tiny],
        orders: vec![TileOrder::Natural],
        widths: vec![DataWidth::Fp16],
        seeds: vec![EXPERIMENT_SEED],
        ..SweepSpec::default()
    }
}

/// One measured snapshot of the pinned grid's throughput.
struct Snapshot {
    cells: usize,
    sim_cycles_total: u64,
    best_wall_us: u128,
    cells_per_sec: f64,
    sim_cycles_per_sec: f64,
}

impl Snapshot {
    /// The committed JSON rendition. Schema `nvr-perf-v1`:
    ///
    /// * `schema`, `grid` — format/grid identifiers, checked on compare;
    /// * `jobs`, `repeats`, `cells` — measurement shape;
    /// * `sim_cycles_total` — summed `total_cycles` of the timed runs
    ///   (bit-exact; compared exactly);
    /// * `best_wall_us` — best repeat's wall clock, microseconds
    ///   (host-dependent);
    /// * `cells_per_sec`, `sim_cycles_per_sec` — throughput of the best
    ///   repeat (host-dependent; gated with a tolerance).
    fn to_json(&self, repeats: usize) -> String {
        format!(
            "{{\n  \"schema\": \"nvr-perf-v1\",\n  \"grid\": \"{}\",\n  \
             \"jobs\": 1,\n  \"repeats\": {},\n  \"cells\": {},\n  \
             \"sim_cycles_total\": {},\n  \"best_wall_us\": {},\n  \
             \"cells_per_sec\": {:.1},\n  \"sim_cycles_per_sec\": {:.1}\n}}\n",
            GRID,
            repeats,
            self.cells,
            self.sim_cycles_total,
            self.best_wall_us,
            self.cells_per_sec,
            self.sim_cycles_per_sec,
        )
    }
}

/// Extracts a numeric field from a `nvr-perf-v1` JSON snapshot (flat
/// schema, so a positional scan is sufficient — no JSON dependency).
fn json_num(src: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = src.find(&pat)? + pat.len();
    let rest = src[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a string field from a `nvr-perf-v1` JSON snapshot.
fn json_str<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = src.find(&pat)? + pat.len();
    let rest = src[at..].trim_start().strip_prefix('"')?;
    rest.split('"').next()
}

fn measure(repeats: usize) -> Snapshot {
    let spec = pinned_spec();
    let mut best_wall = None;
    let mut sim_cycles_total = 0u64;
    let mut cells = 0usize;
    for rep in 0..repeats {
        let results = run_sweep(&spec, 1);
        let total: u64 = results
            .cells
            .iter()
            .map(|c| c.outcome.result.total_cycles)
            .sum();
        if rep == 0 {
            sim_cycles_total = total;
            cells = results.cells.len();
        } else {
            assert_eq!(
                total, sim_cycles_total,
                "simulated-cycle total must be identical across repeats"
            );
        }
        let wall = results.wall;
        eprintln!(
            "repeat {}/{}: {} cells in {} us",
            rep + 1,
            repeats,
            results.cells.len(),
            wall.as_micros()
        );
        best_wall = Some(best_wall.map_or(wall, |b: std::time::Duration| b.min(wall)));
    }
    let best = best_wall.expect("at least one repeat");
    let secs = best.as_secs_f64().max(1e-9);
    Snapshot {
        cells,
        sim_cycles_total,
        best_wall_us: best.as_micros(),
        cells_per_sec: cells as f64 / secs,
        sim_cycles_per_sec: sim_cycles_total as f64 / secs,
    }
}

/// Compares the fresh snapshot against a committed baseline file.
/// Returns an error description when the gate fails.
fn check(fresh: &Snapshot, baseline_src: &str, tolerance: f64) -> Result<String, String> {
    if json_str(baseline_src, "schema") != Some("nvr-perf-v1") {
        return Err("baseline is not an nvr-perf-v1 snapshot".into());
    }
    if json_str(baseline_src, "grid") != Some(GRID) {
        return Err(format!(
            "baseline grid {:?} does not match this binary's pinned grid {GRID:?}",
            json_str(baseline_src, "grid").unwrap_or("<missing>")
        ));
    }
    let base_total = json_num(baseline_src, "sim_cycles_total")
        .ok_or("baseline missing sim_cycles_total")? as u64;
    if base_total != fresh.sim_cycles_total {
        return Err(format!(
            "simulated-cycle total changed: baseline {}, fresh {} — \
             simulation outputs are no longer bit-exact",
            base_total, fresh.sim_cycles_total
        ));
    }
    let base_rate = json_num(baseline_src, "sim_cycles_per_sec")
        .ok_or("baseline missing sim_cycles_per_sec")?;
    let floor = base_rate * (1.0 - tolerance);
    if fresh.sim_cycles_per_sec < floor {
        return Err(format!(
            "sim-cycles/sec regressed beyond {:.0}% tolerance: baseline {:.1}, \
             floor {:.1}, fresh {:.1}",
            tolerance * 100.0,
            base_rate,
            floor,
            fresh.sim_cycles_per_sec
        ));
    }
    Ok(format!(
        "perf gate passed: fresh {:.1} sim-cycles/sec vs baseline {:.1} \
         (floor {:.1} at {:.0}% tolerance)",
        fresh.sim_cycles_per_sec,
        base_rate,
        floor,
        tolerance * 100.0
    ))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let fresh = measure(args.repeats);
    println!(
        "pinned grid {GRID}: {} cells, {} simulated cycles",
        fresh.cells, fresh.sim_cycles_total
    );
    println!(
        "best of {}: {} us wall — {:.1} cells/sec, {:.1} sim-cycles/sec",
        args.repeats, fresh.best_wall_us, fresh.cells_per_sec, fresh.sim_cycles_per_sec
    );
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, fresh.to_json(args.repeats)) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    if let Some(path) = &args.check {
        let baseline = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: reading baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match check(&fresh, &baseline, args.tolerance) {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("perf gate FAILED: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
