//! Regenerates Fig. 7b′ — DRAM channel scaling: InO vs NVR vs NVR+NSB at
//! 1/2/4 line-interleaved channels per workload, with per-channel
//! utilisation and prefetch queue-delay percentiles. `--jobs N`
//! parallelises.
use nvr_bench::{experiment_scale, jobs_from_args, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig7b::run_jobs(experiment_scale(), EXPERIMENT_SEED, jobs_from_args())
    );
}
