//! Regenerates Fig. 6b′ — the prefetch-timeliness breakdown: measured
//! timely / late / evicted-unused outcomes and the issue→use slack
//! histogram, for the pipelined cross-tile lookahead vs its
//! single-window (`lookahead_tiles = 1`) baseline. `--jobs N`
//! parallelises.
use nvr_bench::{experiment_scale, jobs_from_args, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig6b::run_jobs(experiment_scale(), EXPERIMENT_SEED, jobs_from_args())
    );
}
