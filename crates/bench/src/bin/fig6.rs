//! Regenerates Fig. 6 (accuracy, coverage, pollution, data movement).
//! `--jobs N` parallelises.
use nvr_bench::{experiment_scale, jobs_from_args, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig6::run_jobs(experiment_scale(), EXPERIMENT_SEED, jobs_from_args())
    );
}
