//! Regenerates Fig. 6 (accuracy, coverage, data-movement optimisation).
use nvr_bench::{experiment_scale, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig6::run(experiment_scale(), EXPERIMENT_SEED)
    );
}
