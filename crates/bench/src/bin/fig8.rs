//! Regenerates Fig. 8 (LLM system-level evaluation). `--jobs N`
//! parallelises.
use nvr_bench::{jobs_from_args, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig8::run_jobs(EXPERIMENT_SEED, false, jobs_from_args())
    );
}
