//! Regenerates Fig. 8 (LLM system-level evaluation).
use nvr_bench::EXPERIMENT_SEED;

fn main() {
    println!("{}", nvr_sim::figures::fig8::run(EXPERIMENT_SEED, false));
}
