//! Regenerates Fig. 1b (motivation: parameter reduction vs actual speedup).
//! `--jobs N` parallelises.
use nvr_bench::{experiment_scale, jobs_from_args, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig1b::run_jobs(experiment_scale(), EXPERIMENT_SEED, jobs_from_args())
    );
}
