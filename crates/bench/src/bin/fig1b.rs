//! Regenerates Fig. 1b (motivation: parameter reduction vs actual speedup).
use nvr_bench::{experiment_scale, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig1b::run(experiment_scale(), EXPERIMENT_SEED)
    );
}
