//! Regenerates Table I (hardware storage overhead).
fn main() {
    println!("{}", nvr_sim::figures::table1::run());
}
