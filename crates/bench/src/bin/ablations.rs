//! Ablations of NVR's design choices (the DESIGN.md ablation index):
//! LBD on/off, trigger policy, VMIG width, fuzzy factor, lookahead budget.

use nvr_bench::EXPERIMENT_SEED;
use nvr_common::DataWidth;
use nvr_core::{NvrConfig, NvrPrefetcher, TriggerPolicy};
use nvr_mem::{MemoryConfig, MemorySystem};
use nvr_npu::{NpuConfig, NpuEngine};
use nvr_prefetch::NullPrefetcher;
use nvr_workloads::{Scale, TileOrder, WorkloadId, WorkloadSpec};

fn run_variant(label: &str, cfg: NvrConfig, workload: WorkloadId) {
    let spec = WorkloadSpec {
        width: DataWidth::Fp16,
        seed: EXPERIMENT_SEED,
        scale: Scale::Default,
        order: TileOrder::Natural,
    };
    let program = workload.build(&spec);
    let engine = NpuEngine::new(NpuConfig::default());

    let mut mem_base = MemorySystem::new(MemoryConfig::default());
    let base = engine.run(&program, &mut mem_base, &mut NullPrefetcher::new());

    let mut mem = MemorySystem::new(MemoryConfig::default());
    let mut nvr = NvrPrefetcher::new(cfg);
    let r = engine.run(&program, &mut mem, &mut nvr);
    println!(
        "{:>28} on {:>5}: {:>10} cycles, speedup {:>5.2}x, accuracy {:.2}, pack {:.1}",
        label,
        workload.short(),
        r.total_cycles,
        base.total_cycles as f64 / r.total_cycles as f64,
        mem.prefetch_accuracy(),
        nvr.vmig().mean_pack_width(),
    );
}

/// NSB associativity sweep (§IV-G argues high-way mapping): same capacity,
/// varying ways.
fn nsb_associativity_ablation() {
    use nvr_mem::CacheConfig;
    println!("NSB associativity ablation (16 KB NSB, H2O, NVR+NSB)\n");
    let spec = WorkloadSpec {
        width: DataWidth::Fp16,
        seed: EXPERIMENT_SEED,
        scale: Scale::Default,
        order: TileOrder::Natural,
    };
    let program = WorkloadId::H2o.build(&spec);
    let engine = NpuEngine::new(NpuConfig::default());
    for ways in [1u64, 2, 4, 8, 16] {
        let nsb = CacheConfig {
            name: "NSB",
            size_bytes: 16 * 1024,
            ways,
            hit_latency: 2,
            mshr_entries: 16,
            policy: nvr_mem::RetentionPolicy::ScoredReuse,
        };
        let mem_cfg = MemoryConfig::default().with_nsb(nsb);
        let mut mem = MemorySystem::new(mem_cfg);
        let mut nvr = NvrPrefetcher::new(NvrConfig::with_nsb());
        let r = engine.run(&program, &mut mem, &mut nvr);
        let s = mem.stats();
        let nsb_stats = s.nsb.as_ref().expect("nsb present");
        println!(
            "  {ways:>2}-way: {:>9} cycles, NSB hit rate {:>5.1}%, NSB evictions {}",
            r.total_cycles,
            100.0 * (1.0 - nsb_stats.miss_rate()),
            nsb_stats.evictions.get(),
        );
    }
    println!();
}

fn main() {
    println!("NVR design ablations (vs in-order no-prefetch baseline)\n");
    nsb_associativity_ablation();
    let default = NvrConfig::default;

    for workload in [WorkloadId::Ds, WorkloadId::Gat, WorkloadId::Mk] {
        run_variant("default", default(), workload);
        run_variant(
            "no LBD (fixed windows)",
            NvrConfig {
                use_lbd: false,
                ..default()
            },
            workload,
        );
        run_variant(
            "stall-triggered (DVR-style)",
            NvrConfig {
                trigger: TriggerPolicy::OnStall,
                ..default()
            },
            workload,
        );
        for width in [4usize, 8, 32] {
            run_variant(
                match width {
                    4 => "VMIG width 4",
                    8 => "VMIG width 8",
                    _ => "VMIG width 32",
                },
                NvrConfig {
                    vector_width: width,
                    ..default()
                },
                workload,
            );
        }
        run_variant(
            "no fuzzy range (factor 1.0)",
            NvrConfig {
                fuzzy_factor: 1.0,
                ..default()
            },
            workload,
        );
        for lines in [128usize, 2048] {
            run_variant(
                if lines == 128 {
                    "shallow lookahead (128 ln)"
                } else {
                    "deep lookahead (2048 ln)"
                },
                NvrConfig {
                    lookahead_lines: lines,
                    ..default()
                },
                workload,
            );
        }
        println!();
    }
}
