//! Regenerates Fig. 9 (NSB vs L2 sizing sensitivity).
use nvr_bench::{experiment_scale, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig9::run(experiment_scale(), EXPERIMENT_SEED)
    );
}
