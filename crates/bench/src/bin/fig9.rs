//! Regenerates Fig. 9 (NSB vs L2 sizing + density sensitivity). `--jobs N`
//! parallelises.
use nvr_bench::{experiment_scale, jobs_from_args, EXPERIMENT_SEED};

fn main() {
    println!(
        "{}",
        nvr_sim::figures::fig9::run_jobs(experiment_scale(), EXPERIMENT_SEED, jobs_from_args())
    );
}
