//! System-level LLM inference model (the paper's LLMCompass substitute).
//!
//! Fig. 8 evaluates NVR at the level of a whole transformer: per-layer miss
//! behaviour (QKV projection, QKᵀ scores, AV aggregation) and end-to-end
//! prefill/decode throughput as a function of off-chip bandwidth. This
//! crate provides:
//!
//! * [`LlmConfig`] — transformer shapes and per-token byte/compute
//!   accounting (the roofline inputs);
//! * [`layers`] — NPU-program builders for the three attention sub-layers
//!   of a sparse-attention decode step, run through the cache simulator by
//!   the `nvr-sim` harness;
//! * [`throughput`] — the roofline combinator that folds measured sparse
//!   gather cycles into tokens/second versus bandwidth curves.
//!
//! The split keeps this crate simulation-free: the harness measures, this
//! crate models.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod layers;
pub mod model;
pub mod throughput;

pub use layers::{av_program, qkt_program, qkv_program};
pub use model::LlmConfig;
pub use throughput::{decode_throughput, prefill_throughput, ThroughputPoint};
