//! Roofline throughput combinator for Fig. 8b/c.
//!
//! Prefill is compute-bound, decode IO-bound (§V-D). Tokens/second at a
//! given off-chip bandwidth folds three terms together:
//!
//! * dense weight streaming — `weight_bytes / bandwidth`;
//! * dense compute — MACs through the systolic array's peak rate;
//! * sparse KV gathers — *measured* cycles from the cache simulator, which
//!   is where NVR changes the curve.
//!
//! The harness (`nvr-sim::figures::fig8`) measures the sparse term by
//! running [`crate::layers`] programs against a memory system configured
//! with each bandwidth point, then calls these combinators.

use crate::model::LlmConfig;

/// One point of a throughput-vs-bandwidth curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Off-chip bandwidth, bytes per cycle.
    pub bytes_per_cycle: u64,
    /// Tokens per mega-cycle (scale-free; the paper normalises anyway).
    pub tokens_per_mcycle: f64,
}

/// Peak MACs per cycle of the modelled LLM-class NPU (a 128x128 array,
/// LLMCompass's default-scale accelerator rather than the embedded Gemmini).
const PEAK_MACS_PER_CYCLE: u64 = 16_384;

/// Decode throughput at one bandwidth point.
///
/// `sparse_cycles_per_step` is the measured wall-clock of the sparse
/// attention gathers for one decode step at this bandwidth (summed over
/// QKᵀ and AV and scaled to all heads/layers by the caller).
///
/// # Examples
///
/// ```
/// use nvr_llm::{decode_throughput, LlmConfig};
///
/// let cfg = LlmConfig::default();
/// let fast = decode_throughput(&cfg, 1024, 64, 10_000.0);
/// let slow = decode_throughput(&cfg, 1024, 8, 10_000.0);
/// assert!(fast.tokens_per_mcycle > slow.tokens_per_mcycle);
/// ```
#[must_use]
pub fn decode_throughput(
    cfg: &LlmConfig,
    l: usize,
    bytes_per_cycle: u64,
    sparse_cycles_per_step: f64,
) -> ThroughputPoint {
    // Weights stream once per decode step, amortised across the batch.
    let weight_cycles =
        cfg.weight_bytes() as f64 / (bytes_per_cycle.max(1) * cfg.decode_batch as u64) as f64;
    let compute_cycles = cfg.decode_macs(l) as f64 / PEAK_MACS_PER_CYCLE as f64;
    // Dense streaming overlaps compute; the sparse gathers serialise
    // behind them (the decoupled-access pattern of the in-order NPU).
    let step = weight_cycles.max(compute_cycles) + sparse_cycles_per_step;
    ThroughputPoint {
        bytes_per_cycle,
        tokens_per_mcycle: 1.0e6 / step,
    }
}

/// Prefill throughput at one bandwidth point.
///
/// `sparse_cycles_total` is the measured sparse-gather wall-clock for the
/// whole prompt at this bandwidth (0 for perfectly dense prefill).
///
/// # Examples
///
/// ```
/// use nvr_llm::{prefill_throughput, LlmConfig};
///
/// let cfg = LlmConfig::default();
/// let p = prefill_throughput(&cfg, 1024, 1024, 0.0);
/// let q = prefill_throughput(&cfg, 1024, 2048, 0.0);
/// // Far past the roofline knee, bandwidth no longer helps.
/// assert!((p.tokens_per_mcycle - q.tokens_per_mcycle).abs() / p.tokens_per_mcycle < 0.01);
/// ```
#[must_use]
pub fn prefill_throughput(
    cfg: &LlmConfig,
    l: usize,
    bytes_per_cycle: u64,
    sparse_cycles_total: f64,
) -> ThroughputPoint {
    // Weights stream once for the whole prompt (reused across tokens);
    // activations/KV writes add one cache-size pass.
    let bytes = cfg.weight_bytes() + cfg.kv_cache_bytes(l);
    let mem_cycles = bytes as f64 / bytes_per_cycle.max(1) as f64;
    let compute_cycles = cfg.prefill_macs(l) as f64 / PEAK_MACS_PER_CYCLE as f64;
    let total = mem_cycles.max(compute_cycles) + sparse_cycles_total;
    ThroughputPoint {
        bytes_per_cycle,
        tokens_per_mcycle: l as f64 * 1.0e6 / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_is_bandwidth_sensitive() {
        let cfg = LlmConfig::default();
        let lo = decode_throughput(&cfg, 2048, 8, 0.0);
        let hi = decode_throughput(&cfg, 2048, 256, 0.0);
        assert!(
            hi.tokens_per_mcycle > 5.0 * lo.tokens_per_mcycle,
            "decode should scale with bandwidth ({} vs {})",
            hi.tokens_per_mcycle,
            lo.tokens_per_mcycle
        );
    }

    #[test]
    fn prefill_saturates_at_compute_roof() {
        let cfg = LlmConfig::default();
        let l = 2048;
        let mid = prefill_throughput(&cfg, l, 256, 0.0);
        let hi = prefill_throughput(&cfg, l, 4096, 0.0);
        let gain = hi.tokens_per_mcycle / mid.tokens_per_mcycle;
        assert!(gain < 1.5, "prefill should saturate (gain {gain})");
    }

    #[test]
    fn sparse_stalls_reduce_throughput() {
        let cfg = LlmConfig::default();
        let clean = decode_throughput(&cfg, 1024, 64, 0.0);
        let stalled = decode_throughput(&cfg, 1024, 64, 500_000.0);
        assert!(clean.tokens_per_mcycle > stalled.tokens_per_mcycle);
    }

    #[test]
    fn longer_sequences_cost_more_per_decode_step() {
        let cfg = LlmConfig::default();
        // Same measured sparse time; compute grows with k = l/ratio.
        let short = decode_throughput(&cfg, 512, 16, 1000.0);
        let long = decode_throughput(&cfg, 4096, 16, 1000.0);
        assert!(short.tokens_per_mcycle >= long.tokens_per_mcycle);
    }
}
