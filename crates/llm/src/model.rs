//! Transformer shapes and roofline accounting.

use nvr_common::{DataWidth, NvrError};

/// Configuration of the modelled decoder-only transformer.
///
/// # Examples
///
/// ```
/// use nvr_llm::LlmConfig;
///
/// let cfg = LlmConfig::default();
/// assert!(cfg.weight_bytes() > 0);
/// cfg.validate()?;
/// # Ok::<(), nvr_common::NvrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlmConfig {
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Decoder layers.
    pub layers: usize,
    /// Sparsity ratio of the KV selection: keep 1 in `kv_keep_ratio` keys
    /// (Double-Sparsity-style top-k attention).
    pub kv_keep_ratio: usize,
    /// Decode batch size: weight streaming amortises across this many
    /// concurrent sequences (KV gathers do not — they are per-sequence,
    /// which is exactly why sparse attention dominates decode IO).
    pub decode_batch: usize,
    /// Operand width.
    pub width: DataWidth,
}

impl LlmConfig {
    /// Head dimension (`hidden / heads`).
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Selected keys per query at sequence length `l`.
    #[must_use]
    pub fn top_k(&self, l: usize) -> usize {
        (l / self.kv_keep_ratio).max(1)
    }

    /// Total parameter bytes (QKV/O projections + a 4x MLP per layer).
    #[must_use]
    pub fn weight_bytes(&self) -> u64 {
        let h = self.hidden as u64;
        // 4 h^2 (Q,K,V,O) + 8 h^2 (up+down 4x MLP) per layer.
        let per_layer = 12 * h * h;
        per_layer * self.layers as u64 * self.width.bytes()
    }

    /// KV-cache bytes at sequence length `l`.
    #[must_use]
    pub fn kv_cache_bytes(&self, l: usize) -> u64 {
        2 * (l as u64) * self.hidden as u64 * self.layers as u64 * self.width.bytes()
    }

    /// MAC operations per decode step (one token through the stack).
    #[must_use]
    pub fn decode_macs(&self, l: usize) -> u64 {
        let h = self.hidden as u64;
        let k = self.top_k(l) as u64;
        // Projections + MLP: 12 h^2; sparse attention: 2 k h per layer.
        (12 * h * h + 2 * k * h) * self.layers as u64
    }

    /// MAC operations to prefill `l` tokens.
    #[must_use]
    pub fn prefill_macs(&self, l: usize) -> u64 {
        let h = self.hidden as u64;
        let l64 = l as u64;
        // Dense attention during prefill: l^2 h per layer (causal halves it).
        (12 * h * h * l64 + l64 * l64 * h / 2) * self.layers as u64
    }

    /// Checks the shape is consistent.
    ///
    /// # Errors
    ///
    /// Returns [`NvrError::Config`] if `hidden` is not divisible by `heads`
    /// or any field is zero.
    pub fn validate(&self) -> Result<(), NvrError> {
        if self.hidden == 0
            || self.heads == 0
            || self.layers == 0
            || self.kv_keep_ratio == 0
            || self.decode_batch == 0
        {
            return Err(NvrError::Config("LLM shape fields must be non-zero".into()));
        }
        if !self.hidden.is_multiple_of(self.heads) {
            return Err(NvrError::Config(format!(
                "hidden {} not divisible by heads {}",
                self.hidden, self.heads
            )));
        }
        Ok(())
    }
}

impl Default for LlmConfig {
    /// A 1B-class decoder: 2048 hidden, 16 heads, 24 layers, 16x KV
    /// sparsity, FP16.
    fn default() -> Self {
        LlmConfig {
            hidden: 2048,
            heads: 16,
            layers: 24,
            kv_keep_ratio: 16,
            decode_batch: 64,
            width: DataWidth::Fp16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_consistent() {
        let cfg = LlmConfig::default();
        cfg.validate().expect("valid");
        assert_eq!(cfg.head_dim(), 128);
        assert_eq!(cfg.top_k(4096), 256);
    }

    #[test]
    fn weight_bytes_scale_with_width() {
        let fp16 = LlmConfig::default();
        let int8 = LlmConfig {
            width: DataWidth::Int8,
            ..fp16
        };
        assert_eq!(fp16.weight_bytes(), 2 * int8.weight_bytes());
    }

    #[test]
    fn prefill_dominates_decode_compute() {
        let cfg = LlmConfig::default();
        assert!(cfg.prefill_macs(1024) > 100 * cfg.decode_macs(1024));
    }

    #[test]
    fn invalid_shapes_rejected() {
        let bad = LlmConfig {
            hidden: 100,
            heads: 16,
            ..LlmConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = LlmConfig {
            layers: 0,
            ..LlmConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn kv_cache_grows_linearly() {
        let cfg = LlmConfig::default();
        assert_eq!(cfg.kv_cache_bytes(2048), 2 * cfg.kv_cache_bytes(1024));
    }
}
