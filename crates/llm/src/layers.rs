//! NPU programs for the three attention sub-layers of Fig. 8a.
//!
//! A sparse-attention decode step decomposes into:
//!
//! * **QKV** — dense projections: streaming weight reads, no gathers;
//! * **QKᵀ** — score computation against the *selected* K rows: top-k
//!   gathers over the K cache;
//! * **AV**  — aggregation of the selected V rows: gathers over the V cache
//!   with the same indices (a disjoint array, so no incidental reuse).
//!
//! Each builder returns a self-contained [`NpuProgram`] the harness runs
//! with and without NVR to reproduce the per-layer batch/element miss rates.

use nvr_common::rng::Zipf;
use nvr_common::{Addr, Pcg32, Region};
use nvr_npu::SystolicArray;
use nvr_trace::{GatherDesc, MemoryImage, NpuProgram, SparseFunc, TileOp};

use crate::model::LlmConfig;

/// Index array base for the layer programs.
const INDEX_BASE: Addr = Addr::new(0x1000_0000);
/// K-cache base.
const K_BASE: Addr = Addr::new(0x10_0000_0000);
/// V-cache base.
const V_BASE: Addr = Addr::new(0x20_0000_0000);

/// Steps (query tokens) simulated per layer program.
const STEPS: usize = 48;
/// Hot-set share of selections (attention sinks + recency).
const HOT_FRACTION: f64 = 0.7;

/// Builds the dense QKV projection program: weight streaming + GEMV, no
/// sparse gathers (its miss traffic is DMA, not cache misses).
#[must_use]
pub fn qkv_program(cfg: &LlmConfig, l: usize) -> NpuProgram {
    let sa = SystolicArray::gemmini_default();
    let h = cfg.hidden;
    let per_step_weight_bytes = 4 * (h as u64) * (h as u64) * cfg.width.bytes();
    let tiles: Vec<TileOp> = (0..STEPS)
        .map(|id| TileOp {
            id,
            index_region: Region::empty(),
            gather: None,
            dma_bytes: per_step_weight_bytes,
            compute_cycles: sa.gemm_cycles(1, h, 4 * h),
            store_bytes: (h as u64) * cfg.width.bytes(),
        })
        .collect();
    let _ = l;
    NpuProgram {
        name: "QKV".into(),
        width: cfg.width,
        tiles,
        image: MemoryImage::new(),
    }
}

/// Top-k selections shared by the QKᵀ and AV builders: deterministic in
/// `(cfg, l, seed)` so both layers gather the same rows, as in a real step.
fn select_indices(cfg: &LlmConfig, l: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = Pcg32::seed_with_stream(seed, 0xA77);
    let k = cfg.top_k(l);
    let hot = (l / 8).max(16);
    let zipf = Zipf::new(hot, 1.1);
    (0..STEPS)
        .map(|_| {
            let mut chosen = std::collections::BTreeSet::new();
            while chosen.len() < k.min(l) {
                let key = if rng.gen_bool(HOT_FRACTION) {
                    zipf.sample(&mut rng) as u32
                } else {
                    rng.gen_range(l as u64) as u32
                };
                chosen.insert(key);
            }
            chosen.into_iter().collect()
        })
        .collect()
}

fn gather_layer(
    name: &str,
    cfg: &LlmConfig,
    l: usize,
    seed: u64,
    ia_base: Addr,
    compute_scale: u64,
) -> NpuProgram {
    let sa = SystolicArray::gemmini_default();
    let row_bytes = cfg.head_dim() as u64 * cfg.width.bytes();
    let selections = select_indices(cfg, l, seed);
    let mut flat = Vec::new();
    let mut tiles = Vec::with_capacity(selections.len());
    for (id, sel) in selections.into_iter().enumerate() {
        let start = INDEX_BASE.offset(flat.len() as u64 * 4);
        let bytes = sel.len() as u64 * 4;
        let k = sel.len();
        flat.extend(sel);
        tiles.push(TileOp {
            id,
            index_region: Region::new(start, bytes),
            gather: Some(GatherDesc {
                func: SparseFunc::Affine { ia_base, row_bytes },
                batch: 16,
            }),
            dma_bytes: row_bytes, // the query / score vector
            compute_cycles: compute_scale * sa.sparse_mac_cycles(k, cfg.head_dim()),
            store_bytes: row_bytes,
        });
    }
    let mut image = MemoryImage::new();
    image.add_u32_segment(INDEX_BASE, flat);
    let program = NpuProgram {
        name: name.into(),
        width: cfg.width,
        tiles,
        image,
    };
    program.assert_valid();
    program
}

/// Builds the QKᵀ score program: top-k gathers over the K cache.
#[must_use]
pub fn qkt_program(cfg: &LlmConfig, l: usize, seed: u64) -> NpuProgram {
    gather_layer("QKT", cfg, l, seed, K_BASE, 1)
}

/// Builds the AV aggregation program: the same selections gathered from
/// the (disjoint) V cache.
#[must_use]
pub fn av_program(cfg: &LlmConfig, l: usize, seed: u64) -> NpuProgram {
    gather_layer("AV", cfg, l, seed, V_BASE, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qkv_is_dense() {
        let p = qkv_program(&LlmConfig::default(), 1024);
        assert!(p.tiles.iter().all(|t| t.gather.is_none()));
        assert!(p.stats().dma_bytes > 0);
    }

    #[test]
    fn qkt_and_av_share_selections() {
        let cfg = LlmConfig::default();
        let a = qkt_program(&cfg, 2048, 5);
        let b = av_program(&cfg, 2048, 5);
        assert_eq!(
            a.tiles[0].index_values(&a.image),
            b.tiles[0].index_values(&b.image)
        );
        // ...but gather from different caches.
        let base = |p: &NpuProgram| match p.tiles[0].gather.expect("gather").func {
            SparseFunc::Affine { ia_base, .. } => ia_base,
            SparseFunc::TableLookup { .. } => unreachable!("affine layers"),
        };
        assert_ne!(base(&a), base(&b));
    }

    #[test]
    fn k_scales_with_sequence_length() {
        let cfg = LlmConfig::default();
        let short = qkt_program(&cfg, 1024, 1);
        let long = qkt_program(&cfg, 4096, 1);
        assert_eq!(
            4 * short.tiles[0].index_count(),
            long.tiles[0].index_count()
        );
    }

    #[test]
    fn indices_within_sequence() {
        let cfg = LlmConfig::default();
        let l = 2048;
        let p = qkt_program(&cfg, l, 9);
        for t in &p.tiles {
            assert!(t.index_values(&p.image).iter().all(|&v| (v as usize) < l));
        }
    }
}
