//! The NVR controller: runahead orchestration (§III, §IV-A/C).
//!
//! The controller monitors CPU and NPU state via the snoopers and, whenever
//! an NPU load is in flight and the sparse-operators unit is idle, advances
//! a speculative *runahead pointer* over future tiles:
//!
//! 1. **window prediction** — exact bounds for the tile at the ROB head
//!    (sparse-unit registers); LBD-chained predictions beyond it;
//! 2. **index fetch** — the window's index lines are prefetched (SD-guided
//!    stream loads) and the runahead thread waits for their fills — this is
//!    real speculative execution, never oracle access;
//! 3. **chain resolution** — the PIE evaluates `sparse_func` on the fetched
//!    index values, `vector_width` lanes per cycle, scheduling intermediate
//!    table probes for two-level chains;
//! 4. **vector issue** — resolved target lines drain through the VMIG as
//!    one vectorised prefetch per cycle, filling L2 (and the NSB when
//!    configured).
//!
//! All work is paced by an internal clock that only moves inside the
//! `[from, to)` windows the engine grants — idle periods of the sparse
//! unit — so NVR's speculation consumes exactly the slack resources the
//! paper claims (§III Q&A3).

use nvr_common::{Addr, Cycle};
use nvr_mem::MemorySystem;
use nvr_prefetch::Prefetcher;
use nvr_trace::event::PC_INDEX_LOAD;
use nvr_trace::{AccessEvent, EventKind, MemoryImage, SnoopState};

use crate::config::{NvrConfig, TriggerPolicy};
use crate::loop_bound::{LoopBoundDetector, Window};
use crate::sparse_chain::SparseChainDetector;
use crate::stride_detector::StrideDetector;
use crate::vmig::Vmig;

/// Progress of the runahead thread within one speculative tile.
#[derive(Debug, Clone)]
enum Phase {
    /// Index lines prefetched; waiting until `ready` before reading values.
    FetchIndex { window: Window, ready: Cycle },
    /// Reading values / evaluating `sparse_func` group by group.
    Resolve { window: Window, next_elem: u64 },
    /// Two-level chains: waiting for probe fills of the current group.
    ProbeWait {
        window: Window,
        next_elem: u64,
        probes: Vec<Addr>,
        ready: Cycle,
    },
}

#[derive(Debug, Clone)]
struct Runahead {
    phase: Phase,
}

impl Runahead {
    /// The element window this episode covers.
    fn window(&self) -> Window {
        match self.phase {
            Phase::FetchIndex { window, .. }
            | Phase::Resolve { window, .. }
            | Phase::ProbeWait { window, .. } => window,
        }
    }
}

/// What the runahead thread accomplished in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepOutcome {
    /// Useful work happened (fetch issued, group resolved, window opened).
    Worked,
    /// Blocked on a speculative fill until the given cycle.
    Blocked(Cycle),
    /// No work available (depth bound reached or kernel exhausted).
    Idle,
}

/// The NVR prefetcher (see module docs).
///
/// # Examples
///
/// ```
/// use nvr_core::{NvrConfig, NvrPrefetcher};
/// use nvr_prefetch::Prefetcher;
///
/// let nvr = NvrPrefetcher::new(NvrConfig::with_nsb());
/// assert!(nvr.fills_nsb());
/// ```
#[derive(Debug, Clone)]
pub struct NvrPrefetcher {
    cfg: NvrConfig,
    sd: StrideDetector,
    lbd: LoopBoundDetector,
    scd: SparseChainDetector,
    vmig: Vmig,
    clock: Cycle,
    state: Option<Runahead>,
    current_tile: usize,
    miss_seen_in_tile: bool,
    /// Monotone element-space cursor: everything below it has either been
    /// demanded by the NPU or already resolved by runahead. Guarantees each
    /// index element is speculatively executed at most once, so restarted
    /// runahead never re-floods the cache with shifted re-predictions.
    covered_until: u64,
}

impl NvrPrefetcher {
    /// Creates an NVR instance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NvrConfig::validate`].
    #[must_use]
    pub fn new(cfg: NvrConfig) -> Self {
        cfg.validate().expect("nvr config must be valid");
        NvrPrefetcher {
            sd: StrideDetector::new(cfg.vector_width),
            lbd: LoopBoundDetector::new(cfg.fuzzy_factor),
            scd: SparseChainDetector::new(),
            vmig: Vmig::new(cfg.vmig_batch_lines),
            clock: 0,
            state: None,
            current_tile: 0,
            miss_seen_in_tile: false,
            covered_until: 0,
            cfg,
        }
    }

    /// The VMIG issue statistics (vectors, lines, mean pack width).
    #[must_use]
    pub fn vmig(&self) -> &Vmig {
        &self.vmig
    }

    /// Whether the runahead thread is mid-tile (for tests).
    #[must_use]
    pub fn in_runahead(&self) -> bool {
        self.state.is_some()
    }

    /// Opens the next speculative window at the coverage cursor, bounded
    /// in element space by the lookahead line budget and clipped at the
    /// kernel's estimated end (LBD) so fixed-distance overrun cannot
    /// happen.
    fn try_start(&mut self, snoop: &SnoopState) -> bool {
        let len = if self.cfg.use_lbd {
            self.lbd.predicted_len()
        } else {
            (self.cfg.vector_width * 4) as u64
        };
        if len == 0 {
            return false;
        }
        let start = self.covered_until;
        // Depth bound: the line budget divided by the chain's row width
        // gives how many elements of coverage may be outstanding past the
        // NPU's consumption pointer.
        let row_lines = self.scd.entry().map_or(1, |e| {
            nvr_common::div_ceil(e.row_bytes, nvr_common::LINE_BYTES).max(1)
        });
        let max_ahead =
            (self.cfg.lookahead_lines as u64 / row_lines).max(self.cfg.vector_width as u64);
        if start >= snoop.elem_consumed + max_ahead {
            #[cfg(feature = "nvr-debug")]
            eprintln!(
                "NVR bound: start={} consumed={} max_ahead={}",
                start, snoop.elem_consumed, max_ahead
            );
            return false;
        }
        let mut end = start + len;
        if self.cfg.use_lbd {
            if let Some(array_end) = self.lbd.estimated_end(snoop.total_tiles) {
                if start >= array_end {
                    return false;
                }
                end = end.min(array_end);
            }
        }
        let window = Window {
            start,
            end,
            exact: false,
        };
        // Commit the coverage immediately so a mid-tile reset cannot
        // re-predict (and re-flood) the same element range.
        self.covered_until = window.end;
        #[cfg(feature = "nvr-debug")]
        eprintln!(
            "NVR window [{}, {}) cur={} clock={}",
            window.start, window.end, self.current_tile, self.clock
        );
        self.state = Some(Runahead {
            phase: Phase::FetchIndex { window, ready: 0 },
        });
        true
    }

    /// Issues index-line prefetches for `window`, plus one window-length of
    /// SD stream-ahead (§IV-B: the stride detector keeps the W/index stream
    /// flowing ahead of resolution, so the next window's FetchIndex finds
    /// its lines resident instead of paying a serialised DRAM round trip).
    /// Returns the fill-ready cycle of the window's own lines.
    fn fetch_index_lines(
        &mut self,
        window: Window,
        snoop: &SnoopState,
        mem: &mut MemorySystem,
    ) -> Cycle {
        let start = snoop.index_elem_addr(window.start);
        let bytes = window.len() * 4;
        let region = nvr_common::Region::new(start, bytes);
        let mut ready = self.clock;
        for line in region.lines() {
            if !self.sd.note_prefetched(PC_INDEX_LOAD, line) {
                continue;
            }
            match mem.prefetch_line(line, self.clock, self.cfg.fill_nsb) {
                nvr_mem::PrefetchOutcome::Issued { fill_done } => ready = ready.max(fill_done),
                nvr_mem::PrefetchOutcome::Redundant => {
                    // Already resident or in flight (e.g. from stream-ahead):
                    // wait for its actual fill, not zero.
                    if let Some(t) = mem.line_ready_time(line, self.clock) {
                        ready = ready.max(t);
                    }
                }
                nvr_mem::PrefetchOutcome::Dropped => {}
            }
        }
        // Stream-ahead: the next window's index lines (their fill time is
        // irrelevant now — they only need to be in flight before that
        // window resolves).
        let ahead = nvr_common::Region::new(region.end(), bytes);
        for line in ahead.lines() {
            if self.sd.note_prefetched(PC_INDEX_LOAD, line) {
                let _ = mem.prefetch_line(line, self.clock, self.cfg.fill_nsb);
            }
        }
        ready
    }

    /// One cycle of runahead-thread work. Returns what the thread did so
    /// the advance loop can overlap VMIG issue with blocked waits.
    fn step(
        &mut self,
        snoop: &SnoopState,
        image: &MemoryImage,
        mem: &mut MemorySystem,
    ) -> StepOutcome {
        let Some(mut st) = self.state.take() else {
            return if self.try_start(snoop) {
                StepOutcome::Worked
            } else {
                StepOutcome::Idle
            };
        };
        match st.phase {
            Phase::FetchIndex { window, ready } => {
                let ready = if ready == 0 {
                    self.fetch_index_lines(window, snoop, mem)
                } else {
                    ready
                };
                if ready > self.clock {
                    st.phase = Phase::FetchIndex { window, ready };
                    self.state = Some(st);
                    return StepOutcome::Blocked(ready);
                }
                st.phase = Phase::Resolve {
                    window,
                    next_elem: window.start,
                };
                self.state = Some(st);
                StepOutcome::Worked
            }
            Phase::Resolve { window, next_elem } => {
                if next_elem >= window.end {
                    // Window done; open the next one.
                    return if self.try_start(snoop) {
                        StepOutcome::Worked
                    } else {
                        StepOutcome::Idle
                    };
                }
                let group_end = (next_elem + self.cfg.vector_width as u64).min(window.end);
                let values: Vec<u32> = (next_elem..group_end)
                    .map(|e| image.read_u32(snoop.index_elem_addr(e)))
                    .collect();
                if self.scd.is_two_level() {
                    // Schedule probe fills for the group.
                    let mut probes = Vec::with_capacity(values.len());
                    let mut ready = self.clock;
                    for &v in &values {
                        let probe = self.scd.probe_addr(v).expect("two-level entry");
                        if let nvr_mem::PrefetchOutcome::Issued { fill_done } =
                            mem.prefetch_line(probe.line(), self.clock, self.cfg.fill_nsb)
                        {
                            ready = ready.max(fill_done);
                        }
                        probes.push(probe);
                    }
                    st.phase = Phase::ProbeWait {
                        window,
                        next_elem: group_end,
                        probes,
                        ready,
                    };
                    self.state = Some(st);
                    return StepOutcome::Worked;
                } else {
                    let mut bundle = Vec::with_capacity(values.len());
                    for &v in &values {
                        if let Some(target) = self.scd.predict_and_track(v) {
                            bundle.extend(target.lines());
                        }
                    }
                    self.vmig.push_bundle(bundle);
                    st.phase = Phase::Resolve {
                        window,
                        next_elem: group_end,
                    };
                    self.state = Some(st);
                }
                StepOutcome::Worked
            }
            Phase::ProbeWait {
                window,
                next_elem,
                ref probes,
                ready,
            } => {
                if ready > self.clock {
                    self.state = Some(st);
                    return StepOutcome::Blocked(ready);
                }
                let mut bundle = Vec::with_capacity(probes.len());
                for probe in probes {
                    let slot = image.read_u32(*probe);
                    if let Some(target) = self.scd.predict_and_track(slot) {
                        bundle.extend(target.lines());
                    }
                }
                self.vmig.push_bundle(bundle);
                st.phase = Phase::Resolve { window, next_elem };
                self.state = Some(st);
                StepOutcome::Worked
            }
        }
    }
}

impl Prefetcher for NvrPrefetcher {
    fn name(&self) -> &'static str {
        "NVR"
    }

    fn fills_nsb(&self) -> bool {
        self.cfg.fill_nsb
    }

    fn observe(
        &mut self,
        event: &AccessEvent,
        _snoop: &SnoopState,
        _image: &MemoryImage,
        _mem: &mut MemorySystem,
    ) {
        match event.kind {
            EventKind::IndexLoad { .. } => {
                self.sd.observe(PC_INDEX_LOAD, event.addr);
            }
            EventKind::GatherLoad if event.missed => {
                self.miss_seen_in_tile = true;
            }
            _ => {}
        }
    }

    fn advance(
        &mut self,
        from: Cycle,
        to: Cycle,
        snoop: &SnoopState,
        image: &MemoryImage,
        mem: &mut MemorySystem,
    ) {
        // Snoop ingestion is free (hardware registers).
        self.lbd.set_total_tiles(snoop.total_tiles);
        if snoop.window_len() > 0 {
            self.lbd
                .observe(snoop.tile, snoop.elem_start, snoop.elem_end);
        }
        if let Some(g) = snoop.gather {
            self.scd.observe_gather(&g);
        }
        // The NPU has demand-loaded everything up to its progress pointer.
        self.covered_until = self.covered_until.max(snoop.elem_consumed);
        if snoop.tile != self.current_tile {
            self.current_tile = snoop.tile;
            self.miss_seen_in_tile = false;
        }
        // Abandon a parked window the NPU has already demand-loaded past.
        if let Some(st) = &self.state {
            if st.window().end <= snoop.elem_consumed {
                self.state = None;
            }
        }
        self.clock = self.clock.max(from);
        if !snoop.sparse_unit_idle {
            // The sparse unit is busy with real work; NVR waits (§III).
            self.clock = self.clock.max(to);
            return;
        }
        if self.cfg.trigger == TriggerPolicy::OnStall && !self.miss_seen_in_tile {
            return;
        }

        // Per cycle: the VIGU issue port drains one vector while the
        // runahead thread (sparse unit + PIE) makes independent progress —
        // they are separate hardware units. The VIGU accumulates a *full*
        // vector (`vmig_batch_lines`) while resolution is flowing — partial
        // issue would fragment the speculative MSHR file across undersized
        // vectors — and flushes whenever the thread blocks or runs dry.
        while self.clock < to {
            let flowing = matches!(
                self.state.as_ref().map(|st| &st.phase),
                Some(Phase::Resolve { .. })
            );
            let issued = if self.vmig.pending() >= self.cfg.vmig_batch_lines || !flowing {
                self.vmig.issue(mem, self.clock, self.cfg.fill_nsb) > 0
            } else {
                false
            };
            let outcome = self.step(snoop, image, mem);
            match outcome {
                StepOutcome::Worked => {
                    self.clock += 1;
                }
                StepOutcome::Blocked(until) => {
                    if issued || !self.vmig.is_empty() {
                        // Keep draining the queue cycle by cycle while the
                        // thread waits on its fill.
                        self.clock += 1;
                    } else {
                        // Nothing to issue: fast-forward to the fill.
                        self.clock = until.min(to).max(self.clock + 1);
                    }
                }
                StepOutcome::Idle => {
                    if !issued && self.vmig.is_empty() {
                        break;
                    }
                    self.clock += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::{DataWidth, Region};
    use nvr_mem::MemoryConfig;
    use nvr_npu::{NpuConfig, NpuEngine};
    use nvr_prefetch::NullPrefetcher;
    use nvr_trace::{GatherDesc, NpuProgram, SparseFunc, TileOp};

    /// A gather-heavy program over a large IA space (mostly cold misses
    /// without prefetching).
    fn sparse_program(tiles_n: usize, per_tile: usize) -> NpuProgram {
        let mut image = MemoryImage::new();
        let index_base = Addr::new(0x10_0000);
        let n = tiles_n * per_tile;
        let indices: Vec<u32> = (0..n)
            .map(|i| MemoryImage::background(Addr::new(i as u64 * 4)) % (1 << 18))
            .collect();
        image.add_u32_segment(index_base, indices);
        let func = SparseFunc::Affine {
            ia_base: Addr::new(0x1_0000_0000),
            row_bytes: 64,
        };
        let tiles: Vec<TileOp> = (0..tiles_n)
            .map(|i| TileOp {
                id: i,
                index_region: Region::new(
                    index_base.offset((i * per_tile) as u64 * 4),
                    per_tile as u64 * 4,
                ),
                gather: Some(GatherDesc { func, batch: 16 }),
                dma_bytes: 0,
                compute_cycles: 200,
                store_bytes: 0,
            })
            .collect();
        NpuProgram {
            name: "nvr-unit".into(),
            width: DataWidth::Int8,
            tiles,
            image,
        }
    }

    #[test]
    fn nvr_beats_no_prefetch_end_to_end() {
        let program = sparse_program(32, 64);
        let engine = NpuEngine::new(NpuConfig::default());

        let mut mem_base = MemorySystem::new(MemoryConfig::default());
        let base = engine.run(&program, &mut mem_base, &mut NullPrefetcher::new());

        let mut mem_nvr = MemorySystem::new(MemoryConfig::default());
        let mut nvr = NvrPrefetcher::new(NvrConfig::default());
        let with_nvr = engine.run(&program, &mut mem_nvr, &mut nvr);

        assert!(
            with_nvr.total_cycles * 2 < base.total_cycles,
            "NVR {} vs baseline {}",
            with_nvr.total_cycles,
            base.total_cycles
        );
        // Misses visible to the NPU collapse.
        assert!(
            with_nvr.gather_element_misses * 3 < base.gather_element_misses,
            "NVR misses {} vs baseline {}",
            with_nvr.gather_element_misses,
            base.gather_element_misses
        );
    }

    #[test]
    fn nvr_accuracy_is_high_on_uniform_tiles() {
        let program = sparse_program(32, 64);
        let engine = NpuEngine::new(NpuConfig::default());
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut nvr = NvrPrefetcher::new(NvrConfig::default());
        let _ = engine.run(&program, &mut mem, &mut nvr);
        let acc = mem.prefetch_accuracy();
        assert!(acc > 0.85, "accuracy {acc} should exceed 0.85");
    }

    #[test]
    fn vmig_packs_multiple_lines_per_vector() {
        let program = sparse_program(16, 64);
        let engine = NpuEngine::new(NpuConfig::default());
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut nvr = NvrPrefetcher::new(NvrConfig::default());
        let _ = engine.run(&program, &mut mem, &mut nvr);
        assert!(
            nvr.vmig().mean_pack_width() > 2.0,
            "pack width {}",
            nvr.vmig().mean_pack_width()
        );
    }

    #[test]
    fn disabling_lbd_hurts_accuracy() {
        let program = sparse_program(32, 64);
        let engine = NpuEngine::new(NpuConfig::default());

        let mut mem_lbd = MemorySystem::new(MemoryConfig::default());
        let mut with_lbd = NvrPrefetcher::new(NvrConfig::default());
        let _ = engine.run(&program, &mut mem_lbd, &mut with_lbd);

        let mut mem_no = MemorySystem::new(MemoryConfig::default());
        let mut without = NvrPrefetcher::new(NvrConfig {
            use_lbd: false,
            ..NvrConfig::default()
        });
        let _ = engine.run(&program, &mut mem_no, &mut without);

        assert!(
            mem_lbd.prefetch_accuracy() >= mem_no.prefetch_accuracy(),
            "LBD {} vs no-LBD {}",
            mem_lbd.prefetch_accuracy(),
            mem_no.prefetch_accuracy()
        );
    }

    #[test]
    fn on_stall_trigger_is_less_effective() {
        let program = sparse_program(32, 64);
        let engine = NpuEngine::new(NpuConfig::default());

        let mut mem_load = MemorySystem::new(MemoryConfig::default());
        let mut on_load = NvrPrefetcher::new(NvrConfig::default());
        let r_load = engine.run(&program, &mut mem_load, &mut on_load);

        let mut mem_stall = MemorySystem::new(MemoryConfig::default());
        let mut on_stall = NvrPrefetcher::new(NvrConfig {
            trigger: TriggerPolicy::OnStall,
            ..NvrConfig::default()
        });
        let r_stall = engine.run(&program, &mut mem_stall, &mut on_stall);

        assert!(
            r_load.total_cycles <= r_stall.total_cycles,
            "on-load {} should be <= on-stall {}",
            r_load.total_cycles,
            r_stall.total_cycles
        );
    }

    /// NSB pays off when sparse rows are *reused* (§IV-G: implicit cache
    /// line reuse): resident rows then hit at NSB latency instead of L2
    /// latency.
    #[test]
    fn nsb_fill_reduces_npu_latency_on_reuse() {
        use nvr_mem::CacheConfig;
        // Hot set of 128 rows (8 KB) — fits the 16 KB NSB.
        let mut image = MemoryImage::new();
        let index_base = Addr::new(0x10_0000);
        let tiles_n = 32usize;
        let per_tile = 64usize;
        let indices: Vec<u32> = (0..(tiles_n * per_tile))
            .map(|i| MemoryImage::background(Addr::new(i as u64 * 4)) % 128)
            .collect();
        image.add_u32_segment(index_base, indices);
        let func = SparseFunc::Affine {
            ia_base: Addr::new(0x1_0000_0000),
            row_bytes: 64,
        };
        let tiles: Vec<TileOp> = (0..tiles_n)
            .map(|i| TileOp {
                id: i,
                index_region: Region::new(
                    index_base.offset((i * per_tile) as u64 * 4),
                    per_tile as u64 * 4,
                ),
                gather: Some(GatherDesc { func, batch: 16 }),
                dma_bytes: 0,
                compute_cycles: 50,
                store_bytes: 0,
            })
            .collect();
        let program = NpuProgram {
            name: "nsb-reuse".into(),
            width: DataWidth::Int8,
            tiles,
            image,
        };
        let engine = NpuEngine::new(NpuConfig::default());

        let mut mem_plain = MemorySystem::new(MemoryConfig::default());
        let mut plain = NvrPrefetcher::new(NvrConfig::default());
        let r_plain = engine.run(&program, &mut mem_plain, &mut plain);

        let nsb_cfg = MemoryConfig::default().with_nsb(CacheConfig::nsb_default());
        let mut mem_nsb = MemorySystem::new(nsb_cfg);
        let mut with_nsb = NvrPrefetcher::new(NvrConfig::with_nsb());
        let r_nsb = engine.run(&program, &mut mem_nsb, &mut with_nsb);

        assert!(
            r_nsb.total_cycles < r_plain.total_cycles,
            "NSB {} vs plain {}",
            r_nsb.total_cycles,
            r_plain.total_cycles
        );
    }
}
