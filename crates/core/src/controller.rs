//! The NVR controller: pipelined cross-tile runahead orchestration
//! (§III, §IV-A/C).
//!
//! The controller monitors CPU and NPU state via the snoopers and, whenever
//! the sparse-operators unit is idle, runs a *pipelined lookahead engine*
//! over future tiles: up to [`NvrConfig::lookahead_tiles`] speculative
//! windows are in flight at once, each stepping through the phases
//!
//! 1. **window prediction** — exact bounds for the tile at the ROB head
//!    (sparse-unit registers); LBD-chained predictions beyond it;
//! 2. **index fetch** (`FetchIndex`) — the window's index lines are
//!    prefetched (SD-guided stream loads) the moment the window opens, and
//!    the window then waits for the fills — real speculative execution,
//!    never oracle access;
//! 3. **chain resolution** (`Resolve`) — the PIE evaluates `sparse_func`
//!    on the fetched index values, `vector_width` lanes per cycle,
//!    scheduling intermediate table probes for two-level chains
//!    (`ProbeWait`);
//! 4. **vector issue** — resolved target lines drain through the VMIG,
//!    which accumulates a full vector ([`NvrConfig::vmig_batch_lines`]
//!    lines) while resolution is flowing and flushes whenever the thread
//!    blocks or runs dry, filling L2 (and the NSB when configured). The
//!    issue stage paces on *per-channel* occupancy of the multi-channel
//!    DRAM backend: a line whose channel's prefetch queue is full defers
//!    in place instead of being rejected at the channel, so speculative
//!    traffic back-pressures per channel rather than dropping.
//!
//! The pipeline decouples the phases *across* windows, with the two sides
//! of a window's life held to different leashes:
//!
//! * **Index side, deep.** The next window opens — and its index lines
//!   issue — as soon as the previous window's index lines have been
//!   **issued**, not resolved, up to [`NvrConfig::lookahead_tiles`]
//!   windows of reach past the consumer. Opening costs only a handful of
//!   sequential line fetches, and those fetches drain through the VIGU
//!   queue behind the current window's targets instead of bursting onto
//!   the DRAM channel (a same-cycle burst of a window's worth of index
//!   lines used to queue in front of in-flight target fills and turn
//!   them late). While window *k* waits for its fills, windows
//!   *k+1..k+d* are already in flight.
//! * **Target side, shallow.** A fetched window may enter `Resolve` only
//!   once its start is within one [`NvrConfig::lookahead_lines`] budget
//!   of the NPU's consumption pointer, so the expensive, cache-filling
//!   target stream trickles just ahead of demand instead of flooding the
//!   L2 the moment a window opens.
//!
//! This closes the dead gaps at tile boundaries that the
//! one-window-at-a-time episode loop left: prefetches for tile *t+1*
//! used to start only after tile *t* fully resolved, arriving late
//! (`prefetch_late`) on bandwidth-hungry workloads like GCN and GSA-BT.
//!
//! The lookahead is kept honest by a DARE-style usefulness throttle fed
//! by measured per-prefetch lifetimes (issue, first use, unused eviction
//! — see [`crate::lifetime`]): when the rolling evicted-unused ratio
//! crosses [`NvrConfig::throttle_evicted_ratio`], the effective depth
//! collapses to a single window until the speculation is being consumed
//! again, and once *any* waste has been observed, oversized window
//! predictions are chunked down to the reach budget so the speculative
//! footprint stays inside what the L2 demonstrably holds until use.
//!
//! All work is paced by an internal clock that only moves inside the
//! `[from, to)` windows the engine grants — idle periods of the sparse
//! unit — so NVR's speculation consumes exactly the slack resources the
//! paper claims (§III Q&A3).

use std::collections::VecDeque;

use nvr_common::{Addr, Cycle};
use nvr_mem::MemorySystem;
use nvr_prefetch::{Prefetcher, TimelinessReport};
use nvr_trace::event::PC_INDEX_LOAD;
use nvr_trace::{AccessEvent, EventKind, MemoryImage, SnoopState};

use nvr_common::LineAddr;

use crate::config::{NvrConfig, TriggerPolicy};
use crate::lifetime::LifetimeTracker;
use crate::loop_bound::{LoopBoundDetector, Window};
use crate::reuse::ReusePredictor;
use crate::sparse_chain::SparseChainDetector;
use crate::stride_detector::StrideDetector;
use crate::vmig::Vmig;

/// Progress of one speculative window in the lookahead pipeline.
#[derive(Debug, Clone)]
enum Phase {
    /// Index lines prefetched; waiting until `ready` before reading values.
    FetchIndex { window: Window, ready: Cycle },
    /// Reading values / evaluating `sparse_func` group by group.
    Resolve { window: Window, next_elem: u64 },
    /// Two-level chains: waiting for probe fills of the current group.
    ProbeWait {
        window: Window,
        next_elem: u64,
        probes: Vec<Addr>,
        ready: Cycle,
    },
}

/// One in-flight speculative window.
#[derive(Debug, Clone)]
struct Runahead {
    phase: Phase,
}

impl Runahead {
    /// The element window this entry covers.
    fn window(&self) -> Window {
        match self.phase {
            Phase::FetchIndex { window, .. }
            | Phase::Resolve { window, .. }
            | Phase::ProbeWait { window, .. } => window,
        }
    }

    /// The cycle this window is waiting for, if it is blocked on a fill.
    fn blocked_until(&self) -> Option<Cycle> {
        match self.phase {
            Phase::FetchIndex { ready, .. } | Phase::ProbeWait { ready, .. } => Some(ready),
            Phase::Resolve { .. } => None,
        }
    }
}

/// What the runahead thread accomplished in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepOutcome {
    /// Useful work happened (fetch issued, group resolved, window opened).
    Worked,
    /// Blocked on a speculative fill until the given cycle.
    Blocked(Cycle),
    /// No work available (depth bound reached or kernel exhausted).
    Idle,
}

/// The NVR prefetcher (see module docs).
///
/// # Examples
///
/// ```
/// use nvr_core::{NvrConfig, NvrPrefetcher};
/// use nvr_prefetch::Prefetcher;
///
/// let nvr = NvrPrefetcher::new(NvrConfig::with_nsb());
/// assert!(nvr.fills_nsb());
/// ```
#[derive(Debug, Clone)]
pub struct NvrPrefetcher {
    cfg: NvrConfig,
    sd: StrideDetector,
    lbd: LoopBoundDetector,
    scd: SparseChainDetector,
    vmig: Vmig,
    lifetime: LifetimeTracker,
    /// Per-line reuse scoring over resolved targets, feeding the NSB's
    /// DARE-style admission (active only when
    /// [`NvrConfig::nsb_admit_min_reuse`] is non-zero and fills target
    /// the NSB).
    reuse: ReusePredictor,
    clock: Cycle,
    /// In-flight speculative windows, oldest first (the lookahead
    /// pipeline). Capacity is the throttled effective depth.
    windows: VecDeque<Runahead>,
    /// Whether the memory system's prefetch lifetime log has been enabled.
    life_log_on: bool,
    current_tile: usize,
    miss_seen_in_tile: bool,
    /// Monotone element-space cursor: everything below it has either been
    /// demanded by the NPU or already resolved by runahead. Guarantees each
    /// index element is speculatively executed at most once, so restarted
    /// runahead never re-floods the cache with shifted re-predictions.
    covered_until: u64,
    /// Scratch for one resolve group's index values, reused across steps.
    scratch_values: Vec<u32>,
    /// Scratch for one resolve group's scored target lines, reused across
    /// steps (drained into the VIGU each use).
    scratch_bundle: Vec<(LineAddr, u32)>,
    /// Arena of probe-address buffers recycled between `ProbeWait` phases:
    /// a retired window's buffer is cleared and reused by the next
    /// two-level group instead of allocating per group.
    probe_pool: Vec<Vec<Addr>>,
}

impl NvrPrefetcher {
    /// Creates an NVR instance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NvrConfig::validate`].
    #[must_use]
    pub fn new(cfg: NvrConfig) -> Self {
        // nvr-lint: allow(panic/hot-loop) reason="init-time config validation in the constructor, outside the tick loop"
        cfg.validate().expect("nvr config must be valid");
        let mut vmig = Vmig::new(cfg.vmig_batch_lines);
        vmig.set_nsb_admit(if cfg.fill_nsb {
            cfg.nsb_admit_min_reuse
        } else {
            0
        });
        NvrPrefetcher {
            sd: StrideDetector::new(cfg.vector_width),
            lbd: LoopBoundDetector::new(cfg.fuzzy_factor),
            scd: SparseChainDetector::new(),
            vmig,
            lifetime: LifetimeTracker::new(cfg.throttle_window),
            reuse: ReusePredictor::new(),
            clock: 0,
            windows: VecDeque::with_capacity(cfg.lookahead_tiles),
            life_log_on: false,
            current_tile: 0,
            miss_seen_in_tile: false,
            covered_until: 0,
            scratch_values: Vec::new(),
            scratch_bundle: Vec::new(),
            probe_pool: Vec::new(),
            cfg,
        }
    }

    /// The VMIG issue statistics (vectors, lines, mean pack width).
    #[must_use]
    pub fn vmig(&self) -> &Vmig {
        &self.vmig
    }

    /// Whether reuse scoring is active: fills target the NSB *and* the
    /// admission threshold is non-zero. When inactive every line carries
    /// score 0 and the memory side behaves exactly as pure LRU.
    fn scoring_active(&self) -> bool {
        self.cfg.fill_nsb && self.cfg.nsb_admit_min_reuse > 0
    }

    /// Whether *unscored* single-use traffic (index stream lines,
    /// two-level intermediate probes) should fill the NSB. With scoring
    /// active it must not: those lines are consumed once by the runahead
    /// thread itself, and letting them compete for the NSB's 256 lines is
    /// precisely the thrash the admission threshold exists to stop.
    fn bulk_fill_nsb(&self) -> bool {
        self.cfg.fill_nsb && !self.scoring_active()
    }

    /// Whether any speculative window is in flight (for tests).
    #[must_use]
    pub fn in_runahead(&self) -> bool {
        !self.windows.is_empty()
    }

    /// The current lookahead depth after the usefulness throttle: the
    /// configured [`NvrConfig::lookahead_tiles`] while the rolling
    /// evicted-unused ratio stays below
    /// [`NvrConfig::throttle_evicted_ratio`]; 1 (the single-window
    /// episode loop) once it crosses — DARE-style filtering by observed
    /// usefulness rather than window extent.
    #[must_use]
    pub fn effective_depth(&self) -> usize {
        let d = self.cfg.lookahead_tiles;
        if d > 1
            && self.lifetime.warmed_up()
            && self.lifetime.rolling_wasted_ratio() > self.cfg.throttle_evicted_ratio
        {
            1
        } else {
            d
        }
    }

    /// Element-space lookahead bound: how far past the NPU's consumption
    /// pointer the next window may start — the line budget in elements,
    /// so the reach adapts to row width (fat rows get shallow lookahead,
    /// thin rows deep). This is deliberately *not* scaled by the pipeline
    /// depth: the pipeline parallelises windows inside this fixed budget
    /// (overlapping their index fetches and resolution), it does not
    /// extend the speculative footprint — extending it floods the L2 and
    /// the DRAM channel on turnover-heavy workloads (GCN, MK) faster than
    /// any throttle can react.
    fn max_ahead_elems(&self) -> u64 {
        let row_lines = self.scd.entry().map_or(1, |e| {
            nvr_common::div_ceil(e.row_bytes, nvr_common::LINE_BYTES).max(1)
        });
        (self.cfg.lookahead_lines as u64 / row_lines).max(self.cfg.vector_width as u64)
    }

    /// Opens the next speculative window at the coverage cursor — issuing
    /// its index-line fetch immediately — bounded in element space by the
    /// lookahead line budget scaled to the effective pipeline depth, and
    /// clipped at the kernel's estimated end (LBD) so fixed-distance
    /// overrun cannot happen.
    fn try_start(&mut self, snoop: &SnoopState, mem: &mut MemorySystem) -> bool {
        let len = if self.cfg.use_lbd {
            self.lbd.predicted_len()
        } else {
            (self.cfg.vector_width * 4) as u64
        };
        if len == 0 {
            return false;
        }
        let start = self.covered_until;
        let max_ahead = self.max_ahead_elems();
        // Opening a window costs only its index-line fetch (a handful of
        // sequential lines), so the *open* bound reaches `lookahead_tiles`
        // windows of budget ahead; the FetchIndex -> Resolve transition is
        // gated separately on the one-budget reach below, which is what
        // actually paces the (expensive, cache-filling) target stream.
        if start >= snoop.elem_consumed + max_ahead * self.effective_depth() as u64 {
            #[cfg(feature = "nvr-debug")]
            eprintln!(
                "NVR bound: start={} consumed={} max_ahead={}",
                start, snoop.elem_consumed, max_ahead
            );
            return false;
        }
        // Adaptive chunking: once the lifetime log has seen *any* of our
        // speculation evicted unused, oversized predictions are cut down
        // to the reach budget, so the pipeline (small windows overlapping
        // index fetch and resolution) is the unit of lookahead and the
        // speculative footprint stays inside what the L2 demonstrably
        // holds until use (GCN's turnover). While the waste ratio is
        // exactly zero, predictions keep their natural size — the
        // overshoot past the budget is whole-batch coverage that a chunk
        // boundary would forfeit for free (GSA-BT's block tails).
        let len = if len > max_ahead
            && self.lifetime.warmed_up()
            && self.lifetime.rolling_wasted_ratio() > 0.0
        {
            max_ahead.max(self.cfg.vector_width as u64)
        } else {
            len
        };
        let mut end = start + len;
        if self.cfg.use_lbd {
            if let Some(array_end) = self.lbd.estimated_end(snoop.total_tiles) {
                if start >= array_end {
                    return false;
                }
                end = end.min(array_end);
            }
        }
        let window = Window {
            start,
            end,
            exact: false,
        };
        // Commit the coverage immediately so a mid-tile reset cannot
        // re-predict (and re-flood) the same element range.
        self.covered_until = window.end;
        #[cfg(feature = "nvr-debug")]
        eprintln!(
            "NVR window [{}, {}) depth={}/{} cur={} clock={}",
            window.start,
            window.end,
            self.windows.len() + 1,
            self.effective_depth(),
            self.current_tile,
            self.clock
        );
        // Pipelined open: the index fetch issues *now*, so the next window
        // can open as soon as this one's lines are in flight — fills of
        // consecutive windows overlap instead of serialising.
        let ready = self.fetch_index_lines(window, snoop, mem);
        self.windows.push_back(Runahead {
            phase: Phase::FetchIndex { window, ready },
        });
        true
    }

    /// Issues index-line prefetches for `window`, plus one window-length of
    /// SD stream-ahead (§IV-B: the stride detector keeps the W/index stream
    /// flowing ahead of resolution, so the next window's FetchIndex finds
    /// its lines resident instead of paying a serialised DRAM round trip).
    /// Returns the fill-ready cycle of the window's own lines.
    fn fetch_index_lines(
        &mut self,
        window: Window,
        snoop: &SnoopState,
        mem: &mut MemorySystem,
    ) -> Cycle {
        let start = snoop.index_elem_addr(window.start);
        let bytes = window.len() * 4;
        let region = nvr_common::Region::new(start, bytes);
        let mut ready = self.clock;
        for line in region.lines() {
            // The window's own lines are fetched (or waited on)
            // unconditionally — stream-ahead may have only *queued* a line
            // in the VIGU without issuing it yet, and the SD mark alone
            // must never let a window resolve against lines that were
            // never fetched. `prefetch_line` is redundancy-safe, and a
            // still-queued duplicate is dropped later by the VIGU's
            // residency filter.
            self.sd.note_prefetched(PC_INDEX_LOAD, line);
            match mem.prefetch_line(line, self.clock, self.bulk_fill_nsb()) {
                nvr_mem::PrefetchOutcome::Issued { fill_done } => ready = ready.max(fill_done),
                nvr_mem::PrefetchOutcome::Redundant => {
                    // Already resident or in flight (e.g. from stream-ahead):
                    // wait for its actual fill, not zero.
                    if let Some(t) = mem.line_ready_time(line, self.clock) {
                        ready = ready.max(t);
                    }
                }
                nvr_mem::PrefetchOutcome::Dropped => {}
            }
        }
        // Stream-ahead: the next window's index lines. Their fill time is
        // not urgent (they only need to be in flight before that window
        // resolves), so they drain through the VIGU queue behind the
        // current window's targets instead of bursting onto the channel
        // here — a same-cycle burst of a window's worth of index lines
        // used to queue in front of in-flight target fills and turn them
        // late. They ride outside the VIGU's vector accounting: a
        // sequential index run is not a PIE-resolved gather vector.
        let ahead = nvr_common::Region::new(region.end(), bytes);
        let sd = &mut self.sd;
        self.vmig.push_stream(
            ahead
                .lines()
                .filter(|&line| sd.note_prefetched(PC_INDEX_LOAD, line)),
        );
        ready
    }

    /// One cycle of runahead-thread work. Returns what the thread did so
    /// the advance loop can overlap VMIG issue with blocked waits.
    ///
    /// Priorities per cycle: retire fully-resolved windows (free — they
    /// hold no hardware), open the next window while a pipeline slot is
    /// free (its index fetch issues immediately), then give the shared PIE
    /// to the *oldest* window with data ready. A cycle where every window
    /// is waiting on fills reports the earliest wake-up so the advance
    /// loop can fast-forward.
    fn step(
        &mut self,
        snoop: &SnoopState,
        image: &MemoryImage,
        mem: &mut MemorySystem,
    ) -> StepOutcome {
        self.windows.retain(|st| match &st.phase {
            Phase::Resolve { window, next_elem } => *next_elem < window.end,
            _ => true,
        });
        // Open the next window only while the VIGU backlog is shallow:
        // resolved lines the memory system has not accepted yet mean the
        // prefetch stream is already ahead of the channel, and opening
        // deeper windows would only queue speculative traffic in front of
        // demand fetches on the shared DRAM channel.
        let backlog_ok = self.vmig.pending() < 2 * self.cfg.vmig_batch_lines;
        if backlog_ok && self.windows.len() < self.effective_depth() && self.try_start(snoop, mem) {
            return StepOutcome::Worked;
        }
        let resolve_limit = snoop.elem_consumed.saturating_add(self.max_ahead_elems());
        let mut next_ready: Option<Cycle> = None;
        for i in 0..self.windows.len() {
            // A fetched window parks until its start is inside the target
            // reach: its index lines may fly ahead, its target stream may
            // not (no wake-up time — the NPU's progress at the next
            // advance window unblocks it).
            if let Phase::FetchIndex { window, .. } = &self.windows[i].phase {
                if window.start >= resolve_limit {
                    continue;
                }
            }
            match self.windows[i].blocked_until() {
                Some(ready) if ready > self.clock => {
                    next_ready = Some(next_ready.map_or(ready, |r| r.min(ready)));
                }
                _ => return self.progress_window(i, snoop, image, mem),
            }
        }
        match next_ready {
            Some(ready) => StepOutcome::Blocked(ready),
            None => StepOutcome::Idle,
        }
    }

    /// Advances window `i` (whose data is ready) by one pipeline stage.
    fn progress_window(
        &mut self,
        i: usize,
        snoop: &SnoopState,
        image: &MemoryImage,
        mem: &mut MemorySystem,
    ) -> StepOutcome {
        // Move the phase out (every arm writes a fresh one back) instead of
        // cloning it — `ProbeWait` carries a probe Vec, and cloning it made
        // every step of a two-level window an allocation.
        let placeholder = Phase::Resolve {
            window: Window {
                start: 0,
                end: 0,
                exact: false,
            },
            next_elem: 0,
        };
        let phase = std::mem::replace(&mut self.windows[i].phase, placeholder);
        match phase {
            Phase::FetchIndex { window, .. } => {
                // Skip straight past anything the NPU demanded while the
                // fill was in flight.
                self.windows[i].phase = Phase::Resolve {
                    window,
                    next_elem: window.start.max(snoop.elem_consumed.min(window.end)),
                };
                StepOutcome::Worked
            }
            Phase::Resolve { window, next_elem } => {
                let group_end = (next_elem + self.cfg.vector_width as u64).min(window.end);
                let mut values = std::mem::take(&mut self.scratch_values);
                values.clear();
                values.extend(
                    (next_elem..group_end).map(|e| image.read_u32(snoop.index_elem_addr(e))),
                );
                if self.scd.is_two_level() {
                    // Schedule probe fills for the group, into a recycled
                    // probe buffer from the arena.
                    let mut probes = self.probe_pool.pop().unwrap_or_default();
                    probes.clear();
                    let mut ready = self.clock;
                    for &v in &values {
                        // nvr-lint: allow(panic/hot-loop) reason="guarded by the is_two_level() branch above; probe_addr is total for two-level SCDs"
                        let probe = self.scd.probe_addr(v).expect("two-level entry");
                        if let nvr_mem::PrefetchOutcome::Issued { fill_done } =
                            mem.prefetch_line(probe.line(), self.clock, self.bulk_fill_nsb())
                        {
                            ready = ready.max(fill_done);
                        }
                        probes.push(probe);
                    }
                    self.windows[i].phase = Phase::ProbeWait {
                        window,
                        next_elem: group_end,
                        probes,
                        ready,
                    };
                } else {
                    // Score each resolved target line by how often the
                    // window machinery has touched it: hub rows resolved by
                    // many neighbouring windows earn admission to the NSB,
                    // cold rows stay L2-only (scores all-zero when scoring
                    // is inactive, reproducing unscored behaviour exactly).
                    let scoring = self.scoring_active();
                    let mut bundle = std::mem::take(&mut self.scratch_bundle);
                    bundle.clear();
                    for &v in &values {
                        if let Some(target) = self.scd.predict_and_track(v) {
                            for line in target.lines() {
                                let score = if scoring { self.reuse.observe(line) } else { 0 };
                                bundle.push((line, score));
                            }
                        }
                    }
                    self.vmig.push_bundle_scored(bundle.drain(..));
                    self.scratch_bundle = bundle;
                    self.windows[i].phase = Phase::Resolve {
                        window,
                        next_elem: group_end,
                    };
                }
                self.scratch_values = values;
                StepOutcome::Worked
            }
            Phase::ProbeWait {
                window,
                next_elem,
                mut probes,
                ..
            } => {
                let scoring = self.scoring_active();
                let mut bundle = std::mem::take(&mut self.scratch_bundle);
                bundle.clear();
                for probe in &probes {
                    let slot = image.read_u32(*probe);
                    if let Some(target) = self.scd.predict_and_track(slot) {
                        for line in target.lines() {
                            let score = if scoring { self.reuse.observe(line) } else { 0 };
                            bundle.push((line, score));
                        }
                    }
                }
                self.vmig.push_bundle_scored(bundle.drain(..));
                self.scratch_bundle = bundle;
                // Return the consumed probe buffer to the arena.
                probes.clear();
                self.probe_pool.push(probes);
                self.windows[i].phase = Phase::Resolve { window, next_elem };
                StepOutcome::Worked
            }
        }
    }
}

impl Prefetcher for NvrPrefetcher {
    fn name(&self) -> &'static str {
        "NVR"
    }

    fn fills_nsb(&self) -> bool {
        self.cfg.fill_nsb
    }

    fn finalize_run(&mut self, mem: &mut MemorySystem) {
        // Fold in anything the memory system recorded after the last
        // advance window (tail demand touches, end-of-run evictions).
        self.lifetime.drain(mem);
    }

    fn timeliness(&self) -> Option<TimelinessReport> {
        Some(self.lifetime.report())
    }

    fn observe(
        &mut self,
        event: &AccessEvent,
        _snoop: &SnoopState,
        _image: &MemoryImage,
        _mem: &mut MemorySystem,
    ) {
        match event.kind {
            EventKind::IndexLoad { .. } => {
                self.sd.observe(PC_INDEX_LOAD, event.addr);
            }
            EventKind::GatherLoad if event.missed => {
                self.miss_seen_in_tile = true;
            }
            _ => {}
        }
    }

    fn advance(
        &mut self,
        from: Cycle,
        to: Cycle,
        snoop: &SnoopState,
        image: &MemoryImage,
        mem: &mut MemorySystem,
    ) {
        // Arm the memory system's prefetch lifetime log on first entry and
        // fold everything it recorded since the last window into the
        // tracker — the throttle input and the fig. 6b data.
        if !self.life_log_on {
            mem.enable_prefetch_life_log();
            self.life_log_on = true;
        }
        self.lifetime.drain(mem);
        // Snoop ingestion is free (hardware registers).
        self.lbd.set_total_tiles(snoop.total_tiles);
        if snoop.window_len() > 0 {
            self.lbd
                .observe(snoop.tile, snoop.elem_start, snoop.elem_end);
        }
        if let Some(g) = snoop.gather {
            self.scd.observe_gather(&g);
        }
        // The NPU has demand-loaded everything up to its progress pointer.
        self.covered_until = self.covered_until.max(snoop.elem_consumed);
        if snoop.tile != self.current_tile {
            self.current_tile = snoop.tile;
            self.miss_seen_in_tile = false;
        }
        // Abandon windows the NPU has already demand-loaded past, and
        // fast-forward paced windows over elements the NPU consumed while
        // they were parked — resolving those would prefetch lines the
        // demand stream has already fetched (pure waste), and it is the
        // ROB-head progress register that says so, not oracle knowledge.
        self.windows
            .retain(|st| st.window().end > snoop.elem_consumed);
        for st in &mut self.windows {
            if let Phase::Resolve { window, next_elem } = &mut st.phase {
                *next_elem = (*next_elem).max(snoop.elem_consumed.min(window.end));
            }
        }
        self.clock = self.clock.max(from);
        if !snoop.sparse_unit_idle {
            // The sparse unit is busy with real work; NVR waits (§III).
            self.clock = self.clock.max(to);
            return;
        }
        if self.cfg.trigger == TriggerPolicy::OnStall && !self.miss_seen_in_tile {
            return;
        }

        // Per cycle: the VIGU issue port drains one vector while the
        // runahead thread (sparse unit + PIE) makes independent progress —
        // they are separate hardware units. The VIGU accumulates a *full*
        // vector (`vmig_batch_lines`) while resolution is flowing — partial
        // issue would fragment the speculative MSHR file across undersized
        // vectors — and flushes whenever the thread blocks or runs dry.
        while self.clock < to {
            let flowing = self
                .windows
                .iter()
                .any(|st| matches!(st.phase, Phase::Resolve { .. }));
            let issued = if self.vmig.pending() >= self.cfg.vmig_batch_lines || !flowing {
                self.vmig.issue(mem, self.clock, self.cfg.fill_nsb) > 0
            } else {
                false
            };
            let outcome = self.step(snoop, image, mem);
            // Event-driven ticking: a cycle where the thread cannot progress
            // (`Blocked`/`Idle`) and the VIGU issued nothing is *provably
            // repeatable* — a zero-line issue pass leaves the queue holding
            // only deferred (channel-full) or slot-starved lines, the
            // residency filter is time-independent, and no window becomes
            // ready before the reported wake-up — so the clock jumps
            // straight to the earliest event that can change anything: the
            // blocking fill, a speculative-MSHR completion, or a channel
            // queue position opening (`next_prefetch_wakeup`). The skipped
            // cycles would each have re-walked the queue and re-scanned the
            // windows to do nothing.
            match outcome {
                StepOutcome::Worked => {
                    self.clock += 1;
                }
                StepOutcome::Blocked(until) => {
                    if issued {
                        // Keep draining the queue cycle by cycle while the
                        // thread waits on its fill.
                        self.clock += 1;
                    } else if self.vmig.is_empty() {
                        // Nothing to issue: fast-forward to the fill.
                        self.clock = until.min(to).max(self.clock + 1);
                    } else {
                        // Queue stuck behind back-pressure: fast-forward to
                        // the fill or the first issue opportunity, whichever
                        // is sooner.
                        let wake = mem
                            .next_prefetch_wakeup(self.clock)
                            .map_or(until, |w| w.min(until));
                        self.clock = wake.min(to).max(self.clock + 1);
                    }
                }
                StepOutcome::Idle => {
                    if issued {
                        self.clock += 1;
                    } else if self.vmig.is_empty() {
                        break;
                    } else {
                        // No thread work at all, queue stuck: only a memory-
                        // side event can unstick it.
                        let wake = mem.next_prefetch_wakeup(self.clock);
                        self.clock = match wake {
                            Some(w) => w.min(to).max(self.clock + 1),
                            None => self.clock + 1,
                        };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::{DataWidth, Region};
    use nvr_mem::MemoryConfig;
    use nvr_npu::{NpuConfig, NpuEngine};
    use nvr_prefetch::NullPrefetcher;
    use nvr_trace::{GatherDesc, NpuProgram, SparseFunc, TileOp};

    /// A gather-heavy program over a large IA space (mostly cold misses
    /// without prefetching).
    fn sparse_program(tiles_n: usize, per_tile: usize) -> NpuProgram {
        let mut image = MemoryImage::new();
        let index_base = Addr::new(0x10_0000);
        let n = tiles_n * per_tile;
        let indices: Vec<u32> = (0..n)
            .map(|i| MemoryImage::background(Addr::new(i as u64 * 4)) % (1 << 18))
            .collect();
        image.add_u32_segment(index_base, indices);
        let func = SparseFunc::Affine {
            ia_base: Addr::new(0x1_0000_0000),
            row_bytes: 64,
        };
        let tiles: Vec<TileOp> = (0..tiles_n)
            .map(|i| TileOp {
                id: i,
                index_region: Region::new(
                    index_base.offset((i * per_tile) as u64 * 4),
                    per_tile as u64 * 4,
                ),
                gather: Some(GatherDesc { func, batch: 16 }),
                dma_bytes: 0,
                compute_cycles: 200,
                store_bytes: 0,
            })
            .collect();
        NpuProgram {
            name: "nvr-unit".into(),
            width: DataWidth::Int8,
            tiles,
            image,
        }
    }

    #[test]
    fn nvr_beats_no_prefetch_end_to_end() {
        let program = sparse_program(32, 64);
        let engine = NpuEngine::new(NpuConfig::default());

        let mut mem_base = MemorySystem::new(MemoryConfig::default());
        let base = engine.run(&program, &mut mem_base, &mut NullPrefetcher::new());

        let mut mem_nvr = MemorySystem::new(MemoryConfig::default());
        let mut nvr = NvrPrefetcher::new(NvrConfig::default());
        let with_nvr = engine.run(&program, &mut mem_nvr, &mut nvr);

        assert!(
            with_nvr.total_cycles * 2 < base.total_cycles,
            "NVR {} vs baseline {}",
            with_nvr.total_cycles,
            base.total_cycles
        );
        // Misses visible to the NPU collapse.
        assert!(
            with_nvr.gather_element_misses * 3 < base.gather_element_misses,
            "NVR misses {} vs baseline {}",
            with_nvr.gather_element_misses,
            base.gather_element_misses
        );
    }

    #[test]
    fn nvr_accuracy_is_high_on_uniform_tiles() {
        let program = sparse_program(32, 64);
        let engine = NpuEngine::new(NpuConfig::default());
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut nvr = NvrPrefetcher::new(NvrConfig::default());
        let _ = engine.run(&program, &mut mem, &mut nvr);
        let acc = mem.prefetch_accuracy();
        assert!(acc > 0.85, "accuracy {acc} should exceed 0.85");
    }

    #[test]
    fn vmig_packs_multiple_lines_per_vector() {
        let program = sparse_program(16, 64);
        let engine = NpuEngine::new(NpuConfig::default());
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut nvr = NvrPrefetcher::new(NvrConfig::default());
        let _ = engine.run(&program, &mut mem, &mut nvr);
        assert!(
            nvr.vmig().mean_pack_width() > 2.0,
            "pack width {}",
            nvr.vmig().mean_pack_width()
        );
    }

    #[test]
    fn disabling_lbd_hurts_accuracy() {
        let program = sparse_program(32, 64);
        let engine = NpuEngine::new(NpuConfig::default());

        let mut mem_lbd = MemorySystem::new(MemoryConfig::default());
        let mut with_lbd = NvrPrefetcher::new(NvrConfig::default());
        let _ = engine.run(&program, &mut mem_lbd, &mut with_lbd);

        let mut mem_no = MemorySystem::new(MemoryConfig::default());
        let mut without = NvrPrefetcher::new(NvrConfig {
            use_lbd: false,
            ..NvrConfig::default()
        });
        let _ = engine.run(&program, &mut mem_no, &mut without);

        assert!(
            mem_lbd.prefetch_accuracy() >= mem_no.prefetch_accuracy(),
            "LBD {} vs no-LBD {}",
            mem_lbd.prefetch_accuracy(),
            mem_no.prefetch_accuracy()
        );
    }

    #[test]
    fn on_stall_trigger_is_less_effective() {
        let program = sparse_program(32, 64);
        let engine = NpuEngine::new(NpuConfig::default());

        let mut mem_load = MemorySystem::new(MemoryConfig::default());
        let mut on_load = NvrPrefetcher::new(NvrConfig::default());
        let r_load = engine.run(&program, &mut mem_load, &mut on_load);

        let mut mem_stall = MemorySystem::new(MemoryConfig::default());
        let mut on_stall = NvrPrefetcher::new(NvrConfig {
            trigger: TriggerPolicy::OnStall,
            ..NvrConfig::default()
        });
        let r_stall = engine.run(&program, &mut mem_stall, &mut on_stall);

        assert!(
            r_load.total_cycles <= r_stall.total_cycles,
            "on-load {} should be <= on-stall {}",
            r_load.total_cycles,
            r_stall.total_cycles
        );
    }

    /// NSB pays off when sparse rows are *reused* (§IV-G: implicit cache
    /// line reuse): resident rows then hit at NSB latency instead of L2
    /// latency.
    #[test]
    fn nsb_fill_reduces_npu_latency_on_reuse() {
        use nvr_mem::CacheConfig;
        // Hot set of 128 rows (8 KB) — fits the 16 KB NSB.
        let mut image = MemoryImage::new();
        let index_base = Addr::new(0x10_0000);
        let tiles_n = 32usize;
        let per_tile = 64usize;
        let indices: Vec<u32> = (0..(tiles_n * per_tile))
            .map(|i| MemoryImage::background(Addr::new(i as u64 * 4)) % 128)
            .collect();
        image.add_u32_segment(index_base, indices);
        let func = SparseFunc::Affine {
            ia_base: Addr::new(0x1_0000_0000),
            row_bytes: 64,
        };
        let tiles: Vec<TileOp> = (0..tiles_n)
            .map(|i| TileOp {
                id: i,
                index_region: Region::new(
                    index_base.offset((i * per_tile) as u64 * 4),
                    per_tile as u64 * 4,
                ),
                gather: Some(GatherDesc { func, batch: 16 }),
                dma_bytes: 0,
                compute_cycles: 50,
                store_bytes: 0,
            })
            .collect();
        let program = NpuProgram {
            name: "nsb-reuse".into(),
            width: DataWidth::Int8,
            tiles,
            image,
        };
        let engine = NpuEngine::new(NpuConfig::default());

        let mut mem_plain = MemorySystem::new(MemoryConfig::default());
        let mut plain = NvrPrefetcher::new(NvrConfig::default());
        let r_plain = engine.run(&program, &mut mem_plain, &mut plain);

        let nsb_cfg = MemoryConfig::default().with_nsb(CacheConfig::nsb_default());
        let mut mem_nsb = MemorySystem::new(nsb_cfg);
        let mut with_nsb = NvrPrefetcher::new(NvrConfig::with_nsb());
        let r_nsb = engine.run(&program, &mut mem_nsb, &mut with_nsb);

        assert!(
            r_nsb.total_cycles < r_plain.total_cycles,
            "NSB {} vs plain {}",
            r_nsb.total_cycles,
            r_plain.total_cycles
        );
    }
}
