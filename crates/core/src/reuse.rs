//! Per-line predicted-reuse scoring for the NSB's DARE-style admission.
//!
//! The controller's window machinery resolves gather targets (rows of the
//! indirectly-addressed table) well ahead of the NPU. On power-law graph
//! workloads the same hub rows are resolved again and again across
//! neighbouring windows — exactly the lines worth pinning in the small
//! NSB — while the long tail of cold rows is touched once and never
//! again. [`ReusePredictor`] counts, per cache line, how many resolved
//! targets have touched it within a decaying horizon; the count is the
//! *predicted-reuse score* that rides each VMIG bundle entry
//! ([`crate::Vmig::push_bundle_scored`]) into the memory system, where
//! the NSB's [`nvr_mem::RetentionPolicy::ScoredReuse`] policy admits,
//! rejects (shrinks) and evicts on it.
//!
//! Determinism: the predictor is a [`BTreeMap`] keyed by line index with
//! a fixed decay epoch — no hashing, no clocks — so identical runs
//! produce identical scores.

use std::collections::BTreeMap;

use nvr_common::LineAddr;

/// Observations between decay steps. At each epoch boundary every count
/// halves (integer division) and exhausted entries are dropped, so a
/// phase change — a new tile neighbourhood with different hubs — washes
/// stale hub scores out within one epoch instead of pinning dead rows in
/// the NSB forever. 4096 observations ≈ 16 windows of 16-wide resolution
/// at 16 lanes: long enough to span the lookahead horizon, short enough
/// to track tile phases.
const DECAY_EPOCH: u32 = 4096;

/// Counts resolved-target touches per line inside a decaying horizon.
///
/// # Examples
///
/// ```
/// use nvr_core::ReusePredictor;
/// use nvr_common::LineAddr;
///
/// let mut p = ReusePredictor::new();
/// assert_eq!(p.observe(LineAddr::new(7)), 1);
/// assert_eq!(p.observe(LineAddr::new(7)), 2);
/// assert_eq!(p.score(LineAddr::new(7)), 2);
/// assert_eq!(p.score(LineAddr::new(8)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReusePredictor {
    counts: BTreeMap<u64, u32>,
    /// Observations since the last decay step.
    since_decay: u32,
}

impl ReusePredictor {
    /// An empty predictor.
    #[must_use]
    pub fn new() -> Self {
        ReusePredictor::default()
    }

    /// Records one resolved gather target touching `line`; returns the
    /// line's updated score (its touch count within the current horizon,
    /// saturating).
    pub fn observe(&mut self, line: LineAddr) -> u32 {
        self.since_decay += 1;
        if self.since_decay >= DECAY_EPOCH {
            self.decay();
            self.since_decay = 0;
        }
        let c = self.counts.entry(line.index()).or_insert(0);
        *c = c.saturating_add(1);
        *c
    }

    /// The current score of `line` (0 if never observed this horizon).
    #[must_use]
    pub fn score(&self, line: LineAddr) -> u32 {
        self.counts.get(&line.index()).copied().unwrap_or(0)
    }

    /// Lines currently holding a non-zero score.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.counts.len()
    }

    /// Halves every count, dropping exhausted entries.
    fn decay(&mut self) {
        self.counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact_per_line() {
        let mut p = ReusePredictor::new();
        // A toy 4-node neighbourhood: node 0 is the hub (in-degree 3).
        // Edges resolve as target lines: (1->0) (2->0) (2->1) (3->0).
        let targets = [0u64, 0, 1, 0];
        let mut seen = Vec::new();
        for t in targets {
            seen.push(p.observe(LineAddr::new(t)));
        }
        // Exact running counts: hub line 0 reaches 3, line 1 stays at 1.
        assert_eq!(seen, vec![1, 2, 1, 3]);
        assert_eq!(p.score(LineAddr::new(0)), 3);
        assert_eq!(p.score(LineAddr::new(1)), 1);
        assert_eq!(p.score(LineAddr::new(2)), 0);
        assert_eq!(p.tracked(), 2);
    }

    #[test]
    fn admit_reject_sequence_at_threshold_two() {
        let mut p = ReusePredictor::new();
        let admit = 2u32;
        // Same toy graph; the admission decision is made per observation
        // with the *updated* score, so the hub is rejected on first touch
        // and admitted from its second touch onward.
        let decisions: Vec<bool> = [0u64, 0, 1, 0, 1, 2]
            .into_iter()
            .map(|t| p.observe(LineAddr::new(t)) >= admit)
            .collect();
        assert_eq!(decisions, vec![false, true, false, true, true, false]);
    }

    #[test]
    fn decay_halves_and_drops() {
        let mut p = ReusePredictor::new();
        for _ in 0..3 {
            p.observe(LineAddr::new(1));
        }
        p.observe(LineAddr::new(2));
        // Drive to the epoch boundary with a cold line.
        for _ in 0..(DECAY_EPOCH - 4) {
            p.observe(LineAddr::new(99));
        }
        // The decay ran inside the last observe: 3 -> 1, 1 -> 0 (dropped).
        assert_eq!(p.score(LineAddr::new(1)), 1);
        assert_eq!(p.score(LineAddr::new(2)), 0);
        // The cold line's own count also halved.
        assert!(p.score(LineAddr::new(99)) > 0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut p = ReusePredictor::new();
        let mut c = ReusePredictor::new();
        c.counts.insert(5, u32::MAX);
        c.since_decay = 0;
        assert_eq!(c.observe(LineAddr::new(5)), u32::MAX);
        // Normal path still exact.
        assert_eq!(p.observe(LineAddr::new(5)), 1);
    }
}
