//! Per-line predicted-reuse scoring for the NSB's DARE-style admission.
//!
//! The controller's window machinery resolves gather targets (rows of the
//! indirectly-addressed table) well ahead of the NPU. On power-law graph
//! workloads the same hub rows are resolved again and again across
//! neighbouring windows — exactly the lines worth pinning in the small
//! NSB — while the long tail of cold rows is touched once and never
//! again. [`ReusePredictor`] counts, per cache line, how many resolved
//! targets have touched it within a decaying horizon; the count is the
//! *predicted-reuse score* that rides each VMIG bundle entry
//! ([`crate::Vmig::push_bundle_scored`]) into the memory system, where
//! the NSB's [`nvr_mem::RetentionPolicy::ScoredReuse`] policy admits,
//! rejects (shrinks) and evicts on it.
//!
//! Determinism: the predictor is an open-addressing table keyed by line
//! index under a fixed hash (the splitmix64 finaliser) with a fixed decay
//! epoch — no [`std::collections::HashMap`] randomised state, no clocks —
//! so identical runs produce identical scores. The table form matters for
//! speed: `observe` runs once per resolved target line, and a pointer-
//! chasing map on that path dominated the NSB configurations' wall time.

use nvr_common::LineAddr;

/// Observations between decay steps. At each epoch boundary every count
/// halves (integer division) and exhausted entries are dropped, so a
/// phase change — a new tile neighbourhood with different hubs — washes
/// stale hub scores out within one epoch instead of pinning dead rows in
/// the NSB forever. 4096 observations ≈ 16 windows of 16-wide resolution
/// at 16 lanes: long enough to span the lookahead horizon, short enough
/// to track tile phases.
const DECAY_EPOCH: u32 = 4096;

/// Initial slot count; must be a power of two.
const INITIAL_SLOTS: usize = 1024;

/// An unoccupied slot's key marker. Line indices are byte addresses
/// shifted down by the line-size log, so `u64::MAX` cannot collide with a
/// real key.
const EMPTY: u64 = u64::MAX;

/// Counts resolved-target touches per line inside a decaying horizon.
///
/// # Examples
///
/// ```
/// use nvr_core::ReusePredictor;
/// use nvr_common::LineAddr;
///
/// let mut p = ReusePredictor::new();
/// assert_eq!(p.observe(LineAddr::new(7)), 1);
/// assert_eq!(p.observe(LineAddr::new(7)), 2);
/// assert_eq!(p.score(LineAddr::new(7)), 2);
/// assert_eq!(p.score(LineAddr::new(8)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct ReusePredictor {
    /// Line-index keys (`EMPTY` marks a free slot); linear probing from
    /// the key's hash, power-of-two capacity.
    keys: Vec<u64>,
    /// Touch counts parallel to `keys`.
    counts: Vec<u32>,
    /// Occupied slots.
    len: usize,
    /// Observations since the last decay step.
    since_decay: u32,
}

impl Default for ReusePredictor {
    fn default() -> Self {
        ReusePredictor {
            keys: vec![EMPTY; INITIAL_SLOTS],
            counts: vec![0; INITIAL_SLOTS],
            len: 0,
            since_decay: 0,
        }
    }
}

/// The splitmix64 finaliser: a fixed, statistically strong mix from line
/// index to probe start.
fn hash(key: u64) -> u64 {
    let mut h = key;
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl ReusePredictor {
    /// An empty predictor.
    #[must_use]
    pub fn new() -> Self {
        ReusePredictor::default()
    }

    /// Records one resolved gather target touching `line`; returns the
    /// line's updated score (its touch count within the current horizon,
    /// saturating).
    pub fn observe(&mut self, line: LineAddr) -> u32 {
        self.since_decay += 1;
        if self.since_decay >= DECAY_EPOCH {
            self.decay();
            self.since_decay = 0;
        }
        // Keep the load factor under 1/2 so probe chains stay short.
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let key = line.index();
        let mut slot = (hash(key) as usize) & mask;
        loop {
            if self.keys[slot] == key {
                self.counts[slot] = self.counts[slot].saturating_add(1);
                return self.counts[slot];
            }
            if self.keys[slot] == EMPTY {
                self.keys[slot] = key;
                self.counts[slot] = 1;
                self.len += 1;
                return 1;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The current score of `line` (0 if never observed this horizon).
    #[must_use]
    pub fn score(&self, line: LineAddr) -> u32 {
        let mask = self.keys.len() - 1;
        let key = line.index();
        let mut slot = (hash(key) as usize) & mask;
        loop {
            if self.keys[slot] == key {
                return self.counts[slot];
            }
            if self.keys[slot] == EMPTY {
                return 0;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Lines currently holding a non-zero score.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.len
    }

    /// Halves every count, dropping exhausted entries. Rebuilds the table
    /// (deletion under linear probing would otherwise need backward
    /// shifting); runs once per [`DECAY_EPOCH`] observations, so the
    /// rebuild amortises to a fraction of an observe.
    fn decay(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_counts = std::mem::take(&mut self.counts);
        self.keys = vec![EMPTY; old_keys.len()];
        self.counts = vec![0; old_keys.len()];
        self.len = 0;
        let mask = self.keys.len() - 1;
        for (key, count) in old_keys.into_iter().zip(old_counts) {
            if key == EMPTY || count / 2 == 0 {
                continue;
            }
            let mut slot = (hash(key) as usize) & mask;
            while self.keys[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.keys[slot] = key;
            self.counts[slot] = count / 2;
            self.len += 1;
        }
    }

    /// Doubles the slot count, rehashing every occupied entry.
    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_counts = std::mem::replace(&mut self.counts, vec![0; new_cap]);
        let mask = new_cap - 1;
        for (key, count) in old_keys.into_iter().zip(old_counts) {
            if key == EMPTY {
                continue;
            }
            let mut slot = (hash(key) as usize) & mask;
            while self.keys[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.keys[slot] = key;
            self.counts[slot] = count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact_per_line() {
        let mut p = ReusePredictor::new();
        // A toy 4-node neighbourhood: node 0 is the hub (in-degree 3).
        // Edges resolve as target lines: (1->0) (2->0) (2->1) (3->0).
        let targets = [0u64, 0, 1, 0];
        let mut seen = Vec::new();
        for t in targets {
            seen.push(p.observe(LineAddr::new(t)));
        }
        // Exact running counts: hub line 0 reaches 3, line 1 stays at 1.
        assert_eq!(seen, vec![1, 2, 1, 3]);
        assert_eq!(p.score(LineAddr::new(0)), 3);
        assert_eq!(p.score(LineAddr::new(1)), 1);
        assert_eq!(p.score(LineAddr::new(2)), 0);
        assert_eq!(p.tracked(), 2);
    }

    #[test]
    fn admit_reject_sequence_at_threshold_two() {
        let mut p = ReusePredictor::new();
        let admit = 2u32;
        // Same toy graph; the admission decision is made per observation
        // with the *updated* score, so the hub is rejected on first touch
        // and admitted from its second touch onward.
        let decisions: Vec<bool> = [0u64, 0, 1, 0, 1, 2]
            .into_iter()
            .map(|t| p.observe(LineAddr::new(t)) >= admit)
            .collect();
        assert_eq!(decisions, vec![false, true, false, true, true, false]);
    }

    #[test]
    fn decay_halves_and_drops() {
        let mut p = ReusePredictor::new();
        for _ in 0..3 {
            p.observe(LineAddr::new(1));
        }
        p.observe(LineAddr::new(2));
        // Drive to the epoch boundary with a cold line.
        for _ in 0..(DECAY_EPOCH - 4) {
            p.observe(LineAddr::new(99));
        }
        // The decay ran inside the last observe: 3 -> 1, 1 -> 0 (dropped).
        assert_eq!(p.score(LineAddr::new(1)), 1);
        assert_eq!(p.score(LineAddr::new(2)), 0);
        // The cold line's own count also halved.
        assert!(p.score(LineAddr::new(99)) > 0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut p = ReusePredictor::new();
        let mut c = ReusePredictor::new();
        for _ in 0..3 {
            c.observe(LineAddr::new(5));
        }
        // Force the stored count to the ceiling, then observe once more.
        for count in &mut c.counts {
            if *count > 0 {
                *count = u32::MAX;
            }
        }
        assert_eq!(c.observe(LineAddr::new(5)), u32::MAX);
        // Normal path still exact.
        assert_eq!(p.observe(LineAddr::new(5)), 1);
    }

    #[test]
    fn growth_preserves_scores() {
        let mut p = ReusePredictor::new();
        // Insert enough distinct lines to force several growth rebuilds
        // (staying under one decay epoch), then verify every score.
        for i in 0..2000u64 {
            p.observe(LineAddr::new(i));
            p.observe(LineAddr::new(i));
        }
        assert_eq!(p.tracked(), 2000);
        for i in 0..2000u64 {
            assert_eq!(p.score(LineAddr::new(i)), 2, "line {i}");
        }
    }
}
