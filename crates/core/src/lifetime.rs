//! Per-prefetch lifetime tracking and the DARE-style usefulness throttle.
//!
//! The controller's pipelined lookahead (see [`crate::controller`]) is only
//! safe to run deep if its speculation is actually being consumed: deep
//! windows that fill the L2 with lines the NPU never touches *add* misses
//! instead of hiding them. This module measures that directly. The memory
//! system records raw [`PrefetchLifeEvent`]s — issue, first demand use,
//! unused eviction — and the [`LifetimeTracker`] folds them into:
//!
//! * a [`TimelinessReport`]: the issue→use slack histogram plus measured
//!   timely / late / evicted-unused counts (fig. 6b's data), and
//! * a rolling wasted-prefetch ratio over the most recent resolved
//!   prefetches, which the controller compares against
//!   [`crate::NvrConfig::throttle_evicted_ratio`] to back its cross-tile
//!   lookahead depth off — filtered runahead in the spirit of DARE's
//!   usefulness-gated prefetch stream, where the throttle input is
//!   *observed* usefulness rather than window extent.
//!
//! Everything here is deterministic: events arrive in simulation order and
//! the rolling window is a fixed-size FIFO, so identical runs produce
//! bit-identical reports regardless of host parallelism.

use std::collections::VecDeque;

use nvr_common::FlatMap;
use nvr_mem::{MemorySystem, PrefetchLifeEvent};
use nvr_prefetch::TimelinessReport;

/// Folds the memory system's prefetch lifetime events into a timeliness
/// report and a rolling usefulness signal.
///
/// # Examples
///
/// ```
/// use nvr_core::LifetimeTracker;
/// use nvr_common::LineAddr;
/// use nvr_mem::PrefetchLifeEvent;
///
/// let mut t = LifetimeTracker::new(8);
/// let line = LineAddr::new(7);
/// t.ingest(PrefetchLifeEvent::Issued { line, at: 10, fill_done: 100, queue_delay: 4 });
/// t.ingest(PrefetchLifeEvent::FirstUse { line, at: 150, late: false });
/// let r = t.report();
/// assert_eq!(r.timely, 1);
/// assert_eq!(r.slack.sum(), 140); // issued at 10, used at 150
/// assert_eq!(r.queue_delay.sum(), 4); // channel arbitration delay
/// ```
#[derive(Debug, Clone)]
pub struct LifetimeTracker {
    /// Issue cycle of prefetches with no observed outcome yet, keyed by
    /// line index ([`FlatMap`]: deterministic, and cheap enough for the
    /// one-op-per-lifetime-event rate this sustains).
    pending: FlatMap,
    /// Accumulated outcome counts and the slack histogram.
    report: TimelinessReport,
    /// Outcomes of the most recent resolved prefetches.
    recent: VecDeque<Outcome>,
    /// Wasted (evicted-unused) entries currently in `recent`.
    recent_wasted: usize,
    /// Late entries currently in `recent`.
    recent_late: usize,
    /// Capacity of the rolling window.
    window: usize,
    /// Reusable drain buffer, exchanged with the memory system's event log
    /// each [`LifetimeTracker::drain`] so the steady state recycles two
    /// allocations instead of allocating a fresh log per drain.
    scratch: Vec<PrefetchLifeEvent>,
}

/// Resolved outcome of one prefetch, for the rolling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Fill complete before first use.
    Timely,
    /// Demanded mid-fill.
    Late,
    /// Evicted unused.
    Wasted,
}

impl LifetimeTracker {
    /// Creates a tracker whose rolling usefulness window holds the last
    /// `window` resolved prefetches (`window` is clamped to at least 1).
    #[must_use]
    pub fn new(window: usize) -> Self {
        LifetimeTracker {
            pending: FlatMap::new(),
            report: TimelinessReport::default(),
            recent: VecDeque::with_capacity(window.max(1)),
            recent_wasted: 0,
            recent_late: 0,
            window: window.max(1),
            scratch: Vec::new(),
        }
    }

    /// Drains and ingests every lifetime event the memory system recorded
    /// since the last call.
    pub fn drain(&mut self, mem: &mut MemorySystem) {
        let mut buf = std::mem::take(&mut self.scratch);
        mem.swap_prefetch_life_events(&mut buf);
        for event in buf.drain(..) {
            self.ingest(event);
        }
        self.scratch = buf;
    }

    /// Ingests one lifetime event.
    pub fn ingest(&mut self, event: PrefetchLifeEvent) {
        match event {
            PrefetchLifeEvent::Issued {
                line,
                at,
                queue_delay,
                ..
            } => {
                // A re-issue after eviction restarts the line's life.
                self.pending.insert(line.index(), at);
                self.report.queue_delay.record(queue_delay);
            }
            PrefetchLifeEvent::FirstUse { line, at, late } => {
                if let Some(issued) = self.pending.remove(line.index()) {
                    self.report.slack.record(at.saturating_sub(issued));
                    if late {
                        self.report.late += 1;
                        self.push_outcome(Outcome::Late);
                    } else {
                        self.report.timely += 1;
                        self.push_outcome(Outcome::Timely);
                    }
                }
            }
            PrefetchLifeEvent::EvictedUnused { line, at: _ } => {
                if self.pending.remove(line.index()).is_some() {
                    self.report.evicted_unused += 1;
                    self.push_outcome(Outcome::Wasted);
                }
            }
        }
    }

    fn push_outcome(&mut self, outcome: Outcome) {
        if self.recent.len() == self.window {
            match self.recent.pop_front() {
                Some(Outcome::Wasted) => self.recent_wasted -= 1,
                Some(Outcome::Late) => self.recent_late -= 1,
                _ => {}
            }
        }
        self.recent.push_back(outcome);
        match outcome {
            Outcome::Wasted => self.recent_wasted += 1,
            Outcome::Late => self.recent_late += 1,
            Outcome::Timely => {}
        }
    }

    /// Fraction of the rolling window's resolved prefetches that were
    /// evicted unused; 0 until anything resolves.
    #[must_use]
    pub fn rolling_wasted_ratio(&self) -> f64 {
        if self.recent.is_empty() {
            0.0
        } else {
            self.recent_wasted as f64 / self.recent.len() as f64
        }
    }

    /// Fraction of the rolling window's resolved prefetches whose first
    /// demand arrived mid-fill (late); 0 until anything resolves. A high
    /// late ratio means the prefetch stream is correct but not early
    /// enough — the signal that deeper lookahead would pay.
    #[must_use]
    pub fn rolling_late_ratio(&self) -> f64 {
        if self.recent.is_empty() {
            0.0
        } else {
            self.recent_late as f64 / self.recent.len() as f64
        }
    }

    /// Whether the window has seen enough outcomes for the ratio to mean
    /// anything (at least half full).
    #[must_use]
    pub fn warmed_up(&self) -> bool {
        self.recent.len() * 2 >= self.window
    }

    /// Speculative lines currently outstanding: issued and neither
    /// demanded nor evicted yet. This is the prefetcher's *measured* L2
    /// footprint — the quantity the paper's lookahead-line budget is
    /// really about (element distance is only a proxy for it).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// The accumulated report; `unresolved` counts prefetches still
    /// pending at the time of the call.
    #[must_use]
    pub fn report(&self) -> TimelinessReport {
        TimelinessReport {
            unresolved: self.pending.len() as u64,
            ..self.report.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_common::{Cycle, LineAddr};

    fn issued(i: u64, at: Cycle) -> PrefetchLifeEvent {
        PrefetchLifeEvent::Issued {
            line: LineAddr::new(i),
            at,
            fill_done: at + 100,
            queue_delay: 8,
        }
    }

    #[test]
    fn exact_outcome_counts() {
        let mut t = LifetimeTracker::new(16);
        // Three prefetches: one timely, one late, one evicted unused.
        t.ingest(issued(1, 0));
        t.ingest(issued(2, 10));
        t.ingest(issued(3, 20));
        t.ingest(PrefetchLifeEvent::FirstUse {
            line: LineAddr::new(1),
            at: 200,
            late: false,
        });
        t.ingest(PrefetchLifeEvent::FirstUse {
            line: LineAddr::new(2),
            at: 50,
            late: true,
        });
        t.ingest(PrefetchLifeEvent::EvictedUnused {
            line: LineAddr::new(3),
            at: 300,
        });
        let r = t.report();
        assert_eq!(
            (r.timely, r.late, r.evicted_unused, r.unresolved),
            (1, 1, 1, 0)
        );
        assert_eq!(r.queue_delay.count(), 3, "every issue records its delay");
        assert_eq!(r.queue_delay.sum(), 3 * 8);
        assert_eq!(r.slack.count(), 2);
        assert_eq!(r.slack.sum(), 200 + 40);
        assert_eq!(r.used(), 2);
        assert!((r.late_fraction() - 0.5).abs() < 1e-12);
        assert!((t.rolling_wasted_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unresolved_counts_pending() {
        let mut t = LifetimeTracker::new(4);
        t.ingest(issued(9, 5));
        assert_eq!(t.report().unresolved, 1);
        assert_eq!(t.rolling_wasted_ratio(), 0.0);
    }

    #[test]
    fn orphan_events_are_ignored() {
        let mut t = LifetimeTracker::new(4);
        // Use/eviction without a matching issue (e.g. events from before
        // the log was enabled) must not corrupt the counts.
        t.ingest(PrefetchLifeEvent::FirstUse {
            line: LineAddr::new(1),
            at: 10,
            late: false,
        });
        t.ingest(PrefetchLifeEvent::EvictedUnused {
            line: LineAddr::new(2),
            at: 10,
        });
        let r = t.report();
        assert_eq!((r.timely, r.late, r.evicted_unused), (0, 0, 0));
    }

    #[test]
    fn rolling_window_evicts_old_outcomes() {
        let mut t = LifetimeTracker::new(2);
        for i in 0..3 {
            t.ingest(issued(i, 0));
        }
        // First outcome wasted, next two used: window of 2 forgets the
        // wasted one.
        t.ingest(PrefetchLifeEvent::EvictedUnused {
            line: LineAddr::new(0),
            at: 1,
        });
        assert_eq!(t.rolling_wasted_ratio(), 1.0);
        for i in 1..3 {
            t.ingest(PrefetchLifeEvent::FirstUse {
                line: LineAddr::new(i),
                at: 2,
                late: false,
            });
        }
        assert_eq!(t.rolling_wasted_ratio(), 0.0);
        assert!(t.warmed_up());
    }

    #[test]
    fn reissue_after_eviction_restarts_life() {
        let mut t = LifetimeTracker::new(4);
        t.ingest(issued(5, 0));
        t.ingest(PrefetchLifeEvent::EvictedUnused {
            line: LineAddr::new(5),
            at: 10,
        });
        t.ingest(issued(5, 1000));
        t.ingest(PrefetchLifeEvent::FirstUse {
            line: LineAddr::new(5),
            at: 1100,
            late: false,
        });
        let r = t.report();
        assert_eq!((r.timely, r.evicted_unused), (1, 1));
        assert_eq!(r.slack.sum(), 100, "slack measured from the re-issue");
    }
}
