//! Hardware storage overhead model (Table I).
//!
//! Reproduces the per-structure bit accounting of the paper's Table I for a
//! parallel width `N`. Each structure's formula follows the field list
//! printed in the table; where the table's own arithmetic is internally
//! inconsistent (see EXPERIMENTS.md) we compute the component sum honestly
//! and also report the paper's printed value for comparison.

/// Storage accounting for one NVR configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// Parallel width the report was computed for.
    pub n: u64,
    /// Stride Detector bits.
    pub sd_bits: u64,
    /// Sparse Chain Detector bits (2N entries).
    pub scd_bits: u64,
    /// Loop Bound Detector bits (2N entries: sparse + normal modes).
    pub lbd_bits: u64,
    /// VMIG bits (2N lanes).
    pub vmig_bits: u64,
    /// Snooper bits.
    pub snooper_bits: u64,
    /// Optional NSB capacity in bytes.
    pub nsb_bytes: u64,
}

/// Bits in a program-counter field.
const PC_BITS: u64 = 48;

impl OverheadReport {
    /// Total NVR storage in bits (excluding the optional NSB).
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.sd_bits + self.scd_bits + self.lbd_bits + self.vmig_bits + self.snooper_bits
    }

    /// Total NVR storage in KiB (excluding the NSB).
    #[must_use]
    pub fn total_kib(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }

    /// The paper's printed per-structure totals at N=16, for comparison
    /// (SD 1808, SCD 2464, LBD 3424, VMIG 3204, Snooper 1248).
    #[must_use]
    pub fn paper_printed_totals() -> [(&'static str, u64); 5] {
        [
            ("SD", 1808),
            ("SCD", 2464),
            ("LBD", 3424),
            ("VMIG", 3204),
            ("Snooper", 1248),
        ]
    }
}

/// Computes the Table I storage model for parallel width `n` (paper default
/// 16) and an NSB of `nsb_kib` KiB (paper default 16, or 0 for none).
///
/// # Examples
///
/// ```
/// use nvr_core::overhead_report;
///
/// let r = overhead_report(16, 16);
/// assert_eq!(r.sd_bits, 1808);     // matches Table I exactly
/// assert_eq!(r.snooper_bits, 1248); // matches Table I exactly
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn overhead_report(n: u64, nsb_kib: u64) -> OverheadReport {
    assert!(n > 0, "parallel width must be non-zero");
    let log2n = 64 - (n - 1).leading_zeros() as u64; // ceil(log2(n))

    // SD (N entries): prev addr 48, stride 8, entry id log2N, last prefetch
    // addr 48, stride confidence 2; plus one 48-bit PC.
    let sd_entry = 48 + 8 + log2n + 48 + 2;
    let sd_bits = PC_BITS + n * sd_entry;

    // SCD (2N entries): ss start 48, valid 1, entry id log2(2N), ss offset
    // 10, LPI 10, vector size 4; plus one 48-bit PC.
    let scd_entries = 2 * n;
    let scd_entry = 48 + 1 + (log2n + 1) + 10 + 10 + 4;
    let scd_bits = PC_BITS + scd_entries * scd_entry;

    // LBD (2N entries — dual sparse/normal modes, the mode implied by the
    // table half): PC 48, iteration counter 16, entry id log2(2N),
    // increment 16, level confidence 2, loop boundary 16, boundary
    // confidence 4 = 107 bits/entry at N=16 (Table I: 32x107 = 3424).
    let lbd_entries = 2 * n;
    let lbd_entry = 48 + 16 + (log2n + 1) + 16 + 2 + 16 + 4;
    let lbd_bits = lbd_entries * lbd_entry;

    // VMIG: a 260-bit VIGU core (256-bit vector-op buffer + 4 control) plus
    // N lanes of {48 PC, 64 VRF, 64 PIE, log2(2N) entry id, 3 IRU status}
    // = 184 bits/lane at N=16 (Table I: 260 + 16x184 = 3204).
    let vmig_lane = 48 + 64 + 64 + (log2n + 1) + 3;
    let vmig_bits = 260 + n * vmig_lane;

    // Snooper: 48 CPU PC + 64 CPU register + 48 NPU PC = 160 base, plus N
    // sparse-structure probes of (48 + 10 + 10) = 68 bits.
    let snooper_bits = 160 + n * 68;

    OverheadReport {
        n,
        sd_bits,
        scd_bits,
        lbd_bits,
        vmig_bits,
        snooper_bits,
        nsb_bytes: nsb_kib * 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sd_matches_table_one() {
        let r = overhead_report(16, 16);
        // Table I: 48 + 16x110 = 1808 bits.
        assert_eq!(r.sd_bits, 1808);
    }

    #[test]
    fn snooper_matches_table_one() {
        let r = overhead_report(16, 16);
        // Table I: 160 + 16x68 = 1248 bits.
        assert_eq!(r.snooper_bits, 1248);
    }

    #[test]
    fn lbd_matches_printed_total() {
        let r = overhead_report(16, 16);
        // Table I prints 32 x 107 = 3424 bits.
        assert_eq!(r.lbd_bits, 3424);
    }

    #[test]
    fn vmig_matches_printed_total() {
        let r = overhead_report(16, 16);
        // Table I prints 260 + 16x184 = 3204 bits.
        assert_eq!(r.vmig_bits, 3204);
    }

    #[test]
    fn scd_close_to_printed_total() {
        let r = overhead_report(16, 16);
        // Table I prints 2464 with internally inconsistent arithmetic
        // (48 + 32x77 = 2512, not 2464); the component sum gives 2544.
        // Accept the honest component sum and keep it within 5% of print.
        let printed = 2464.0;
        let rel = (r.scd_bits as f64 - printed).abs() / printed;
        assert!(rel < 0.05, "SCD {} vs printed {printed}", r.scd_bits);
    }

    #[test]
    fn total_is_order_kilobits() {
        let r = overhead_report(16, 16);
        let total = r.total_bits();
        // Component sums land near 12.2 kbit ~= 1.5 KiB; the optional NSB
        // dominates the real estate (16 KiB).
        assert!((10_000..14_000).contains(&total), "total {total}");
        assert!(r.total_kib() < 2.0);
        assert_eq!(r.nsb_bytes, 16 * 1024);
    }

    #[test]
    fn scales_with_n() {
        let small = overhead_report(8, 0);
        let big = overhead_report(32, 0);
        assert!(big.total_bits() > small.total_bits());
        assert_eq!(small.nsb_bytes, 0);
    }
}
