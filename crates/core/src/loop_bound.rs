//! LBD: the Loop Bound Detector (§IV-E).
//!
//! Maintains the Sparse Structure Table (SST): per-tile index windows
//! observed through the snoopers. For the tile currently at the ROB head
//! the bounds are exact (read out of the sparse unit's `IdxPtr` registers);
//! for future tiles the LBD *predicts* windows by chaining an exponentially
//! weighted average of observed window lengths from the last exact anchor.
//! Predictions carry a fuzzy-range factor (§III coverage-oriented
//! philosophy), trading a little redundancy for whole-batch coverage, and
//! the total-tile count snooped from the CPU's loop branch clips runahead
//! at the kernel's end — the overrun protection fixed-distance runahead
//! lacks.

/// A predicted or observed index window, in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First element (inclusive).
    pub start: u64,
    /// Last element (exclusive).
    pub end: u64,
    /// Whether the bounds are exact (snooped) rather than predicted.
    pub exact: bool,
}

impl Window {
    /// Number of elements in the window.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// The loop-bound detector.
///
/// # Examples
///
/// ```
/// use nvr_core::LoopBoundDetector;
///
/// let mut lbd = LoopBoundDetector::new(1.0);
/// lbd.set_total_tiles(10);
/// lbd.observe(0, 0, 32);
/// lbd.observe(1, 32, 64);
/// let w = lbd.predict(2).expect("in range");
/// assert_eq!((w.start, w.end), (64, 96));
/// ```
#[derive(Debug, Clone)]
pub struct LoopBoundDetector {
    /// EWMA of observed window lengths.
    avg_len: f64,
    /// Last exactly observed tile and its end element.
    anchor: Option<(usize, u64)>,
    total_tiles: Option<usize>,
    fuzzy: f64,
    observed: u64,
}

impl LoopBoundDetector {
    /// Creates a detector with the given fuzzy-range factor (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `fuzzy < 1.0`.
    #[must_use]
    pub fn new(fuzzy: f64) -> Self {
        assert!(fuzzy >= 1.0, "fuzzy factor must be >= 1");
        LoopBoundDetector {
            avg_len: 0.0,
            anchor: None,
            total_tiles: None,
            fuzzy,
            observed: 0,
        }
    }

    /// Records the kernel's outer trip count (snooped from CPU branches).
    pub fn set_total_tiles(&mut self, total: usize) {
        self.total_tiles = Some(total);
    }

    /// Records an exact window for `tile` from the sparse-unit registers.
    pub fn observe(&mut self, tile: usize, start: u64, end: u64) {
        let len = end.saturating_sub(start) as f64;
        self.avg_len = if self.observed == 0 {
            len
        } else {
            0.75 * self.avg_len + 0.25 * len
        };
        self.observed += 1;
        // Anchor advances monotonically with the ROB head.
        match self.anchor {
            Some((t, _)) if t >= tile => {}
            _ => self.anchor = Some((tile, end)),
        }
    }

    /// Number of exact windows observed so far.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observed
    }

    /// The fuzzy-stretched predicted window length, in elements (0 until
    /// the first observation).
    #[must_use]
    pub fn predicted_len(&self) -> u64 {
        if self.observed == 0 {
            0
        } else {
            (self.avg_len * self.fuzzy).ceil() as u64
        }
    }

    /// Estimated end of the whole index array in elements, extrapolating
    /// the average window length over the remaining snooped trip count.
    #[must_use]
    pub fn estimated_end(&self, total_tiles: usize) -> Option<u64> {
        let (anchor_tile, anchor_end) = self.anchor?;
        let remaining = total_tiles.saturating_sub(anchor_tile + 1) as f64;
        Some(anchor_end + (remaining * self.avg_len).ceil() as u64)
    }

    /// Predicts the window of `tile`, or `None` when the tile is past the
    /// snooped trip count or no anchor exists yet.
    ///
    /// The predicted *fetch* range is the average length stretched by the
    /// fuzzy factor; chained starts use the unstretched average so
    /// consecutive predictions overlap slightly rather than drift.
    #[must_use]
    pub fn predict(&self, tile: usize) -> Option<Window> {
        if let Some(total) = self.total_tiles {
            if tile >= total {
                return None;
            }
        }
        let (anchor_tile, anchor_end) = self.anchor?;
        if tile <= anchor_tile {
            return None; // already executed; nothing to predict
        }
        let gap = (tile - anchor_tile - 1) as f64;
        let start = anchor_end as f64 + gap * self.avg_len;
        let len = (self.avg_len * self.fuzzy).ceil();
        Some(Window {
            start: start.floor() as u64,
            end: (start + len).ceil() as u64,
            exact: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_windows_predict_exactly() {
        let mut lbd = LoopBoundDetector::new(1.0);
        lbd.set_total_tiles(100);
        for t in 0..4 {
            lbd.observe(t, t as u64 * 50, (t as u64 + 1) * 50);
        }
        let w = lbd.predict(4).expect("next tile");
        assert_eq!((w.start, w.end), (200, 250));
        let w6 = lbd.predict(6).expect("two ahead");
        assert_eq!(w6.start, 300);
    }

    #[test]
    fn clips_at_total_tiles() {
        let mut lbd = LoopBoundDetector::new(1.0);
        lbd.set_total_tiles(3);
        lbd.observe(0, 0, 10);
        assert!(lbd.predict(2).is_some());
        assert!(lbd.predict(3).is_none());
        assert!(lbd.predict(99).is_none());
    }

    #[test]
    fn fuzzy_stretches_fetch_range() {
        let mut lbd = LoopBoundDetector::new(1.5);
        lbd.observe(0, 0, 100);
        let w = lbd.predict(1).expect("predictable");
        assert_eq!(w.start, 100);
        assert_eq!(w.end, 250); // 100 * 1.5 stretched
        assert!(!w.exact);
    }

    #[test]
    fn ewma_adapts_to_varying_lengths() {
        let mut lbd = LoopBoundDetector::new(1.0);
        lbd.observe(0, 0, 100);
        lbd.observe(1, 100, 120); // len 20
        lbd.observe(2, 120, 140); // len 20
        let w = lbd.predict(3).expect("predictable");
        // Average drifts toward 20 but retains history.
        assert!(w.len() < 100 && w.len() >= 20, "len {}", w.len());
        assert_eq!(w.start, 140, "chained from last exact anchor");
    }

    #[test]
    fn no_prediction_without_observation() {
        let lbd = LoopBoundDetector::new(1.1);
        assert!(lbd.predict(1).is_none());
    }

    #[test]
    fn no_prediction_for_executed_tiles() {
        let mut lbd = LoopBoundDetector::new(1.0);
        lbd.observe(5, 500, 550);
        assert!(lbd.predict(5).is_none());
        assert!(lbd.predict(4).is_none());
        assert!(lbd.predict(6).is_some());
    }

    #[test]
    fn window_len_and_empty() {
        let w = Window {
            start: 10,
            end: 10,
            exact: true,
        };
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }
}
