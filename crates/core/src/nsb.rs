//! NSB: the Non-blocking Speculative Buffer (§IV-G).
//!
//! A compact, high-associativity, non-blocking cache inside the NPU that
//! receives NVR's speculative fills, cutting NPU-to-L2 latency and off-chip
//! traffic on actual loads. The cache structure itself is
//! [`nvr_mem::Cache`]; this module provides the paper-parameterised
//! configurations used across the evaluation (16 KB default; 4–32 KB in the
//! Fig. 9 sensitivity sweep).

use nvr_mem::{CacheConfig, RetentionPolicy};

/// An NSB configuration of `kib` kibibytes.
///
/// Associativity follows the paper's high-way design (§IV-G argues
/// direct-mapped/low-associativity buffers conflict-miss badly on sparse
/// index spaces): 16 ways, scaled down only when the buffer is too small to
/// support them.
///
/// # Examples
///
/// ```
/// use nvr_core::nsb_config;
///
/// let nsb = nsb_config(16);
/// assert_eq!(nsb.size_bytes, 16 * 1024);
/// assert_eq!(nsb.ways, 16);
/// nsb.validate()?;
/// # Ok::<(), nvr_common::NvrError>(())
/// ```
///
/// # Panics
///
/// Panics if `kib == 0`.
#[must_use]
pub fn nsb_config(kib: u64) -> CacheConfig {
    assert!(kib > 0, "NSB size must be non-zero");
    let size_bytes = kib * 1024;
    // Keep at least one set while preferring 16 ways.
    let max_ways = size_bytes / nvr_common::LINE_BYTES;
    let mut ways = 16.min(max_ways);
    // Capacity must divide evenly into ways x line.
    while ways > 1 && !size_bytes.is_multiple_of(nvr_common::LINE_BYTES * ways) {
        ways -= 1;
    }
    CacheConfig {
        name: "NSB",
        size_bytes,
        ways,
        hit_latency: 2,
        mshr_entries: 16,
        policy: RetentionPolicy::Lru,
    }
}

/// [`nsb_config`] with the reuse-aware retention policy
/// ([`RetentionPolicy::ScoredReuse`]): speculative fills carry a
/// predicted-reuse score, and a fill that does not strictly beat the
/// weakest resident line is rejected (buffets-style shrink) instead of
/// evicting it. With all-zero scores — i.e. when
/// [`crate::NvrConfig::nsb_admit_min_reuse`] is 0 and the controller
/// sends no scores — the policy reproduces LRU bit for bit, so this
/// configuration is a strict generalisation of [`nsb_config`].
///
/// # Examples
///
/// ```
/// use nvr_core::nsb_scored;
/// use nvr_mem::RetentionPolicy;
///
/// assert_eq!(nsb_scored(16).policy, RetentionPolicy::ScoredReuse);
/// ```
///
/// # Panics
///
/// Panics if `kib == 0`.
#[must_use]
pub fn nsb_scored(kib: u64) -> CacheConfig {
    nsb_config(kib).with_policy(RetentionPolicy::ScoredReuse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweep_sizes_are_valid() {
        for kib in [4, 8, 16, 32] {
            let cfg = nsb_config(kib);
            cfg.validate().expect("valid NSB geometry");
            assert_eq!(cfg.size_bytes, kib * 1024);
            assert_eq!(cfg.ways, 16, "{kib} KiB should support 16 ways");
        }
    }

    #[test]
    fn tiny_nsb_reduces_ways() {
        let cfg = nsb_config(1);
        cfg.validate().expect("valid");
        assert!(cfg.ways <= 16);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_panics() {
        let _ = nsb_config(0);
    }

    #[test]
    fn scored_config_differs_only_in_policy() {
        let lru = nsb_config(16);
        let scored = nsb_scored(16);
        assert_eq!(scored, lru.with_policy(RetentionPolicy::ScoredReuse));
        scored.validate().expect("valid scored NSB geometry");
    }
}
